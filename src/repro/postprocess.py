"""Post-processing of raw window matches into passage reports.

Local similarity search returns *window pairs*; a single copied
paragraph produces hundreds of overlapping pairs along an alignment
diagonal.  :func:`merge_passages` collapses them into human-readable
passages — one per (document, diagonal neighbourhood) — which is what a
plagiarism-report UI or a dedup pipeline actually consumes.  The paper
leaves post-processing open ("additional post processing methods can be
applied for the sake of high precision"); this module provides the
baseline geometric consolidation.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass

from .core.base import MatchPair


@dataclass(frozen=True)
class Passage:
    """A contiguous region of reuse between one document and the query.

    Token spans are inclusive.  ``num_pairs`` counts the window pairs
    merged into this passage; ``max_overlap`` is the best single-window
    overlap seen, a cheap confidence proxy.
    """

    doc_id: int
    data_span: tuple[int, int]
    query_span: tuple[int, int]
    num_pairs: int
    max_overlap: int

    @property
    def length(self) -> int:
        """Token length of the query-side span."""
        return self.query_span[1] - self.query_span[0] + 1


def merge_passages(
    pairs: Iterable[MatchPair], w: int, join_gap: int | None = None
) -> list[Passage]:
    """Collapse window matches into maximal passages.

    Two matches merge when they belong to the same document, their query
    windows are within ``join_gap`` tokens, and their alignment
    diagonals (``data_start - query_start``) differ by at most
    ``join_gap`` — i.e. they plausibly continue the same copied region
    despite insertions/deletions shifting the alignment.

    ``join_gap`` defaults to ``w // 2``, mirroring the verification
    merge rule of Section 4.3.
    """
    if join_gap is None:
        join_gap = max(1, w // 2)
    by_doc: dict[int, list[MatchPair]] = defaultdict(list)
    for pair in pairs:
        by_doc[pair.doc_id].append(pair)

    passages: list[Passage] = []
    for doc_id in sorted(by_doc):
        doc_pairs = sorted(
            by_doc[doc_id], key=lambda p: (p.query_start, p.data_start)
        )
        # Greedy sweep: keep a set of open passage accumulators; matches
        # arrive in query order, so an accumulator can close once the
        # sweep has passed its query end by more than join_gap.
        open_accs: list[dict] = []
        for pair in doc_pairs:
            diagonal = pair.data_start - pair.query_start
            target = None
            for acc in open_accs:
                if (
                    pair.query_start <= acc["q_hi"] + join_gap
                    and abs(diagonal - acc["diagonal"]) <= join_gap
                ):
                    target = acc
                    break
            if target is None:
                target = {
                    "d_lo": pair.data_start,
                    "d_hi": pair.data_start + w - 1,
                    "q_lo": pair.query_start,
                    "q_hi": pair.query_start + w - 1,
                    "diagonal": diagonal,
                    "count": 0,
                    "max_overlap": 0,
                }
                open_accs.append(target)
            target["d_lo"] = min(target["d_lo"], pair.data_start)
            target["d_hi"] = max(target["d_hi"], pair.data_start + w - 1)
            target["q_lo"] = min(target["q_lo"], pair.query_start)
            target["q_hi"] = max(target["q_hi"], pair.query_start + w - 1)
            target["diagonal"] = diagonal  # follow the drift
            target["count"] += 1
            target["max_overlap"] = max(target["max_overlap"], pair.overlap)
            # Close accumulators the sweep has passed.
            still_open = []
            for acc in open_accs:
                if acc["q_hi"] + join_gap < pair.query_start:
                    passages.append(_finish(doc_id, acc))
                else:
                    still_open.append(acc)
            open_accs = still_open
        passages.extend(_finish(doc_id, acc) for acc in open_accs)
    passages.sort(key=lambda p: (p.doc_id, p.query_span, p.data_span))
    return passages


def _finish(doc_id: int, acc: dict) -> Passage:
    return Passage(
        doc_id=doc_id,
        data_span=(acc["d_lo"], acc["d_hi"]),
        query_span=(acc["q_lo"], acc["q_hi"]),
        num_pairs=acc["count"],
        max_overlap=acc["max_overlap"],
    )


def filter_passages(
    passages: Iterable[Passage],
    min_pairs: int = 1,
    min_length: int = 0,
) -> list[Passage]:
    """Drop weak passages (precision post-processing knob).

    ``min_pairs`` requires corroboration by several window pairs;
    ``min_length`` drops short regions.  Both raise precision at some
    recall cost — the trade the paper's Appendix D.2 discusses.
    """
    return [
        passage
        for passage in passages
        if passage.num_pairs >= min_pairs and passage.length >= min_length
    ]
