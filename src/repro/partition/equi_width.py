"""Equi-width partitioning: the baseline of Appendix D.1 / Figure 11.

Splits the rank universe into ``k_max`` equal spans — no cost model
involved.  The paper shows the greedy cost-based partitioner beats this
by 2-4.7x; the Figure 11 bench reproduces the comparison.
"""

from __future__ import annotations

from ..errors import PartitioningError
from .scheme import PartitionScheme


def equi_width_scheme(
    universe_size: int, k_max: int, m: int = 1
) -> PartitionScheme:
    """Borders at i * |U| / k_max for i in 1..k_max-1."""
    if k_max < 1:
        raise PartitioningError(f"k_max must be >= 1, got {k_max}")
    borders = tuple(
        universe_size * class_index // k_max for class_index in range(1, k_max)
    )
    return PartitionScheme(universe_size=universe_size, borders=borders, m=m)
