"""Token-universe partitioning: schemes, cost model, and optimizers.

Section 3.2 partitions the token universe (sorted by the global order)
into ``k_max`` classes; class ``i`` tokens are combined ``i`` at a time
into signatures.  Section 6 further splits each class above 1 into ``m``
equi-width sub-partitions.  Section 5 defines the query-processing cost
model (Equations 2-4) and the greedy two-level blocking algorithm that
chooses class borders to minimize workload cost.
"""

from .cost_model import CostWeights, workload_cost
from .equi_width import equi_width_scheme
from .greedy import GreedyPartitioner, PartitioningReport
from .scheme import PartitionScheme

__all__ = [
    "PartitionScheme",
    "CostWeights",
    "workload_cost",
    "equi_width_scheme",
    "GreedyPartitioner",
    "PartitioningReport",
]
