"""Greedy two-level-blocking token-universe partitioning (Section 5.2).

The optimizer fixes the global order (increasing window frequency) and
chooses the ``k_max - 1`` class borders greedily: first the border
between 1-wise and 2-wise tokens, then — inside the remaining high
region — between 2-wise and 3-wise, and so on.  Exhaustively evaluating
every possible border is prohibitive (each evaluation rebuilds the index
and replays the workload), so candidates are restricted to *block*
boundaries of size ``B1``; around the best block boundary, *sub-block*
boundaries of size ``B2`` refine the choice.  The number of
C_workload evaluations is bounded by
``(k_max - 1) * (ceil(|U|/B1) + 2*ceil(B1/B2) - 1)``.

When no historical query workload exists, a fraction ``sample_ratio`` of
the data documents serves as a surrogate workload (the paper's choice,
1% by default).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..corpus import Document, DocumentCollection
from ..errors import PartitioningError
from ..ordering import GlobalOrder
from ..params import SearchParams
from .cost_model import CostWeights, workload_cost
from .scheme import PartitionScheme


@dataclass
class PartitioningReport:
    """Trace of one greedy partitioning run (for tests and benches)."""

    evaluations: int = 0
    stage_borders: list[int] = field(default_factory=list)
    stage_costs: list[float] = field(default_factory=list)
    final_cost: float = 0.0


class GreedyPartitioner:
    """Finds a good :class:`PartitionScheme` for a data collection.

    Parameters
    ----------
    data, params:
        The collection and search parameters to optimize for.
    order:
        Shared global order; built if omitted.
    weights:
        Cost-model weights (paper defaults).
    b1_fraction, b2_fraction:
        Block and sub-block sizes as fractions of |U| (paper: 0.1 and
        0.01).
    sample_ratio:
        Fraction of data documents used as the surrogate workload when
        no explicit workload is given (paper: 1%).
    perturb_sample:
        Obfuscate the sampled surrogate documents (HIGH level) before
        using them as queries.  The paper samples data documents as-is;
        at small corpus scales a verbatim sample is wall-to-wall
        self-duplicate text, its verification cost dominates every
        scheme equally and the cost landscape goes flat — perturbing
        restores the partial-reuse structure real queries have.  Pass
        False for the paper's literal behaviour.
    seed:
        Seed for workload sampling.
    """

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        order: GlobalOrder | None = None,
        weights: CostWeights = CostWeights(),
        b1_fraction: float = 0.1,
        b2_fraction: float = 0.01,
        sample_ratio: float = 0.01,
        perturb_sample: bool = True,
        seed: int = 0,
    ) -> None:
        if not 0 < b2_fraction <= b1_fraction <= 1:
            raise PartitioningError(
                f"need 0 < b2_fraction <= b1_fraction <= 1; got "
                f"B1={b1_fraction}, B2={b2_fraction}"
            )
        if not 0 < sample_ratio <= 1:
            raise PartitioningError(
                f"sample_ratio must be in (0, 1], got {sample_ratio}"
            )
        self.data = data
        self.params = params
        self.order = order if order is not None else GlobalOrder(data, params.w)
        self.weights = weights
        universe = self.order.universe_size
        self.block_size = max(1, round(b1_fraction * universe))
        self.sub_block_size = max(1, round(b2_fraction * universe))
        self.sample_ratio = sample_ratio
        self.perturb_sample = perturb_sample
        self._seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def sample_workload(self) -> list[Document]:
        """Surrogate workload Q': a sample of the data documents.

        With ``perturb_sample`` (default) each sampled document is
        obfuscated so it *partially* matches the index, like a real
        query, instead of matching itself verbatim everywhere.
        """
        count = max(1, round(self.sample_ratio * len(self.data)))
        doc_ids = self._rng.sample(range(len(self.data)), min(count, len(self.data)))
        sampled = [self.data[doc_id] for doc_id in sorted(doc_ids)]
        if not self.perturb_sample:
            return sampled
        from ..corpus.document import Document as Doc
        from ..corpus.plagiarism import ObfuscationLevel, PlagiarismInjector

        injector = PlagiarismInjector(
            seed=self._seed + 1, vocabulary_size=len(self.data.vocabulary)
        )
        return [
            Doc(
                -1,
                injector.obfuscate(list(document.tokens), ObfuscationLevel.HIGH),
                name=f"sample-{document.name}",
            )
            for document in sampled
        ]

    def _cost(
        self,
        borders: tuple[int, ...],
        workload: list[Document],
        report: PartitioningReport,
    ) -> float:
        scheme = PartitionScheme(
            universe_size=self.order.universe_size,
            borders=borders,
            m=self.params.m,
        )
        report.evaluations += 1
        return workload_cost(
            self.data, workload, self.params, scheme, self.order, self.weights
        )

    # ------------------------------------------------------------------
    def partition(
        self, workload: list[Document] | None = None
    ) -> tuple[PartitionScheme, PartitioningReport]:
        """Run the greedy search; returns the scheme and its trace."""
        if workload is None:
            workload = self.sample_workload()
        report = PartitioningReport()
        universe = self.order.universe_size
        borders: list[int] = []
        previous_border = 0

        for _stage in range(self.params.k_max - 1):
            # Level 1: block boundaries at multiples of B1, at or above
            # the previous border (plus both extremes).
            candidates = sorted(
                {
                    boundary
                    for boundary in range(0, universe + 1, self.block_size)
                    if boundary >= previous_border
                }
                | {previous_border, universe}
            )
            best_boundary, best_cost = self._best_candidate(
                candidates, borders, workload, report
            )
            # Level 2: refine within the two blocks adjacent to the
            # winning boundary, at sub-block granularity.
            lo = max(previous_border, best_boundary - self.block_size)
            hi = min(universe, best_boundary + self.block_size)
            refined = sorted(
                {
                    boundary
                    for boundary in range(lo, hi + 1, self.sub_block_size)
                    if boundary >= previous_border
                }
                | {best_boundary}
            )
            refined_boundary, refined_cost = self._best_candidate(
                refined, borders, workload, report, seed_cost=(best_boundary, best_cost)
            )
            borders.append(refined_boundary)
            previous_border = refined_boundary
            report.stage_borders.append(refined_boundary)
            report.stage_costs.append(refined_cost)

        scheme = PartitionScheme(
            universe_size=universe, borders=tuple(borders), m=self.params.m
        )
        report.final_cost = report.stage_costs[-1] if report.stage_costs else 0.0
        return scheme, report

    def _best_candidate(
        self,
        candidates: list[int],
        borders: list[int],
        workload: list[Document],
        report: PartitioningReport,
        seed_cost: tuple[int, float] | None = None,
    ) -> tuple[int, float]:
        """Evaluate candidate borders, returning the cheapest.

        ``seed_cost`` lets the refinement stage reuse the level-1
        winner's already-computed cost instead of re-evaluating it.
        """
        best_boundary, best_cost = (-1, float("inf"))
        if seed_cost is not None:
            best_boundary, best_cost = seed_cost
        for boundary in candidates:
            if seed_cost is not None and boundary == seed_cost[0]:
                continue
            cost = self._cost(tuple(borders) + (boundary,), workload, report)
            # Strict '<' keeps the earlier (smaller) boundary on ties,
            # which favours fewer combined tokens.
            if cost < best_cost:
                best_boundary, best_cost = boundary, cost
        if best_boundary < 0:
            raise PartitioningError("no candidate boundaries to evaluate")
        return best_boundary, best_cost
