"""PartitionScheme: class and sub-partition lookup over the rank space.

The token universe, sorted by the global order O (ascending window
frequency), is split by ``k_max - 1`` non-decreasing borders into
classes 1..k_max: class 1 holds the rarest tokens (indexed as single
tokens), class ``k_max`` the most frequent (indexed as k_max-wise
combinations).  Empty classes are allowed (Section 5.2).

With ``m > 1`` (Section 6), every class above 1 is split into ``m``
equi-width *sub-partitions*; token combinations are only generated
within a sub-partition.  Class 1 is never subdivided (single tokens
gain nothing from it).

Tokens admitted after the order was built (query-only tokens, negative
ranks) fall into class 1, consistent with having window frequency zero.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache

from ..errors import PartitioningError


@dataclass(frozen=True)
class PartitionScheme:
    """Immutable partitioning of a rank universe.

    Parameters
    ----------
    universe_size:
        Size of the non-negative rank space (the data-token universe).
    borders:
        ``k_max - 1`` non-decreasing rank thresholds.  Class 1 covers
        ranks ``[0, borders[0])``, class ``i`` covers
        ``[borders[i-2], borders[i-1])``, class ``k_max`` covers
        ``[borders[-1], universe_size)``.  An empty tuple means
        ``k_max = 1`` (standard prefix filtering).
    m:
        Number of equi-width sub-partitions per class above 1.
    """

    universe_size: int
    borders: tuple[int, ...] = ()
    m: int = 1

    def __post_init__(self) -> None:
        if self.universe_size < 0:
            raise PartitioningError(
                f"universe_size must be >= 0, got {self.universe_size}"
            )
        if self.m < 1:
            raise PartitioningError(f"m must be >= 1, got {self.m}")
        previous = 0
        for border in self.borders:
            if border < previous or border > self.universe_size:
                raise PartitioningError(
                    f"borders must be non-decreasing within "
                    f"[0, {self.universe_size}]; got {self.borders}"
                )
            previous = border

    # ------------------------------------------------------------------
    @property
    def k_max(self) -> int:
        """Number of classes (borders + 1)."""
        return len(self.borders) + 1

    @classmethod
    def single(cls, universe_size: int) -> "PartitionScheme":
        """k_max = 1: every token is a 1-wise (single-token) signature."""
        return cls(universe_size=universe_size, borders=())

    @classmethod
    def all_k(cls, universe_size: int, k: int, m: int = 1) -> "PartitionScheme":
        """Every token in class ``k`` (non-partitioned k-wise, Section 7.2).

        Classes 1..k-1 are empty (all borders at rank 0).
        """
        if k < 1:
            raise PartitioningError(f"k must be >= 1, got {k}")
        return cls(universe_size=universe_size, borders=(0,) * (k - 1), m=m)

    # ------------------------------------------------------------------
    def class_of(self, rank: int) -> int:
        """Class (1-based) of a token rank; negative ranks are class 1."""
        if rank < 0:
            return 1
        return bisect_right(self.borders, rank) + 1

    def class_range(self, class_index: int) -> tuple[int, int]:
        """Half-open rank range ``[lo, hi)`` of ``class_index``."""
        if not 1 <= class_index <= self.k_max:
            raise PartitioningError(
                f"class must be in [1, {self.k_max}], got {class_index}"
            )
        lo = self.borders[class_index - 2] if class_index >= 2 else 0
        hi = (
            self.borders[class_index - 1]
            if class_index <= self.k_max - 1
            else self.universe_size
        )
        return lo, hi

    def group_of(self, rank: int) -> tuple[int, int]:
        """``(class, sub_partition)`` of a rank; sub is 0 for class 1.

        Signatures combine tokens only within one group.  For classes
        above 1 the class's rank range is cut into ``m`` equi-width
        sub-partitions; the last sub-partition absorbs the remainder.
        """
        class_index = self.class_of(rank)
        if class_index == 1 or self.m == 1:
            return class_index, 0
        lo, hi = self.class_range(class_index)
        width = hi - lo
        if width <= 0:
            return class_index, 0
        sub = min(self.m - 1, (rank - lo) * self.m // width)
        return class_index, sub

    def group_key(self, rank: int) -> int:
        """Compact integer key for ``group_of(rank)`` (class * m + sub)."""
        class_index, sub = self.group_of(rank)
        return class_index * self.m + sub

    def class_sizes(self) -> list[int]:
        """Number of ranks per class (index 0 = class 1)."""
        return [
            self.class_range(class_index + 1)[1] - self.class_range(class_index + 1)[0]
            for class_index in range(self.k_max)
        ]

    def with_borders(self, borders: tuple[int, ...]) -> "PartitionScheme":
        """Copy with different borders (used by the greedy optimizer)."""
        return PartitionScheme(
            universe_size=self.universe_size, borders=borders, m=self.m
        )

    def with_m(self, m: int) -> "PartitionScheme":
        """Copy with a different sub-partition count."""
        return PartitionScheme(
            universe_size=self.universe_size, borders=self.borders, m=m
        )

    def key_table(self) -> list[int]:
        """Precomputed ``group_key`` for every non-negative rank.

        The scheme is immutable and hashable, so the table is cached
        per scheme instance; hot loops (prefix computation per window
        slide) index it instead of bisecting borders per token.
        Negative ranks are not in the table — they are always class 1,
        key ``m``.
        """
        return _key_table(self)

    def describe(self) -> str:
        """Human-readable summary of class rank ranges."""
        parts = []
        for class_index in range(1, self.k_max + 1):
            lo, hi = self.class_range(class_index)
            parts.append(f"class {class_index}: ranks [{lo}, {hi})")
        suffix = f", m={self.m}" if self.m > 1 else ""
        return "; ".join(parts) + suffix


@lru_cache(maxsize=64)
def _key_table(scheme: PartitionScheme) -> list[int]:
    return [scheme.group_key(rank) for rank in range(scheme.universe_size)]
