"""The query-processing cost model (Section 5.1, Equations 2-4).

The model weighs three abstract operation counts:

* signature generation — ``c_comb`` per constituent token of each
  generated signature (Equation 2);
* candidate generation — ``c_int`` per interval entry fetched from a
  postings list (Equation 3);
* verification — ``c_hash`` per hash-table operation (Equation 4).

The counts are *measured*, not estimated: evaluating a partitioning
builds the index and processes the (sample) workload with instrumented
counters, exactly as the paper's Section 5.2 prescribes ("we need to
build index for D with respect to P and then process the queries in Q to
sum up the cost").  Using abstract counts instead of wall time makes the
greedy partitioner deterministic and machine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus import Document, DocumentCollection
from ..ordering import GlobalOrder
from ..params import SearchParams
from .scheme import PartitionScheme


@dataclass(frozen=True)
class CostWeights:
    """Operation weights; defaults are the paper's (Section 7.1).

    The paper's constants (10, 2, 1) encode C++ op-cost ratios.  On a
    different substrate the ratios differ — use :func:`calibrated_weights`
    to measure them instead of guessing.
    """

    c_comb: float = 10.0
    c_int: float = 2.0
    c_hash: float = 1.0


def workload_cost(
    data: DocumentCollection,
    queries: list[Document],
    params: SearchParams,
    scheme: PartitionScheme,
    order: GlobalOrder,
    weights: CostWeights = CostWeights(),
) -> float:
    """C_workload(Q): summed abstract query-processing cost.

    Builds a pkwise index under ``scheme`` and processes every query,
    returning the weighted operation total.  Index build cost is *not*
    included (the paper optimizes query processing; indexing is offline).
    """
    # Imported here: core depends on partition.scheme, so the reverse
    # import lives inside the function to keep the module graph acyclic.
    from ..core.pkwise import PKWiseSearcher

    searcher = PKWiseSearcher(data, params, scheme=scheme, order=order)
    totals = searcher.search_many(queries).stats
    return totals.abstract_cost(weights.c_comb, weights.c_int, weights.c_hash)


def calibrated_weights(
    data: DocumentCollection,
    queries: list[Document],
    params: SearchParams,
    order: GlobalOrder,
    scheme: PartitionScheme | None = None,
) -> CostWeights:
    """Measure per-operation costs on this machine/runtime.

    Runs pkwise once over ``queries`` with ``scheme`` (default scheme if
    omitted) and divides each phase's wall time by its operation count,
    normalizing so ``c_hash = 1``.  Feeding the result to
    :class:`~repro.partition.GreedyPartitioner` makes the optimizer
    minimize something proportional to actual runtime on the current
    substrate — on CPython the combination/hash cost ratio is far from
    the paper's C++ constants, and the fixed constants can make the
    greedy search prefer schemes that lose on wall clock.
    """
    from ..core.pkwise import PKWiseSearcher, default_scheme

    if scheme is None:
        scheme = default_scheme(params, order)
    searcher = PKWiseSearcher(data, params, scheme=scheme, order=order)
    totals = searcher.search_many(queries).stats
    c_comb = totals.signature_time / max(1, totals.signature_tokens)
    c_int = totals.candidate_time / max(1, totals.postings_entries)
    c_hash = totals.verify_time / max(1, totals.hash_ops)
    if c_hash <= 0:
        return CostWeights()
    return CostWeights(
        c_comb=max(1e-6, c_comb / c_hash),
        c_int=max(1e-6, c_int / c_hash),
        c_hash=1.0,
    )
