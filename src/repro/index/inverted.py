"""Window-level inverted index (Algorithm 2's indexing part).

Maps each signature to the individual data windows ``(doc_id, start)``
whose prefix generates it.  Used by the non-interval pkwise variant and
as the cost comparison point for the interval index (the paper reports
interval postings 3-14x smaller).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..partition.scheme import PartitionScheme
from ..signatures.generate import Signature, generate_signatures, signature_hash
from ..windows.slider import WindowSlider


class WindowInvertedIndex:
    """Signature -> list of (doc_id, window_start) postings."""

    def __init__(
        self, w: int, tau: int, scheme: PartitionScheme, hashed: bool = False
    ) -> None:
        self.w = w
        self.tau = tau
        self.scheme = scheme
        self.hashed = hashed
        self._postings: dict[object, list[tuple[int, int]]] = {}
        self.num_documents = 0
        self.num_windows = 0
        self.generated_signatures = 0
        self.generated_token_cost = 0

    def _key(self, signature: Signature) -> object:
        return signature_hash(signature) if self.hashed else signature

    def add_document(self, doc_id: int, ranks: Sequence[int]) -> None:
        """Index every window of one document individually."""
        slider = WindowSlider(ranks, self.w)
        postings = self._postings
        key_of = self._key
        for start, _outgoing, _incoming in slider.slides():
            signatures = generate_signatures(
                slider.multiset.raw, self.tau, self.scheme
            )
            self.generated_signatures += len(signatures)
            self.generated_token_cost += sum(len(s) for s in signatures)
            # Deduplicate per window: a window is a candidate once per
            # signature type; multiset duplicates matter only for
            # interval maintenance, not here.
            for signature in set(signatures):
                postings.setdefault(key_of(signature), []).append((doc_id, start))
        self.num_documents += 1
        self.num_windows += slider.num_windows

    def probe(self, signature: Signature) -> list[tuple[int, int]]:
        """Postings list of ``signature`` (empty list if absent)."""
        return self._postings.get(self._key(signature), [])

    @property
    def num_signatures(self) -> int:
        """Number of distinct signatures indexed."""
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        """Total number of stored (signature, window) entries."""
        return sum(len(postings) for postings in self._postings.values())

    def size_in_entries(self) -> int:
        """Abstract index size: one entry per (signature, window)."""
        return self.num_postings

    def __repr__(self) -> str:
        return (
            f"WindowInvertedIndex(signatures={self.num_signatures}, "
            f"postings={self.num_postings}, docs={self.num_documents})"
        )
