"""Window-level inverted index (Algorithm 2's indexing part).

Maps each signature to the individual data windows ``(doc_id, start)``
whose prefix generates it.  Used by the non-interval pkwise variant and
as the cost comparison point for the interval index (the paper reports
interval postings 3-14x smaller).
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

from ..partition.scheme import PartitionScheme
from ..signatures.generate import Signature, generate_signatures, signature_hash
from ..windows.slider import WindowSlider
from .intervals import ProbeBatch


class WindowInvertedIndex:
    """Signature -> list of (doc_id, window_start) postings."""

    def __init__(
        self, w: int, tau: int, scheme: PartitionScheme, hashed: bool = False
    ) -> None:
        self.w = w
        self.tau = tau
        self.scheme = scheme
        self.hashed = hashed
        self._postings: dict[object, list[tuple[int, int]]] = {}
        self.num_documents = 0
        self.num_windows = 0
        self.generated_signatures = 0
        self.generated_token_cost = 0

    def _key(self, signature: Signature) -> object:
        return signature_hash(signature) if self.hashed else signature

    def add_document(self, doc_id: int, ranks: Sequence[int]) -> None:
        """Deprecated alias of :meth:`index_document` (see
        :meth:`repro.index.IntervalIndex.add_document`)."""
        warnings.warn(
            "WindowInvertedIndex.add_document is deprecated; call "
            "index_document (build-time) or mutate through Index.add "
            "(the ingest write path)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.index_document(doc_id, ranks)

    def index_document(self, doc_id: int, ranks: Sequence[int]) -> None:
        """Index every window of one document individually."""
        slider = WindowSlider(ranks, self.w)
        postings = self._postings
        key_of = self._key
        for start, _outgoing, _incoming in slider.slides():
            signatures = generate_signatures(
                slider.multiset.raw, self.tau, self.scheme
            )
            self.generated_signatures += len(signatures)
            self.generated_token_cost += sum(len(s) for s in signatures)
            # Deduplicate per window: a window is a candidate once per
            # signature type; multiset duplicates matter only for
            # interval maintenance, not here.
            for signature in set(signatures):
                postings.setdefault(key_of(signature), []).append((doc_id, start))
        self.num_documents += 1
        self.num_windows += slider.num_windows

    def probe(self, signature: Signature) -> list[tuple[int, int]]:
        """Postings list of ``signature`` (empty list if absent)."""
        return self._postings.get(self._key(signature), [])

    def probe_many(
        self,
        signatures: Sequence[Signature],
        signs: Sequence[int] | None = None,
    ) -> ProbeBatch:
        """Batched probe in the shared :class:`ProbeBatch` layout.

        Window-level postings are single windows, so each hit comes
        back with ``us == vs == start`` — the batch protocol every
        engine consumes, at the degenerate interval width of one.
        """
        docs: list[int] = []
        starts: list[int] = []
        hit_signs: list[int] = []
        sig_counts: list[int] = []
        postings_map = self._postings
        key_of = self._key
        for i, signature in enumerate(signatures):
            postings = postings_map.get(key_of(signature))
            if not postings:
                sig_counts.append(0)
                continue
            sig_counts.append(len(postings))
            sign = 1 if signs is None else signs[i]
            for doc_id, start in postings:
                docs.append(doc_id)
                starts.append(start)
                hit_signs.append(sign)
        if not docs:
            return ProbeBatch.empty(probed=len(signatures))
        return ProbeBatch.from_rows(
            docs, starts, list(starts), hit_signs, sig_counts
        )

    @property
    def num_signatures(self) -> int:
        """Number of distinct signatures indexed."""
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        """Total number of stored (signature, window) entries."""
        return sum(len(postings) for postings in self._postings.values())

    def size_in_entries(self) -> int:
        """Abstract index size: one entry per (signature, window)."""
        return self.num_postings

    def __repr__(self) -> str:
        return (
            f"WindowInvertedIndex(signatures={self.num_signatures}, "
            f"postings={self.num_postings}, docs={self.num_documents})"
        )
