"""Compact, frozen, array-backed form of the interval index.

:class:`CompactIntervalIndex` freezes an :class:`IntervalIndex` into
five flat numpy columns: sorted 64-bit signature-hash keys, per-key
offsets, and packed ``(doc, u, v)`` posting columns.  ``probe`` keeps
the exact contract of the dict index (a list of
:class:`~repro.index.intervals.WindowInterval` / :data:`ProbeHit`) but
resolves keys by binary search instead of hashing tuples, and the whole
structure is a handful of contiguous buffers — ~10x less Python-object
overhead, picklable in O(bytes), and mmap-able without copying (the
format-v3 envelope in :mod:`repro.persistence` stores these columns
verbatim).

Keys are always :func:`~repro.signatures.signature_hash` values, even
when the source index keyed on rank tuples.  A 64-bit hash collision
merges two postings lists, which can only *add* candidates — rolling
verification removes them — so final search results are pair-identical
to the dict index (the property the ``hashed=True`` mode already relies
on, covered by the collision tests).

:class:`PackedRankDocs` applies the same treatment to the searcher's
per-document rank sequences (one values column + offsets), handing the
verifier plain Python lists through a small decode cache.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator, Sequence

import numpy as np

from ..errors import IndexStateError
from ..signatures.generate import Signature, signature_hash, signature_hashes
from .interval_index import IntervalIndex
from .intervals import ProbeBatch, WindowInterval

#: Typed probe result with named fields ``doc_id``/``u``/``v``.
#: An alias of :class:`WindowInterval` (a NamedTuple), so it keeps
#: tuple-compat — unpacking, ordering, equality — while giving call
#: sites attribute access; both index flavours return it from ``probe``.
ProbeHit = WindowInterval

_FROZEN_MESSAGE = (
    "compact index is frozen: build documents into an IntervalIndex "
    "and re-freeze (CompactIntervalIndex.from_index) to change it"
)

_INT32 = np.iinfo(np.int32)


def _packed_column(values: Sequence[int]) -> np.ndarray:
    """An int32 column when every value fits, otherwise int64."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.size == 0 or (
        _INT32.min <= int(arr.min()) and int(arr.max()) <= _INT32.max
    ):
        return arr.astype(np.int32)
    return arr


class CompactIntervalIndex:
    """Frozen signature -> postings index over flat array columns.

    Construct with :meth:`from_index` (freeze a built dict index) or
    :meth:`from_arrays` (rehydrate saved/mapped columns).  The probe
    contract matches :class:`IntervalIndex.probe`; mutation
    (``add_document``/``merge``) raises
    :class:`~repro.errors.IndexStateError` — freezing is one-way.
    """

    #: Sentinel the searcher checks before mutating its index.
    frozen = True

    #: Column names in the order :meth:`to_arrays` emits them.
    COLUMNS = ("keys", "offsets", "docs", "us", "vs")

    def __init__(
        self,
        w: int,
        tau: int,
        scheme,
        *,
        keys: np.ndarray,
        offsets: np.ndarray,
        docs: np.ndarray,
        us: np.ndarray,
        vs: np.ndarray,
        hashed: bool = False,
        num_documents: int = 0,
        num_windows: int = 0,
        build_stats: dict[str, int] | None = None,
    ) -> None:
        self.w = w
        self.tau = tau
        self.scheme = scheme
        self.hashed = hashed
        self.num_documents = num_documents
        self.num_windows = num_windows
        self.build_stats = dict(build_stats or {})
        if len(offsets) != len(keys) + 1:
            raise IndexStateError(
                f"offsets column has {len(offsets)} entries for "
                f"{len(keys)} keys (want keys + 1)"
            )
        if not (len(docs) == len(us) == len(vs)):
            raise IndexStateError("posting columns differ in length")
        self._keys = keys
        self._offsets = offsets
        self._docs = docs
        self._us = us
        self._vs = vs
        # Offsets with one extra trailing entry so the batched gather
        # can treat "miss" as slot len(keys): that slot's postings run
        # is [total, total) — empty — and no mask/compress pass is
        # needed to drop missed signatures from the fancy-indexing.
        self._offsets_padded = np.concatenate([offsets, offsets[-1:]])
        # signature -> slot memo (misses stored as -1).  Keyed on the
        # signature tuple, not its hash: the pure-Python FNV hash is the
        # dominant cost of a scalar probe (~2.5us vs ~0.2us for a dict
        # hit), so a repeat probe of a memoized signature skips hashing
        # and the scalar np.searchsorted alike.  Cleared wholesale at
        # the bound to stay O(1) per probe; worst-case footprint is a
        # few MiB.
        self._slots: dict[Signature, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index: IntervalIndex) -> "CompactIntervalIndex":
        """Freeze a built dict :class:`IntervalIndex` into columns.

        Tuple keys are hashed; equal hashes (either the source's own
        ``hashed`` keys or genuine 64-bit collisions) share one postings
        run.  Within a key, postings keep the source append order.
        """
        buckets: dict[int, list[WindowInterval]] = {}
        for key, postings in index._postings.items():
            h = key if index.hashed else signature_hash(key)
            existing = buckets.get(h)
            if existing is None:
                buckets[h] = list(postings)
            else:
                existing.extend(postings)
        ordered = sorted(buckets.items())
        keys = np.asarray([h for h, _ in ordered], dtype=np.uint64)
        offsets = np.zeros(len(ordered) + 1, dtype=np.int64)
        docs: list[int] = []
        us: list[int] = []
        vs: list[int] = []
        for i, (_, postings) in enumerate(ordered):
            for interval in postings:
                docs.append(interval.doc_id)
                us.append(interval.u)
                vs.append(interval.v)
            offsets[i + 1] = len(docs)
        return cls(
            index.w,
            index.tau,
            index.scheme,
            keys=keys,
            offsets=offsets,
            docs=_packed_column(docs),
            us=_packed_column(us),
            vs=_packed_column(vs),
            hashed=index.hashed,
            num_documents=index.num_documents,
            num_windows=index.num_windows,
            build_stats=index.build_stats,
        )

    @classmethod
    def from_arrays(
        cls, meta: dict, scheme, arrays: dict[str, np.ndarray]
    ) -> "CompactIntervalIndex":
        """Rehydrate from :meth:`to_arrays` output (or mapped views)."""
        return cls(
            meta["w"],
            meta["tau"],
            scheme,
            keys=arrays["keys"],
            offsets=arrays["offsets"],
            docs=arrays["docs"],
            us=arrays["us"],
            vs=arrays["vs"],
            hashed=meta.get("hashed", False),
            num_documents=meta.get("num_documents", 0),
            num_windows=meta.get("num_windows", 0),
            build_stats=meta.get("build_stats"),
        )

    def to_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(meta, columns)`` — everything but the scheme object."""
        meta = {
            "w": self.w,
            "tau": self.tau,
            "hashed": self.hashed,
            "num_documents": self.num_documents,
            "num_windows": self.num_windows,
            "build_stats": dict(self.build_stats),
        }
        arrays = {
            "keys": self._keys,
            "offsets": self._offsets,
            "docs": self._docs,
            "us": self._us,
            "vs": self._vs,
        }
        return meta, arrays

    # ------------------------------------------------------------------
    # Probe contract (mirrors IntervalIndex)
    # ------------------------------------------------------------------
    #: Bound on the hash -> slot memo (entries, hits and misses alike).
    _SLOT_CACHE_MAX = 1 << 16

    #: Below this many memo *misses* in one batch, they resolve through
    #: the scalar slot path: the vectorized FNV/searchsorted pipeline
    #: has a fixed numpy-call overhead that only amortizes once a couple
    #: dozen signatures need hashing at once.
    _VECTOR_MIN = 24

    def _slot(self, signature: Signature) -> int:
        slot = self._slots.get(signature)
        if slot is None:
            keys = self._keys
            h = signature_hash(signature)
            lo = int(np.searchsorted(keys, h))
            slot = lo if lo < len(keys) and int(keys[lo]) == h else -1
            if len(self._slots) >= self._SLOT_CACHE_MAX:
                self._slots.clear()
            self._slots[signature] = slot
        return slot

    def probe(self, signature: Signature) -> list[ProbeHit]:
        """Postings list of ``signature`` (empty list if absent)."""
        slot = self._slot(signature)
        if slot < 0:
            return []
        start = int(self._offsets[slot])
        end = int(self._offsets[slot + 1])
        return list(
            map(
                ProbeHit,
                self._docs[start:end].tolist(),
                self._us[start:end].tolist(),
                self._vs[start:end].tolist(),
            )
        )

    def probe_many(
        self,
        signatures: Sequence[Signature],
        signs: Sequence[int] | None = None,
    ) -> ProbeBatch:
        """Resolve a whole batch of signatures with one vectorized gather.

        Memo-first: every signature is first looked up in the tuple ->
        slot memo (one dict hit, no hashing), and only the misses are
        resolved — scalar for a handful, or by hashing them all at once
        (:func:`~repro.signatures.generate.signature_hashes`) plus a
        single ``np.searchsorted`` over the sorted key column when there
        are enough to amortize the vector pipeline.  Resolved slots are
        memoized, so steady-state probing of a working set is pure dict
        hits followed by one fancy-indexed gather of all hit postings
        runs out of the flat columns — no per-posting Python work at
        all.  Hit order matches the scalar loop: signature order,
        postings append order within a signature.  ``signs`` carries the
        per-signature +1/-1 candidate delta (omitted = all +1).
        """
        n = len(signatures)
        if n == 0:
            return ProbeBatch.empty()
        memo = self._slots
        slot_list: list[int] = []
        missing: list[int] = []
        for signature in signatures:
            slot = memo.get(signature)
            if slot is None:
                missing.append(len(slot_list))
                slot_list.append(-1)
            else:
                slot_list.append(slot)
        if missing:
            if len(missing) < self._VECTOR_MIN:
                for i in missing:
                    slot_list[i] = self._slot(signatures[i])
            else:
                keys = self._keys
                hashes = signature_hashes([signatures[i] for i in missing])
                if len(keys):
                    positions = np.minimum(
                        np.searchsorted(keys, hashes), len(keys) - 1
                    )
                    resolved = np.where(
                        keys[positions] == hashes, positions, -1
                    ).tolist()
                else:
                    resolved = [-1] * len(missing)
                if len(memo) + len(missing) > self._SLOT_CACHE_MAX:
                    memo.clear()
                for i, slot in zip(missing, resolved):
                    slot_list[i] = slot
                    memo[signatures[i]] = slot
        slot_column = np.asarray(slot_list, dtype=np.int64)
        # Misses gather through the padded sentinel slot (empty run).
        slot_column[slot_column < 0] = len(self._keys)
        padded = self._offsets_padded
        starts = padded[slot_column]
        counts = padded[slot_column + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return ProbeBatch.empty(probed=n)
        # Gather all hit postings runs in one pass: for each run,
        # `starts` repeated over its length plus a within-run ramp.
        run_bases = np.cumsum(counts) - counts
        take = np.repeat(starts - run_bases, counts) + np.arange(total)
        if signs is None:
            hit_signs = np.ones(total, dtype=np.int8)
        else:
            hit_signs = np.repeat(np.asarray(signs, dtype=np.int8), counts)
        return ProbeBatch(
            self._docs[take], self._us[take], self._vs[take],
            hit_signs, counts, probed=n,
        )

    def __contains__(self, signature: Signature) -> bool:
        return self._slot(signature) >= 0

    # ------------------------------------------------------------------
    # Mutation is refused — the structure is frozen by design.
    # ------------------------------------------------------------------
    def add_document(self, doc_id: int, ranks: Sequence[int]) -> None:
        raise IndexStateError(_FROZEN_MESSAGE)

    index_document = add_document

    def merge(self, other) -> None:
        raise IndexStateError(_FROZEN_MESSAGE)

    # ------------------------------------------------------------------
    # Introspection (same surface as IntervalIndex)
    # ------------------------------------------------------------------
    @property
    def num_signatures(self) -> int:
        """Number of distinct signature-hash keys indexed."""
        return len(self._keys)

    @property
    def num_postings(self) -> int:
        """Total number of stored intervals."""
        return len(self._docs)

    def size_in_entries(self) -> int:
        """Abstract index size: one entry per (signature, interval)."""
        return self.num_postings

    def postings_lengths(self) -> Iterator[int]:
        """Iterator of per-key postings-run lengths (analysis)."""
        return iter(np.diff(self._offsets).tolist())

    def nbytes(self) -> int:
        """Bytes held by the five columns (the mmap-able payload)."""
        return sum(
            column.nbytes
            for column in (self._keys, self._offsets, self._docs, self._us, self._vs)
        )

    def __repr__(self) -> str:
        return (
            f"CompactIntervalIndex(signatures={self.num_signatures}, "
            f"postings={self.num_postings}, docs={self.num_documents}, "
            f"bytes={self.nbytes()})"
        )


class PackedRankDocs(Sequence):
    """Per-document rank sequences packed into one values column.

    ``packed[doc_id]`` returns the document's ranks as a plain Python
    list (what the rolling verifier's per-element hot loop wants),
    decoded on demand and kept in a small FIFO cache so verifying
    several intervals of one document decodes it once.  Read-only:
    appending documents requires thawing to lists first (the searcher's
    frozen guard raises before ever getting here).
    """

    _CACHE_SIZE = 16

    def __init__(self, offsets: np.ndarray, values: np.ndarray) -> None:
        if len(offsets) == 0:
            raise IndexStateError("offsets column must have at least 1 entry")
        self._offsets = offsets
        self._values = values
        self._cache: OrderedDict[int, list[int]] = OrderedDict()

    @classmethod
    def from_lists(cls, rank_docs: Sequence[Sequence[int]]) -> "PackedRankDocs":
        offsets = np.zeros(len(rank_docs) + 1, dtype=np.int64)
        total = 0
        for i, ranks in enumerate(rank_docs):
            total += len(ranks)
            offsets[i + 1] = total
        values: list[int] = []
        for ranks in rank_docs:
            values.extend(ranks)
        return cls(offsets, _packed_column(values))

    def to_arrays(self) -> dict[str, np.ndarray]:
        return {"offsets": self._offsets, "values": self._values}

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "PackedRankDocs":
        return cls(arrays["offsets"], arrays["values"])

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, doc_id: int) -> list[int]:
        if isinstance(doc_id, slice):
            return [self[i] for i in range(*doc_id.indices(len(self)))]
        if doc_id < 0:
            doc_id += len(self)
        if not 0 <= doc_id < len(self):
            raise IndexError(f"doc_id {doc_id} out of range")
        cached = self._cache.get(doc_id)
        if cached is not None:
            self._cache.move_to_end(doc_id)
            return cached
        start = int(self._offsets[doc_id])
        end = int(self._offsets[doc_id + 1])
        ranks = self._values[start:end].tolist()
        self._cache[doc_id] = ranks
        if len(self._cache) > self._CACHE_SIZE:
            self._cache.popitem(last=False)
        return ranks

    def nbytes(self) -> int:
        """Bytes held by the two columns."""
        return self._offsets.nbytes + self._values.nbytes

    def __repr__(self) -> str:
        return (
            f"PackedRankDocs(docs={len(self)}, "
            f"tokens={len(self._values)}, bytes={self.nbytes()})"
        )
