"""Window intervals and interval merging (Sections 4.1-4.3).

A window interval ``d[u, v]`` denotes all windows ``W(d, u) ..
W(d, v)`` of document ``d`` (inclusive, 0-based starts).  Candidate
generation produces multisets of intervals which are merged before
verification; merging also coalesces *nearby* intervals whose gap is
under ``w / 2``, because rolling verification across the gap is cheaper
than re-filling the hash table (Section 4.3's 4w + 4(...) vs 2w + 4(...)
operation count).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import NamedTuple


class WindowInterval(NamedTuple):
    """Maximal run of windows of one document containing a signature."""

    doc_id: int
    u: int
    v: int

    @property
    def num_windows(self) -> int:
        """Number of windows the interval covers (inclusive ends)."""
        return self.v - self.u + 1

    def __str__(self) -> str:
        return f"d{self.doc_id}[{self.u},{self.v}]"


def merge_intervals(
    intervals: Iterable[WindowInterval], merge_gap: int = 0
) -> list[WindowInterval]:
    """Coalesce overlapping (and nearby) intervals per document.

    Two consecutive intervals ``d[u1, v1]`` and ``d[u2, v2]`` (``u2 >
    v1``) are merged when ``u2 - v1 < merge_gap``; Section 4.3 shows
    ``merge_gap = w // 2`` balances hash-table refill cost against
    rolling through non-candidate windows.  Regardless of ``merge_gap``,
    overlapping and touching intervals (``u2 <= v1 + 1``) always merge.

    Returns intervals sorted by (doc_id, u).
    """
    ordered = sorted(intervals)
    threshold = max(2, merge_gap)
    merged: list[WindowInterval] = []
    for interval in ordered:
        if merged:
            last = merged[-1]
            if interval.doc_id == last.doc_id and interval.u - last.v < threshold:
                if interval.v > last.v:
                    merged[-1] = WindowInterval(last.doc_id, last.u, interval.v)
                continue
        merged.append(interval)
    return merged


def total_window_count(intervals: Iterable[WindowInterval]) -> int:
    """Sum of window counts over intervals (assumed disjoint)."""
    return sum(interval.num_windows for interval in intervals)
