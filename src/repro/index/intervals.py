"""Window intervals and interval merging (Sections 4.1-4.3).

A window interval ``d[u, v]`` denotes all windows ``W(d, u) ..
W(d, v)`` of document ``d`` (inclusive, 0-based starts).  Candidate
generation produces multisets of intervals which are merged before
verification; merging also coalesces *nearby* intervals whose gap is
under ``w / 2``, because rolling verification across the gap is cheaper
than re-filling the hash table (Section 4.3's 4w + 4(...) vs 2w + 4(...)
operation count).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import NamedTuple

import numpy as np


class WindowInterval(NamedTuple):
    """Maximal run of windows of one document containing a signature."""

    doc_id: int
    u: int
    v: int

    @property
    def num_windows(self) -> int:
        """Number of windows the interval covers (inclusive ends)."""
        return self.v - self.u + 1

    def __str__(self) -> str:
        return f"d{self.doc_id}[{self.u},{self.v}]"


class ProbeBatch:
    """Flat-array result of one batched index probe (``probe_many``).

    Candidate intervals for a whole batch of signatures come back as
    four parallel numpy columns instead of per-hit Python objects:
    ``docs``/``us``/``vs`` are the interval fields and ``signs`` carries
    the per-hit candidate-counter delta (+1 for a signature that just
    opened on the query side, -1 for one that closed).  ``sig_counts``
    has one entry per *probed signature* — how many hits that signature
    contributed (0 for a miss) — which is what lets a caller batch
    several window events into one probe and slice the hit columns back
    apart per event (``np.cumsum(sig_counts)`` gives the boundaries).
    ``probed`` is the number of signatures the batch resolved — what
    the ``probe_signatures`` counter accumulates; ``entries`` (the
    column length) is what ``postings_entries`` accumulates, exactly as
    the scalar probe loop did.

    The layout is engine-agnostic: the dict :class:`IntervalIndex`
    concatenates its postings lists into it, the compact index gathers
    it straight out of its flat columns, and the window-level inverted
    index reuses it with ``us == vs`` (every posting is a single
    window).
    """

    __slots__ = ("docs", "us", "vs", "signs", "sig_counts", "probed")

    def __init__(
        self,
        docs: np.ndarray,
        us: np.ndarray,
        vs: np.ndarray,
        signs: np.ndarray,
        sig_counts: np.ndarray,
        probed: int,
    ) -> None:
        if not (len(docs) == len(us) == len(vs) == len(signs)):
            raise ValueError("probe batch columns differ in length")
        if len(sig_counts) != probed:
            raise ValueError(
                f"sig_counts has {len(sig_counts)} entries for "
                f"{probed} probed signatures"
            )
        self.docs = docs
        self.us = us
        self.vs = vs
        self.signs = signs
        self.sig_counts = sig_counts
        self.probed = probed

    @classmethod
    def empty(cls, probed: int = 0) -> "ProbeBatch":
        """A batch with no candidate entries (all signatures missed)."""
        column = np.empty(0, dtype=np.int64)
        return cls(
            column, column, column, np.empty(0, dtype=np.int8),
            np.zeros(probed, dtype=np.int64), probed,
        )

    @classmethod
    def from_rows(
        cls,
        docs: list[int],
        us: list[int],
        vs: list[int],
        signs: list[int],
        sig_counts: list[int],
    ) -> "ProbeBatch":
        """Build the columns from plain Python lists (dict-index path)."""
        return cls(
            np.asarray(docs, dtype=np.int64),
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(signs, dtype=np.int8),
            np.asarray(sig_counts, dtype=np.int64),
            len(sig_counts),
        )

    @property
    def entries(self) -> int:
        """Number of candidate interval entries in the batch."""
        return len(self.docs)

    def __len__(self) -> int:
        return len(self.docs)

    def entry_bounds(self) -> np.ndarray:
        """Per-signature hit boundaries: ``bounds[i]:bounds[i+1]``.

        Length ``probed + 1``; slicing the hit columns with consecutive
        bounds recovers each probed signature's postings run, and a
        caller that probed several events' signatures in one batch can
        slice per event by keeping its signature offsets.
        """
        bounds = np.zeros(self.probed + 1, dtype=np.int64)
        np.cumsum(self.sig_counts, out=bounds[1:])
        return bounds

    def without_docs(self, removed) -> "ProbeBatch":
        """The batch minus entries of tombstoned documents (vectorized).

        ``removed`` is any iterable of doc ids; the filter applies to
        opened and closed entries alike, so the candidate counter a
        filtered batch feeds stays internally consistent, and
        ``sig_counts`` is re-derived so per-signature slicing keeps
        working.  Returns ``self`` unchanged when nothing matches.
        """
        if not len(self.docs):
            return self
        removed_column = np.fromiter(removed, dtype=np.int64)
        if not len(removed_column):
            return self
        keep = ~np.isin(self.docs, removed_column)
        if keep.all():
            return self
        owner = np.repeat(
            np.arange(self.probed, dtype=np.int64), self.sig_counts
        )
        sig_counts = np.bincount(owner[keep], minlength=self.probed).astype(
            np.int64
        )
        return ProbeBatch(
            self.docs[keep], self.us[keep], self.vs[keep],
            self.signs[keep], sig_counts, self.probed,
        )

    def where_docs(self, allowed: np.ndarray) -> "ProbeBatch":
        """The batch restricted to documents flagged in a boolean mask.

        ``allowed`` is indexed by doc id (the routing tier's survivor
        mask); entries of flagged-off documents are dropped, with
        ``sig_counts`` re-derived exactly as in :meth:`without_docs` so
        per-signature slicing keeps working.  Doc ids at or beyond the
        mask's length are *kept* — a document the tier never
        fingerprinted must not be pruned.  Returns ``self`` unchanged
        when every entry survives.
        """
        if not len(self.docs):
            return self
        keep = (self.docs >= len(allowed)) | allowed[
            np.minimum(self.docs, len(allowed) - 1)
        ]
        if keep.all():
            return self
        owner = np.repeat(
            np.arange(self.probed, dtype=np.int64), self.sig_counts
        )
        sig_counts = np.bincount(owner[keep], minlength=self.probed).astype(
            np.int64
        )
        return ProbeBatch(
            self.docs[keep], self.us[keep], self.vs[keep],
            self.signs[keep], sig_counts, self.probed,
        )

    def signed_intervals(self) -> list[tuple[WindowInterval, int]]:
        """Decode to ``(interval, sign)`` pairs (tests and debugging)."""
        return [
            (WindowInterval(doc, u, v), sign)
            for doc, u, v, sign in zip(
                self.docs.tolist(), self.us.tolist(),
                self.vs.tolist(), self.signs.tolist(),
            )
        ]

    def __repr__(self) -> str:
        return f"ProbeBatch(probed={self.probed}, entries={self.entries})"


def merge_intervals(
    intervals: Iterable[WindowInterval], merge_gap: int = 0
) -> list[WindowInterval]:
    """Coalesce overlapping (and nearby) intervals per document.

    Two consecutive intervals ``d[u1, v1]`` and ``d[u2, v2]`` (``u2 >
    v1``) are merged when ``u2 - v1 < merge_gap``; Section 4.3 shows
    ``merge_gap = w // 2`` balances hash-table refill cost against
    rolling through non-candidate windows.  Regardless of ``merge_gap``,
    overlapping and touching intervals (``u2 <= v1 + 1``) always merge.

    Returns intervals sorted by (doc_id, u).
    """
    ordered = sorted(intervals)
    threshold = max(2, merge_gap)
    merged: list[WindowInterval] = []
    for interval in ordered:
        if merged:
            last = merged[-1]
            if interval.doc_id == last.doc_id and interval.u - last.v < threshold:
                if interval.v > last.v:
                    merged[-1] = WindowInterval(last.doc_id, last.u, interval.v)
                continue
        merged.append(interval)
    return merged


def total_window_count(intervals: Iterable[WindowInterval]) -> int:
    """Sum of window counts over intervals (assumed disjoint)."""
    return sum(interval.num_windows for interval in intervals)
