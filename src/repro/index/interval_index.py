"""The interval postings index (Section 4.1).

Maps each signature to the maximal window intervals that generate it.
Built by consuming :class:`~repro.signatures.SignatureStream` events per
data document: a signature's interval opens at the first window whose
prefix generates it and closes just before the first window that stops
generating it.  The stream already collapses duplicate-signature "false"
opens/closes (the paper's gamma counter), so every event here is a true
transition and every stored interval is maximal.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

from ..errors import IndexStateError
from ..partition.scheme import PartitionScheme
from ..signatures.generate import Signature, signature_hash
from ..signatures.maintain import SignatureStream
from .intervals import ProbeBatch, WindowInterval


class IntervalIndex:
    """Signature -> list of :class:`WindowInterval` postings.

    Parameters
    ----------
    scheme:
        Partition scheme used for signature generation.
    tau, w:
        Search parameters the index was built for.  Queries must use the
        same values; :meth:`probe` does not re-check.
    hashed:
        When true, postings are keyed by the 64-bit
        :func:`~repro.signatures.signature_hash` instead of the rank
        tuple, trading a negligible collision probability (extra
        candidates only — never lost results) for less key memory; this
        mirrors the paper's 4-byte signature hashing.
    """

    def __init__(
        self, w: int, tau: int, scheme: PartitionScheme, hashed: bool = False
    ) -> None:
        self.w = w
        self.tau = tau
        self.scheme = scheme
        self.hashed = hashed
        self._postings: dict[object, list[WindowInterval]] = {}
        self.num_documents = 0
        self.num_windows = 0
        self.build_stats: dict[str, int] = {
            "generated_signatures": 0,
            "generated_token_cost": 0,
            "shared_windows": 0,
            "changed_windows": 0,
        }

    def _key(self, signature: Signature) -> object:
        return signature_hash(signature) if self.hashed else signature

    # ------------------------------------------------------------------
    def add_document(self, doc_id: int, ranks: Sequence[int]) -> None:
        """Deprecated alias of :meth:`index_document`.

        .. deprecated:: 1.3
            Renamed to :meth:`index_document` to free ``add_document``
            for the unified mutation surface (``Index.add`` routes
            through the ingest pipeline, never into an index directly).
        """
        warnings.warn(
            "IntervalIndex.add_document is deprecated; call "
            "index_document (build-time) or mutate through Index.add "
            "(the ingest write path)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.index_document(doc_id, ranks)

    def index_document(self, doc_id: int, ranks: Sequence[int]) -> None:
        """Index all windows of one document (given as a rank sequence)."""
        stream = SignatureStream(ranks, self.w, self.tau, self.scheme)
        open_at: dict[Signature, int] = {}
        postings = self._postings
        key_of = self._key
        for event in stream.events():
            for signature in event.opened:
                if signature in open_at:
                    raise IndexStateError(
                        f"signature {signature} opened twice at window "
                        f"{event.start} of document {doc_id}"
                    )
                open_at[signature] = event.start
            for signature in event.closed:
                start = open_at.pop(signature, None)
                if start is None:
                    raise IndexStateError(
                        f"signature {signature} closed while not open at "
                        f"window {event.start} of document {doc_id}"
                    )
                interval = WindowInterval(doc_id, start, event.start - 1)
                postings.setdefault(key_of(signature), []).append(interval)
        if open_at:
            raise IndexStateError(
                f"{len(open_at)} signatures left open at end of document {doc_id}"
            )
        self.num_documents += 1
        self.num_windows += max(0, len(ranks) - self.w + 1)
        for name in self.build_stats:
            self.build_stats[name] += getattr(stream, name)

    # ------------------------------------------------------------------
    def merge(self, other: "IntervalIndex") -> None:
        """Absorb another index built over a disjoint document partition.

        Postings lists are concatenated, so merging partial indexes in
        ascending doc_id-block order reproduces exactly the lists a
        serial build over the whole collection would have produced
        (serial ``index_document`` also appends in doc_id order).  The
        parameters, scheme, and key mode must match.
        """
        if (
            self.w != other.w
            or self.tau != other.tau
            or self.hashed != other.hashed
            or self.scheme != other.scheme
        ):
            raise IndexStateError(
                "cannot merge interval indexes built with different "
                "parameters, schemes, or key modes"
            )
        postings = self._postings
        for key, intervals in other._postings.items():
            existing = postings.get(key)
            if existing is None:
                postings[key] = list(intervals)
            else:
                existing.extend(intervals)
        self.num_documents += other.num_documents
        self.num_windows += other.num_windows
        for name in self.build_stats:
            self.build_stats[name] += other.build_stats[name]

    # ------------------------------------------------------------------
    def probe(self, signature: Signature) -> list[WindowInterval]:
        """Postings list of ``signature`` (empty list if absent)."""
        return self._postings.get(self._key(signature), [])

    def probe_many(
        self,
        signatures: Sequence[Signature],
        signs: Sequence[int] | None = None,
    ) -> ProbeBatch:
        """Resolve a whole batch of signatures into one :class:`ProbeBatch`.

        ``signs`` carries one +1/-1 candidate delta per signature
        (omitted = all +1); every hit of signature ``i`` lands in the
        batch with ``signs[i]``.  Hits appear in signature order, and
        within one signature in postings append order — the same order
        the scalar ``probe`` loop visited them, so batched candidate
        maintenance is a pure transliteration.
        """
        docs: list[int] = []
        us: list[int] = []
        vs: list[int] = []
        hit_signs: list[int] = []
        sig_counts: list[int] = []
        postings_map = self._postings
        key_of = self._key
        for i, signature in enumerate(signatures):
            postings = postings_map.get(key_of(signature))
            if not postings:
                sig_counts.append(0)
                continue
            sig_counts.append(len(postings))
            sign = 1 if signs is None else signs[i]
            for interval in postings:
                docs.append(interval[0])
                us.append(interval[1])
                vs.append(interval[2])
                hit_signs.append(sign)
        if not docs:
            return ProbeBatch.empty(probed=len(signatures))
        return ProbeBatch.from_rows(docs, us, vs, hit_signs, sig_counts)

    def __contains__(self, signature: Signature) -> bool:
        return self._key(signature) in self._postings

    @property
    def num_signatures(self) -> int:
        """Number of distinct signatures indexed."""
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        """Total number of stored intervals."""
        return sum(len(postings) for postings in self._postings.values())

    def size_in_entries(self) -> int:
        """Abstract index size: one entry per (signature, interval).

        Used by the Figure 7 bench; comparable across index types when
        the window-level index counts one entry per (signature, window).
        """
        return self.num_postings

    def postings_lengths(self):
        """Iterator of per-signature postings-list lengths (analysis)."""
        return (len(postings) for postings in self._postings.values())

    def __repr__(self) -> str:
        return (
            f"IntervalIndex(signatures={self.num_signatures}, "
            f"postings={self.num_postings}, docs={self.num_documents})"
        )
