"""Inverted indexes over signatures.

Two index flavours, matching Sections 3 and 4 of the paper:

* :class:`WindowInvertedIndex` maps each signature to the list of
  individual data windows whose prefix generates it (Algorithm 2).
* :class:`IntervalIndex` maps each signature to maximal *window
  intervals* ``d[u, v]`` (Section 4.1), built by streaming signature
  open/close events while sliding through each document; it is both
  smaller (the paper reports 3-14x) and enables candidate-set sharing
  between adjacent query windows.
"""

from .intervals import ProbeBatch, WindowInterval, merge_intervals
from .interval_index import IntervalIndex
from .inverted import WindowInvertedIndex
from .compact import CompactIntervalIndex, PackedRankDocs, ProbeHit

__all__ = [
    "WindowInterval",
    "ProbeBatch",
    "ProbeHit",
    "merge_intervals",
    "IntervalIndex",
    "CompactIntervalIndex",
    "PackedRankDocs",
    "WindowInvertedIndex",
]
