"""DocumentCollection: a set of documents sharing one vocabulary.

All algorithms in the library take a collection of *data documents* and
one or more *query documents*.  Data and query documents must share the
same :class:`~repro.tokenize.Vocabulary` so token ids are comparable; a
collection owns that vocabulary and offers helpers to encode additional
(query) documents against it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from ..errors import CorpusError
from ..tokenize import Tokenizer, Vocabulary, WhitespaceTokenizer
from .document import Document


class DocumentCollection:
    """An ordered, append-only set of tokenized documents.

    Construct empty and :meth:`add_text`/:meth:`add_tokens`, or use the
    loader helpers in :mod:`repro.corpus.loaders`.
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> None:
        self.tokenizer = tokenizer if tokenizer is not None else WhitespaceTokenizer()
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self._documents: list[Document] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_text(self, text: str, name: str | None = None) -> Document:
        """Tokenize ``text`` with the collection tokenizer and append it."""
        token_ids = self.vocabulary.encode(self.tokenizer.tokenize(text))
        return self.add_token_ids(token_ids, name=name)

    def add_tokens(self, tokens: Sequence[str], name: str | None = None) -> Document:
        """Append a document given as pre-split token strings."""
        return self.add_token_ids(self.vocabulary.encode(tokens), name=name)

    def add_token_ids(
        self, token_ids: Sequence[int], name: str | None = None
    ) -> Document:
        """Append a document given directly as token ids.

        The ids must have been produced by this collection's vocabulary
        (or at least be < len(vocabulary)); otherwise decoding and
        frequency tables would be inconsistent.
        """
        vocab_size = len(self.vocabulary)
        for token_id in token_ids:
            if not 0 <= token_id < vocab_size:
                raise CorpusError(
                    f"token id {token_id} out of range for vocabulary of "
                    f"size {vocab_size}"
                )
        document = Document(len(self._documents), token_ids, name=name)
        self._documents.append(document)
        return document

    def encode_query(self, text: str, name: str | None = None) -> Document:
        """Tokenize a query document against this collection's vocabulary.

        Query tokens absent from the vocabulary map to the
        :data:`~repro.tokenize.OOV_TOKEN_ID` sentinel instead of being
        interned.  This never mutates the shared vocabulary (safe under
        concurrent queries, and worker processes stay byte-identical to
        the parent), and it is exact: an OOV token cannot occur in any
        data window, so it contributes nothing to window overlap either
        way.  The global order ranks the sentinel before every data
        token — maximally selective, exactly like the paper's Example 1
        query-only tokens E and F.

        The returned document is *not* added to the collection; its
        ``doc_id`` is -1 to make accidental use as a data document loud.
        It carries :attr:`~repro.corpus.Document.source_tokens` so OOV
        positions can still be displayed as the original words.
        """
        tokens = self.tokenizer.tokenize(text)
        token_ids = self.vocabulary.encode_query(tokens)
        return Document(-1, token_ids, name=name or "query", source_tokens=tokens)

    def encode_query_tokens(
        self, tokens: Sequence[str], name: str | None = None
    ) -> Document:
        """Like :meth:`encode_query` but for pre-split token strings."""
        token_ids = self.vocabulary.encode_query(tokens)
        return Document(-1, token_ids, name=name or "query", source_tokens=tokens)

    def decode_window(self, document: Document, start: int, w: int) -> list[str]:
        """Token strings of ``W(document, start)``, exact even for OOV.

        Data documents decode through the vocabulary; query documents
        built by :meth:`encode_query` prefer their stored
        :attr:`~repro.corpus.Document.source_tokens`, so sentinel-mapped
        out-of-vocabulary positions render as the original words rather
        than the ``<oov>`` placeholder.
        """
        source = document.source_tokens
        if source is not None and len(source) == len(document):
            document.window(start, w)  # reuse bounds checking
            return list(source[start : start + w])
        return self.vocabulary.decode(document.window(start, w))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def documents(self) -> list[Document]:
        """The documents, in insertion (doc_id) order."""
        return self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def total_tokens(self) -> int:
        """Sum of document lengths."""
        return sum(len(document) for document in self._documents)

    def total_windows(self, w: int) -> int:
        """Total number of sliding windows of size ``w`` over all docs."""
        return sum(document.num_windows(w) for document in self._documents)

    def subset(self, doc_ids: Iterable[int]) -> "DocumentCollection":
        """A new collection containing the given documents (re-numbered).

        The vocabulary and tokenizer are shared (not copied) so token
        ids remain comparable across the parent and the subset — this is
        what the scalability experiment (Figure 9) relies on when
        sampling 20%..100% of the data documents.
        """
        sub = DocumentCollection(tokenizer=self.tokenizer, vocabulary=self.vocabulary)
        for new_id, doc_id in enumerate(doc_ids):
            original = self._documents[doc_id]
            sub._documents.append(
                Document(new_id, original.tokens, name=original.name)
            )
        return sub

    def __repr__(self) -> str:
        return (
            f"DocumentCollection(docs={len(self)}, "
            f"vocab={len(self.vocabulary)}, tokens={self.total_tokens()})"
        )
