"""Loaders for the paper's actual corpora, for users who have them.

The benchmark suite runs on synthetic stand-ins (the corpora are not
redistributable), but everything downstream is format-agnostic — these
loaders bridge to the real files so the reproduction can be re-run on
the originals:

* **REUTERS-21578** (``reut2-*.sgm``): SGML with one ``<REUTERS>``
  element per story; we extract ``<BODY>`` text, as the paper does
  ("we extract news body as documents").
* **TREC-9 Filtering / OHSUMED** (``ohsumed.87`` etc.): MEDLINE-style
  records separated by ``.I`` lines; the abstract lives in the ``.W``
  field ("we extract the paper abstracts").
* **PAN-PC-10**: plain-text ``source-document*.txt`` /
  ``suspicious-document*.txt`` plus per-suspicious XML annotations with
  character-offset plagiarism spans, which we convert to token-level
  :class:`~repro.corpus.GroundTruthPair` spans.

All loaders are plain-Python text processing with no third-party
dependencies and are exercised by fixture-based tests.
"""

from __future__ import annotations

import re
from pathlib import Path
from xml.etree import ElementTree

from ..errors import CorpusError
from ..tokenize import Tokenizer, WhitespaceTokenizer
from .collection import DocumentCollection
from .document import Document
from .plagiarism import GroundTruthPair, ObfuscationLevel

_REUTERS_STORY = re.compile(r"<REUTERS[^>]*>(.*?)</REUTERS>", re.S)
_REUTERS_BODY = re.compile(r"<BODY>(.*?)(?:</BODY>|&#3;)", re.S)
_SGML_ENTITIES = {"&lt;": "<", "&gt;": ">", "&amp;": "&", "&quot;": '"'}


def _unescape_sgml(text: str) -> str:
    for entity, char in _SGML_ENTITIES.items():
        text = text.replace(entity, char)
    return text


def load_reuters_sgml(
    directory: str | Path,
    tokenizer: Tokenizer | None = None,
    min_tokens: int = 100,
    pattern: str = "*.sgm",
) -> DocumentCollection:
    """Load REUTERS-21578 story bodies from ``reut2-*.sgm`` files.

    ``min_tokens`` defaults to 100, the paper's short-document cutoff.
    """
    directory = Path(directory)
    paths = sorted(directory.glob(pattern))
    if not paths:
        raise CorpusError(f"no {pattern} files under {directory}")
    collection = DocumentCollection(tokenizer=tokenizer)
    story_index = 0
    for path in paths:
        text = path.read_text(encoding="latin-1", errors="replace")
        for story in _REUTERS_STORY.finditer(text):
            body_match = _REUTERS_BODY.search(story.group(1))
            if body_match is None:
                continue
            body = _unescape_sgml(body_match.group(1))
            tokens = collection.tokenizer.tokenize(body)
            if len(tokens) < min_tokens:
                continue
            collection.add_tokens(tokens, name=f"reut-{story_index}")
            story_index += 1
    return collection


def load_medline_abstracts(
    path: str | Path,
    tokenizer: Tokenizer | None = None,
    min_tokens: int = 100,
) -> DocumentCollection:
    """Load OHSUMED / TREC-9 Filtering abstracts (``.I`` / ``.W`` format).

    Records start with ``.I <id>``; the abstract body is the line(s)
    following a ``.W`` marker until the next dot-field or record.
    """
    path = Path(path)
    if not path.exists():
        raise CorpusError(f"{path} does not exist")
    collection = DocumentCollection(tokenizer=tokenizer)
    record_id: str | None = None
    in_abstract = False
    abstract_lines: list[str] = []

    def flush() -> None:
        """Emit the record accumulated so far, if long enough."""
        nonlocal abstract_lines
        if record_id is not None and abstract_lines:
            tokens = collection.tokenizer.tokenize(" ".join(abstract_lines))
            if len(tokens) >= min_tokens:
                collection.add_tokens(tokens, name=f"medline-{record_id}")
        abstract_lines = []

    with open(path, encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line.startswith(".I"):
                flush()
                record_id = line[2:].strip()
                in_abstract = False
            elif line.startswith(".W"):
                in_abstract = True
            elif line.startswith("."):
                in_abstract = False
            elif in_abstract:
                abstract_lines.append(line)
    flush()
    return collection


_PAN_DOC_NUMBER = re.compile(r"(\d+)")


def load_pan_corpus(
    source_dir: str | Path,
    suspicious_dir: str | Path,
    tokenizer: Tokenizer | None = None,
    min_tokens: int = 100,
    max_documents: int | None = None,
) -> tuple[DocumentCollection, list[Document], list[GroundTruthPair]]:
    """Load PAN-PC-10 sources, suspicious documents, and ground truth.

    Returns ``(data, queries, ground_truth)`` in the library's usual
    shape: sources become data documents; suspicious documents become
    queries; the XML annotations next to each suspicious document
    (``<feature name="plagiarism" ... this_offset=".." this_length=".."
    source_reference=".." source_offset=".." source_length=".."/>``)
    become token-span ground-truth pairs.

    Character offsets are mapped to token positions with the same
    tokenizer used for the documents, so spans stay aligned.
    """
    tokenizer = tokenizer if tokenizer is not None else WhitespaceTokenizer()
    source_dir = Path(source_dir)
    suspicious_dir = Path(suspicious_dir)
    source_paths = sorted(source_dir.glob("source-document*.txt"))
    suspicious_paths = sorted(suspicious_dir.glob("suspicious-document*.txt"))
    if not source_paths:
        raise CorpusError(f"no source-document*.txt under {source_dir}")
    if not suspicious_paths:
        raise CorpusError(f"no suspicious-document*.txt under {suspicious_dir}")
    if max_documents is not None:
        source_paths = source_paths[:max_documents]
        suspicious_paths = suspicious_paths[:max_documents]

    collection = DocumentCollection(tokenizer=tokenizer)
    doc_id_by_name: dict[str, int] = {}
    offset_maps: dict[str, list[int]] = {}
    for path in source_paths:
        text = path.read_text(encoding="utf-8", errors="replace")
        tokens, starts = _tokenize_with_offsets(text, tokenizer)
        if len(tokens) < min_tokens:
            continue
        document = collection.add_tokens(tokens, name=path.name)
        doc_id_by_name[path.name] = document.doc_id
        offset_maps[path.name] = starts

    queries: list[Document] = []
    truths: list[GroundTruthPair] = []
    for query_id, path in enumerate(suspicious_paths):
        text = path.read_text(encoding="utf-8", errors="replace")
        tokens, starts = _tokenize_with_offsets(text, tokenizer)
        queries.append(
            Document(
                query_id, collection.vocabulary.encode(tokens), name=path.name
            )
        )
        annotation = path.with_suffix(".xml")
        if not annotation.exists():
            continue
        truths.extend(
            _parse_pan_annotations(
                annotation, query_id, starts, doc_id_by_name, offset_maps
            )
        )
    return collection, queries, truths


def _tokenize_with_offsets(
    text: str, tokenizer: Tokenizer
) -> tuple[list[str], list[int]]:
    """Tokenize and return each token's character start offset.

    Works for tokenizers whose outputs appear verbatim in the text in
    order (true for the whitespace and word tokenizers).
    """
    tokens = tokenizer.tokenize(text)
    lowered = text.lower()
    starts: list[int] = []
    cursor = 0
    for token in tokens:
        position = lowered.find(token, cursor)
        if position < 0:
            position = cursor  # defensive: keep offsets monotone
        starts.append(position)
        cursor = position + len(token)
    return tokens, starts


def _char_span_to_tokens(
    starts: list[int], offset: int, length: int
) -> tuple[int, int] | None:
    """Convert a character span to an inclusive token-position span."""
    from bisect import bisect_left, bisect_right

    if not starts or length <= 0:
        return None
    lo = bisect_left(starts, offset)
    hi = bisect_right(starts, offset + length - 1) - 1
    if hi < lo:
        return None
    return lo, min(hi, len(starts) - 1)


def _parse_pan_annotations(
    path: Path,
    query_id: int,
    query_starts: list[int],
    doc_id_by_name: dict[str, int],
    offset_maps: dict[str, list[int]],
) -> list[GroundTruthPair]:
    try:
        root = ElementTree.parse(path).getroot()
    except ElementTree.ParseError as exc:
        raise CorpusError(f"cannot parse PAN annotation {path}: {exc}") from exc
    truths: list[GroundTruthPair] = []
    for feature in root.iter("feature"):
        if feature.get("name") != "plagiarism":
            continue
        source_name = feature.get("source_reference", "")
        doc_id = doc_id_by_name.get(source_name)
        if doc_id is None:
            continue  # source dropped (too short) or outside the sample
        query_span = _char_span_to_tokens(
            query_starts,
            int(feature.get("this_offset", 0)),
            int(feature.get("this_length", 0)),
        )
        data_span = _char_span_to_tokens(
            offset_maps[source_name],
            int(feature.get("source_offset", 0)),
            int(feature.get("source_length", 0)),
        )
        if query_span is None or data_span is None:
            continue
        obfuscation = feature.get("obfuscation", "")
        level = {
            "none": ObfuscationLevel.NONE,
            "low": ObfuscationLevel.LOW,
            "high": ObfuscationLevel.HIGH,
            "simulated": ObfuscationLevel.SIMULATED,
        }.get(obfuscation, ObfuscationLevel.NONE)
        truths.append(
            GroundTruthPair(
                data_doc_id=doc_id,
                data_span=data_span,
                query_id=query_id,
                query_span=query_span,
                level=level,
            )
        )
    return truths
