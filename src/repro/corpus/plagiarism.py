"""Plagiarism injection with exact ground truth (PAN-PC-10 substitute).

PAN-PC-10 contains four plagiarism types: artificial plagiarism with no,
low or high obfuscation (machine-generated edits) and simulated
plagiarism (human paraphrase).  This module reproduces that taxonomy
with controlled token-level edit operations — substitution, insertion,
deletion and local reorder — whose rates grow with the obfuscation
level.  Because we perform the injection ourselves, ground-truth spans
are exact, replacing the paper's manually labelled pairs (Appendix D.2).

Ground truth pairs follow the paper's format ``<d[u, v], q[u', v']>``:
the query span ``[u', v']`` is a reuse of the data span ``[u, v]``
(token positions, 0-based and inclusive here).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from ..errors import CorpusError
from .collection import DocumentCollection


class ObfuscationLevel(enum.Enum):
    """PAN-PC-10 plagiarism types, by increasing amount of laundering."""

    NONE = "none"
    LOW = "low"
    HIGH = "high"
    SIMULATED = "simulated"


#: Per level: (fraction of tokens covered by edit clusters, cluster
#: length, adjacent-swap rate, probability of a chunk-reorder pass).
#: Edits are *bursty* — they hit contiguous clusters and leave clean
#: runs in between, the way real paraphrasing rewrites some phrases and
#: keeps others verbatim.  Swaps model word-order laundering: they leave
#: the window *multiset* untouched (free for multiset methods like
#: pkwise) while destroying token q-grams (fatal for fingerprinting
#: methods like FBW) — the discrimination Section 7 and Appendix D.2
#: report.
_EDIT_CLUSTERS: dict[ObfuscationLevel, tuple[float, int, float, float]] = {
    ObfuscationLevel.NONE: (0.00, 0, 0.00, 0.0),
    ObfuscationLevel.LOW: (0.08, 3, 0.02, 0.1),
    ObfuscationLevel.HIGH: (0.18, 3, 0.10, 0.4),
    ObfuscationLevel.SIMULATED: (0.30, 2, 0.25, 0.8),
}

#: Within an edit cluster: probabilities of substituting / deleting a
#: token (the rest are kept) and of inserting a fresh token after it.
_IN_CLUSTER_SUB = 0.55
_IN_CLUSTER_DEL = 0.20
_IN_CLUSTER_INS = 0.20


@dataclass(frozen=True)
class GroundTruthPair:
    """``<d[u, v], q[u', v']>``: query span copies data span.

    Spans are inclusive 0-based token-position ranges, matching the
    paper's Appendix D.2 notation (which is 1-based; we use 0-based
    consistently with the rest of the library).
    """

    data_doc_id: int
    data_span: tuple[int, int]
    query_id: int
    query_span: tuple[int, int]
    level: ObfuscationLevel

    def data_overlaps(self, window_start: int, w: int) -> bool:
        """Does window ``W(d, window_start)`` overlap the data span?"""
        lo, hi = self.data_span
        return window_start <= hi and window_start + w - 1 >= lo

    def query_overlaps(self, window_start: int, w: int) -> bool:
        """Does window ``W(q, window_start)`` overlap the query span?"""
        lo, hi = self.query_span
        return window_start <= hi and window_start + w - 1 >= lo


@dataclass(frozen=True)
class PlagiarismCase:
    """A planned injection: which data segment goes into which query."""

    data_doc_id: int
    data_start: int
    length: int
    level: ObfuscationLevel


class PlagiarismInjector:
    """Copies data segments into queries with level-controlled edits.

    Parameters
    ----------
    seed:
        Seed for the private RNG; identical seeds reproduce identical
        injections.
    vocabulary_size:
        Range of token ids available for substitution/insertion edits.
        Replacement tokens are drawn uniformly, which mimics the
        "uncommon wording" property the paper observed in simulated
        plagiarism (replacements tend to be rare tokens).
    """

    def __init__(self, seed: int, vocabulary_size: int) -> None:
        if vocabulary_size < 1:
            raise CorpusError("vocabulary_size must be >= 1")
        self._rng = random.Random(seed)
        self._vocabulary_size = vocabulary_size

    # ------------------------------------------------------------------
    def obfuscate(
        self, tokens: list[int], level: ObfuscationLevel
    ) -> list[int]:
        """Apply level-appropriate *clustered* edits to a copied segment.

        A fraction of the segment (growing with the level) is covered by
        short edit clusters; inside a cluster tokens are substituted,
        deleted, or followed by insertions, while the text between
        clusters stays verbatim — mirroring how paraphrase rewrites some
        phrases and leaves others intact.  Word-order laundering is
        modelled by adjacent-token swaps (multiset-preserving) plus an
        optional chunk-level reorder pass.
        """
        cover, cluster_len, swap_rate, reorder_prob = _EDIT_CLUSTERS[level]
        rng = self._rng
        if not tokens or (cover == 0.0 and swap_rate == 0.0):
            return list(tokens)
        n = len(tokens)
        in_cluster = [False] * n
        if cover > 0.0:
            num_clusters = max(1, round(cover * n / max(1, cluster_len)))
            for _ in range(num_clusters):
                start = rng.randrange(n)
                for position in range(start, min(n, start + cluster_len)):
                    in_cluster[position] = True
        out: list[int] = []
        for position, token in enumerate(tokens):
            if not in_cluster[position]:
                out.append(token)
                continue
            roll = rng.random()
            if roll < _IN_CLUSTER_DEL:
                continue  # deletion
            if roll < _IN_CLUSTER_DEL + _IN_CLUSTER_SUB:
                out.append(rng.randrange(self._vocabulary_size))
            else:
                out.append(token)
            if rng.random() < _IN_CLUSTER_INS:
                out.append(rng.randrange(self._vocabulary_size))
        if swap_rate > 0.0:
            position = 0
            while position < len(out) - 1:
                if rng.random() < swap_rate:
                    out[position], out[position + 1] = (
                        out[position + 1],
                        out[position],
                    )
                    position += 2  # never undo a swap with the next roll
                else:
                    position += 1
        if out and rng.random() < reorder_prob:
            out = self._reorder_chunks(out)
        return out

    def _reorder_chunks(self, tokens: list[int], chunk: int = 25) -> list[int]:
        """Shuffle order of ~sentence-sized chunks (word-order laundering)."""
        chunks = [tokens[i : i + chunk] for i in range(0, len(tokens), chunk)]
        self._rng.shuffle(chunks)
        return [token for piece in chunks for token in piece]

    # ------------------------------------------------------------------
    def splice_case(
        self,
        data: DocumentCollection,
        query_id: int,
        query_tokens: list[int],
        segment_length: int,
        level: ObfuscationLevel,
    ) -> tuple[list[int], GroundTruthPair | None]:
        """Copy a random data segment into ``query_tokens``.

        Returns the new token list and the ground-truth pair, or
        ``(query_tokens, None)`` when no data document is long enough to
        donate a segment.
        """
        rng = self._rng
        donors = [d for d in data if len(d) >= segment_length]
        if not donors:
            return query_tokens, None
        donor = donors[rng.randrange(len(donors))]
        src_start = rng.randrange(len(donor) - segment_length + 1)
        segment = list(donor.tokens[src_start : src_start + segment_length])
        copied = self.obfuscate(segment, level)
        if not copied:
            return query_tokens, None

        insert_at = rng.randrange(len(query_tokens) + 1)
        new_tokens = query_tokens[:insert_at] + copied + query_tokens[insert_at:]
        truth = GroundTruthPair(
            data_doc_id=donor.doc_id,
            data_span=(src_start, src_start + segment_length - 1),
            query_id=query_id,
            query_span=(insert_at, insert_at + len(copied) - 1),
            level=level,
        )
        return new_tokens, truth

    def inject_all(
        self,
        data: DocumentCollection,
        queries: list[list[int]],
        cases: list[PlagiarismCase],
    ) -> tuple[list[list[int]], list[GroundTruthPair]]:
        """Apply explicit :class:`PlagiarismCase` plans round-robin.

        Each case ``i`` is spliced into query ``i % len(queries)``.
        Useful when a bench wants full control over which documents are
        copied (e.g. equal numbers of each obfuscation level).
        """
        if not queries:
            raise CorpusError("need at least one query to inject into")
        out_queries = [list(tokens) for tokens in queries]
        truths: list[GroundTruthPair] = []
        for index, case in enumerate(cases):
            query_id = index % len(out_queries)
            donor = data[case.data_doc_id]
            end = case.data_start + case.length
            if case.data_start < 0 or end > len(donor):
                raise CorpusError(
                    f"case segment [{case.data_start}, {end}) out of range "
                    f"for document {case.data_doc_id} of length {len(donor)}"
                )
            segment = list(donor.tokens[case.data_start : end])
            copied = self.obfuscate(segment, case.level)
            if not copied:
                continue
            tokens = out_queries[query_id]
            insert_at = self._rng.randrange(len(tokens) + 1)
            out_queries[query_id] = tokens[:insert_at] + copied + tokens[insert_at:]
            truths = shift_spans(truths, query_id, insert_at, len(copied))
            truths.append(
                GroundTruthPair(
                    data_doc_id=case.data_doc_id,
                    data_span=(case.data_start, end - 1),
                    query_id=query_id,
                    query_span=(insert_at, insert_at + len(copied) - 1),
                    level=case.level,
                )
            )
        return out_queries, truths


def shift_spans(
    truths: list[GroundTruthPair],
    query_id: int,
    insert_at: int,
    inserted_length: int,
) -> list[GroundTruthPair]:
    """Re-base earlier ground-truth spans after an insertion into a query.

    An insertion of ``inserted_length`` tokens at position ``insert_at``
    moves any span starting at or after that position right by the same
    amount; a span straddling the insertion point is stretched (its
    tokens are still there, with the new material in the middle).
    """
    adjusted: list[GroundTruthPair] = []
    for truth in truths:
        if truth.query_id != query_id:
            adjusted.append(truth)
            continue
        lo, hi = truth.query_span
        if lo >= insert_at:
            span = (lo + inserted_length, hi + inserted_length)
        elif hi >= insert_at:
            span = (lo, hi + inserted_length)
        else:
            span = (lo, hi)
        adjusted.append(
            GroundTruthPair(
                data_doc_id=truth.data_doc_id,
                data_span=truth.data_span,
                query_id=truth.query_id,
                query_span=span,
                level=truth.level,
            )
        )
    return adjusted
