"""Corpus substrate: documents, collections, loaders, and generators.

Real corpora used by the paper (REUTERS, TREC, PAN-PC-10) are not
redistributable here, so this package also ships synthetic generators
whose statistics are calibrated to Table 1 of the paper, plus a
plagiarism injector that produces exact ground-truth spans for the
quality experiments (Appendix D.2).
"""

from .collection import DocumentCollection
from .document import Document
from .loaders import collection_from_directory, collection_from_texts
from .plagiarism import (
    GroundTruthPair,
    ObfuscationLevel,
    PlagiarismCase,
    PlagiarismInjector,
)
from .real_datasets import (
    load_medline_abstracts,
    load_pan_corpus,
    load_reuters_sgml,
)
from .stats import CollectionStats
from .synthetic import (
    DATASET_PROFILES,
    DatasetProfile,
    SyntheticCorpusGenerator,
    make_profile_collection,
)

__all__ = [
    "Document",
    "DocumentCollection",
    "CollectionStats",
    "collection_from_directory",
    "collection_from_texts",
    "SyntheticCorpusGenerator",
    "DatasetProfile",
    "DATASET_PROFILES",
    "make_profile_collection",
    "PlagiarismInjector",
    "PlagiarismCase",
    "GroundTruthPair",
    "ObfuscationLevel",
    "load_reuters_sgml",
    "load_medline_abstracts",
    "load_pan_corpus",
]
