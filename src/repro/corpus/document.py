"""The Document value type: a sequence of token ids with an identity.

The paper defines a document as a sequence of tokens from a finite
universe (Section 2.1).  Internally tokens are integer ids interned by a
:class:`~repro.tokenize.Vocabulary` owned by the enclosing
:class:`~repro.corpus.DocumentCollection`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence


class Document:
    """An immutable tokenized document.

    Parameters
    ----------
    doc_id:
        Position of the document in its collection; used as the
        ``doc_id`` component of every match result.
    tokens:
        Token ids, in original document order.
    name:
        Optional human-readable identifier (file name, headline, ...).
    source_tokens:
        Optional original token strings.  Query encodings carry them so
        out-of-vocabulary positions (sentinel id, see
        :data:`~repro.tokenize.OOV_TOKEN_ID`) can still be displayed
        faithfully; identity (equality/hash) ignores them.
    """

    __slots__ = ("doc_id", "tokens", "name", "_source")

    def __init__(
        self,
        doc_id: int,
        tokens: Sequence[int],
        name: str | None = None,
        source_tokens: Sequence[str] | None = None,
    ) -> None:
        self.doc_id = doc_id
        self.tokens: tuple[int, ...] = tuple(tokens)
        self.name = name if name is not None else f"doc{doc_id}"
        self._source = tuple(source_tokens) if source_tokens is not None else None

    @property
    def source_tokens(self) -> tuple[str, ...] | None:
        """Original token strings when encoded from text, else None."""
        try:
            return self._source
        except AttributeError:  # documents unpickled from older snapshots
            return None

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[int]:
        return iter(self.tokens)

    def __getitem__(self, index: int | slice) -> int | tuple[int, ...]:
        return self.tokens[index]

    def num_windows(self, w: int) -> int:
        """Number of sliding windows of size ``w`` (0 if too short)."""
        return max(0, len(self.tokens) - w + 1)

    def window(self, start: int, w: int) -> tuple[int, ...]:
        """The tokens of window ``W(d, start)`` (0-based start)."""
        if start < 0 or start + w > len(self.tokens):
            raise IndexError(
                f"window [{start}, {start + w}) out of range for "
                f"document of length {len(self.tokens)}"
            )
        return self.tokens[start : start + w]

    def __repr__(self) -> str:
        return f"Document(id={self.doc_id}, name={self.name!r}, len={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return self.doc_id == other.doc_id and self.tokens == other.tokens

    def __hash__(self) -> int:
        return hash((self.doc_id, self.tokens))
