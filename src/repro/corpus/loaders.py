"""Loaders for plain-text corpora on disk or in memory.

Users reproducing the paper on the real REUTERS / TREC / PAN corpora can
point :func:`collection_from_directory` at a directory of ``.txt`` files
(one document per file); everything downstream is identical to the
synthetic path.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import CorpusError
from ..tokenize import Tokenizer
from .collection import DocumentCollection


def collection_from_texts(
    texts: list[str],
    tokenizer: Tokenizer | None = None,
    names: list[str] | None = None,
    min_tokens: int = 0,
) -> DocumentCollection:
    """Build a collection from in-memory strings.

    ``min_tokens`` drops short documents (the paper removes documents
    under 100 tokens, Section 7.1); pass 100 to mirror that.
    """
    if names is not None and len(names) != len(texts):
        raise CorpusError(
            f"names ({len(names)}) and texts ({len(texts)}) differ in length"
        )
    collection = DocumentCollection(tokenizer=tokenizer)
    for index, text in enumerate(texts):
        tokens = collection.tokenizer.tokenize(text)
        if len(tokens) < min_tokens:
            continue
        name = names[index] if names is not None else None
        collection.add_tokens(tokens, name=name)
    return collection


def collection_from_directory(
    directory: str | Path,
    tokenizer: Tokenizer | None = None,
    pattern: str = "*.txt",
    min_tokens: int = 0,
    encoding: str = "utf-8",
) -> DocumentCollection:
    """Build a collection from one-document-per-file text files.

    Files are loaded in sorted name order for determinism.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise CorpusError(f"{directory} is not a directory")
    paths = sorted(directory.glob(pattern))
    if not paths:
        raise CorpusError(f"no files matching {pattern!r} under {directory}")
    collection = DocumentCollection(tokenizer=tokenizer)
    for path in paths:
        tokens = collection.tokenizer.tokenize(path.read_text(encoding=encoding))
        if len(tokens) < min_tokens:
            continue
        collection.add_tokens(tokens, name=path.name)
    return collection
