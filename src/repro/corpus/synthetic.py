"""Synthetic corpora calibrated to the paper's dataset statistics.

The paper evaluates on REUTERS, TREC and PAN-PC-10 (Table 1).  Those
corpora cannot be bundled here, so this module generates document
collections with the same *shape*: Zipf-distributed token frequencies
(the power-law the paper's partitioning idea relies on, Section 3.2),
matching document counts, lengths and vocabulary sizes — all scalable by
a single ``scale`` knob so benches run at laptop size.

Queries for the runtime experiments must actually contain local
replications (otherwise every algorithm degenerates to the no-result
fast path), so :func:`make_profile_collection` also splices obfuscated
segments of data documents into the generated queries via
:class:`~repro.corpus.plagiarism.PlagiarismInjector` and returns the
exact ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..errors import CorpusError
from ..tokenize import Vocabulary, WhitespaceTokenizer
from .collection import DocumentCollection
from .document import Document
from .plagiarism import (
    GroundTruthPair,
    ObfuscationLevel,
    PlagiarismInjector,
    shift_spans,
)


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical profile of a dataset, after Table 1 of the paper.

    ``zipf_s`` is the exponent of the token frequency power law;
    natural-language corpora sit near 1.0-1.2.
    """

    name: str
    num_documents: int
    num_queries: int
    avg_doc_length: float
    avg_query_length: float
    vocabulary_size: int
    zipf_s: float = 1.05
    doc_length_cv: float = 0.35  # coefficient of variation of lengths
    min_doc_length: int = 100  # the paper drops docs shorter than 100 tokens

    def scaled(self, scale: float) -> "DatasetProfile":
        """Shrink (or grow) the profile by ``scale``.

        Document and query counts scale linearly; the vocabulary scales
        by sqrt(scale), following Heaps' law (vocabulary grows roughly
        with the square root of corpus size), so token frequency shapes
        stay realistic at small scales.  Document lengths are preserved
        (window behaviour depends on absolute length).
        """
        if scale <= 0:
            raise CorpusError(f"scale must be positive, got {scale}")
        return replace(
            self,
            num_documents=max(2, round(self.num_documents * scale)),
            num_queries=max(1, round(self.num_queries * scale)),
            vocabulary_size=max(200, round(self.vocabulary_size * scale**0.5)),
        )


#: Profiles copied from Table 1.  PAN's data documents average ~27K
#: tokens; the profile caps that at 4000 by default scaling in benches to
#: keep pure-Python runtimes sane — see DESIGN.md substitution notes.
DATASET_PROFILES: dict[str, DatasetProfile] = {
    "REUTERS": DatasetProfile(
        name="REUTERS",
        num_documents=7_791,
        num_queries=1_000,
        avg_doc_length=237.2,
        avg_query_length=231.1,
        vocabulary_size=33_260,
    ),
    "TREC": DatasetProfile(
        name="TREC",
        num_documents=185_666,
        num_queries=1_000,
        avg_doc_length=198.2,
        avg_query_length=214.1,
        vocabulary_size=148_244,
    ),
    "PAN": DatasetProfile(
        name="PAN",
        num_documents=10_483,
        num_queries=1_000,
        avg_doc_length=27_026.8,
        avg_query_length=721.6,
        vocabulary_size=1_846_623,
    ),
}


class SyntheticCorpusGenerator:
    """Generates token-id documents under a Zipf token distribution.

    All randomness flows from the seed passed at construction; two
    generators with the same profile and seed produce identical
    collections.
    """

    def __init__(self, profile: DatasetProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng = np.random.Generator(np.random.PCG64(seed))
        ranks = np.arange(1, profile.vocabulary_size + 1, dtype=np.float64)
        weights = ranks ** (-profile.zipf_s)
        self._cumulative = np.cumsum(weights / weights.sum())

    # ------------------------------------------------------------------
    def sample_tokens(self, length: int) -> list[int]:
        """Sample ``length`` token ids from the Zipf distribution."""
        uniforms = self._rng.random(length)
        ids = np.searchsorted(self._cumulative, uniforms, side="right")
        return ids.tolist()

    def sample_length(self, mean: float) -> int:
        """Sample a document length (normal, clipped at the minimum)."""
        stddev = mean * self.profile.doc_length_cv
        length = int(round(self._rng.normal(mean, stddev)))
        return max(self.profile.min_doc_length, length)

    def generate_data(self) -> DocumentCollection:
        """Generate the data collection (documents only, no queries)."""
        collection = self._empty_collection()
        for index in range(self.profile.num_documents):
            length = self.sample_length(self.profile.avg_doc_length)
            collection.add_token_ids(
                self.sample_tokens(length), name=f"{self.profile.name}-d{index}"
            )
        return collection

    def generate_queries(self, count: int | None = None) -> list[list[int]]:
        """Generate raw query token-id lists (before reuse injection)."""
        if count is None:
            count = self.profile.num_queries
        queries = []
        for _ in range(count):
            length = self.sample_length(self.profile.avg_query_length)
            queries.append(self.sample_tokens(length))
        return queries

    def _empty_collection(self) -> DocumentCollection:
        vocabulary = Vocabulary(
            f"t{index}" for index in range(self.profile.vocabulary_size)
        )
        return DocumentCollection(
            tokenizer=WhitespaceTokenizer(), vocabulary=vocabulary
        )


@dataclass(frozen=True)
class ReuseSpec:
    """How much replicated text to splice into query documents.

    ``cases_per_query`` segments of ``segment_length`` tokens each are
    copied from random data documents into each query, obfuscated at one
    of the ``levels`` (cycled round-robin for determinism).
    """

    cases_per_query: int = 1
    segment_length: int = 120
    levels: tuple[ObfuscationLevel, ...] = (
        ObfuscationLevel.NONE,
        ObfuscationLevel.LOW,
        ObfuscationLevel.HIGH,
        ObfuscationLevel.SIMULATED,
    )


def make_profile_collection(
    profile_name: str,
    scale: float = 1.0,
    seed: int = 0,
    reuse: ReuseSpec | None = None,
    num_queries: int | None = None,
) -> tuple[DocumentCollection, list[Document], list[GroundTruthPair]]:
    """One-stop workload factory used by examples and benchmarks.

    Returns ``(data, queries, ground_truth)``.  With the default
    ``reuse`` spec every query contains one obfuscated copy of a data
    segment, so runtime benches measure algorithms doing real matching
    work and quality benches have exact labels.  ``num_queries``
    overrides the (scaled) profile query count.
    """
    try:
        profile = DATASET_PROFILES[profile_name]
    except KeyError:
        known = ", ".join(sorted(DATASET_PROFILES))
        raise CorpusError(
            f"unknown profile {profile_name!r}; known profiles: {known}"
        ) from None
    profile = profile.scaled(scale)
    if reuse is None:
        reuse = ReuseSpec()

    generator = SyntheticCorpusGenerator(profile, seed=seed)
    data = generator.generate_data()
    raw_queries = generator.generate_queries(num_queries)

    injector = PlagiarismInjector(seed=seed + 1, vocabulary_size=len(data.vocabulary))
    queries: list[Document] = []
    ground_truth: list[GroundTruthPair] = []
    level_cycle = reuse.levels or (ObfuscationLevel.NONE,)
    case_index = 0
    for query_id, tokens in enumerate(raw_queries):
        query_truths: list[GroundTruthPair] = []
        for _ in range(reuse.cases_per_query):
            level = level_cycle[case_index % len(level_cycle)]
            case_index += 1
            tokens, truth = injector.splice_case(
                data,
                query_id,
                tokens,
                segment_length=reuse.segment_length,
                level=level,
            )
            if truth is not None:
                # Later insertions shift spans recorded for this query.
                lo, hi = truth.query_span
                query_truths = shift_spans(query_truths, query_id, lo, hi - lo + 1)
                query_truths.append(truth)
        ground_truth.extend(query_truths)
        queries.append(
            Document(query_id, tokens, name=f"{profile.name}-q{query_id}")
        )
    return data, queries, ground_truth


def effective_universe_size(data: DocumentCollection) -> int:
    """Distinct token ids that actually occur in the data documents."""
    used: set[int] = set()
    for document in data:
        used.update(document.tokens)
    return len(used)


def zipf_expected_frequency(rank: int, size: int, s: float) -> float:
    """Expected relative frequency of the ``rank``-th most common token.

    Exposed for tests that validate the generator's distribution.
    """
    harmonic = sum(1.0 / (r**s) for r in range(1, size + 1))
    return (1.0 / (rank**s)) / harmonic


def log_log_slope(frequencies: list[int]) -> float:
    """Least-squares slope of log(frequency) vs log(rank).

    A Zipf sample with exponent ``s`` has slope close to ``-s`` over the
    head of the distribution; tests use this to validate the generator.
    """
    pairs = [
        (math.log(rank + 1), math.log(freq))
        for rank, freq in enumerate(sorted(frequencies, reverse=True))
        if freq > 0
    ]
    n = len(pairs)
    if n < 2:
        raise CorpusError("need at least two non-zero frequencies")
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    den = sum((x - mean_x) ** 2 for x, _ in pairs)
    return num / den
