"""Collection statistics, mirroring Table 1 of the paper.

The paper reports |D|, |Q|, avg |d|, avg |q| and |U| per dataset; the
bench for Table 1 prints the same row layout from
:class:`CollectionStats`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .collection import DocumentCollection
from .document import Document


@dataclass(frozen=True)
class CollectionStats:
    """Summary statistics of a data collection plus a query set."""

    num_data_documents: int
    num_query_documents: int
    avg_data_length: float
    avg_query_length: float
    universe_size: int
    total_data_tokens: int
    total_query_tokens: int

    @classmethod
    def compute(
        cls,
        data: DocumentCollection,
        queries: list[Document],
    ) -> "CollectionStats":
        """Compute statistics for ``data`` and ``queries``.

        The universe size counts distinct tokens appearing in either the
        data or the query documents (the shared vocabulary may contain
        more entries than are actually used, e.g. after subsetting).
        """
        used: set[int] = set()
        total_data = 0
        for document in data:
            used.update(document.tokens)
            total_data += len(document)
        total_query = 0
        for query in queries:
            used.update(query.tokens)
            total_query += len(query)
        num_data = len(data)
        num_query = len(queries)
        return cls(
            num_data_documents=num_data,
            num_query_documents=num_query,
            avg_data_length=total_data / num_data if num_data else 0.0,
            avg_query_length=total_query / num_query if num_query else 0.0,
            universe_size=len(used),
            total_data_tokens=total_data,
            total_query_tokens=total_query,
        )

    def as_table_row(self, name: str) -> str:
        """A row formatted like Table 1 of the paper."""
        return (
            f"{name:<10} |D|={self.num_data_documents:<8} "
            f"|Q|={self.num_query_documents:<6} "
            f"avg|d|={self.avg_data_length:<10.1f} "
            f"avg|q|={self.avg_query_length:<8.1f} "
            f"|U|={self.universe_size}"
        )


def token_frequency_counter(data: DocumentCollection) -> Counter[int]:
    """Document-level token frequencies (occurrences, with multiplicity)."""
    counter: Counter[int] = Counter()
    for document in data:
        counter.update(document.tokens)
    return counter
