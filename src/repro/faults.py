"""Deterministic fault injection for robustness testing.

Production failures — a worker process OOM-killed mid-chunk, a snapshot
truncated by a full disk, a flapping network between client and server —
are rare, non-deterministic, and therefore untestable unless the system
can *manufacture* them on demand.  This module is the single switchboard
for that: named **injection points** threaded through the parallel
workers, the persistence layer, and the serving path, all off by
default, all driven by one seedable, process-safe :class:`FaultPlan`.

Design constraints, in order:

* **Measured-zero disabled path.**  Every injection site is one call to
  :func:`inject` (or :func:`inject_bytes`); with no plan installed that
  call is a module-global load, an ``is None`` test, and a return.
  ``benchmarks/bench_faults.py`` measures the end-to-end overhead of the
  disabled layer and CI fails it above 1%.
* **Determinism.**  A plan is a list of :class:`FaultSpec` rules; a rule
  fires based on the injection point's name, an equality ``match`` on
  the site's context (chunk index, query position, section name...), a
  per-point hit counter, and — when ``probability < 1`` — a pseudo
  random draw derived purely from ``(plan seed, rule id, hit index)``.
  Two runs of the same plan over the same workload inject the same
  faults.
* **Process safety.**  Plans travel into pool workers (inherited under
  ``fork``, re-installed by the pool initializer under ``spawn``, or
  picked up from the ``REPRO_FAULTS`` environment variable by any
  subprocess).  Rules with ``max_triggers`` bound their firings *across
  processes* through a filesystem ledger: each firing atomically claims
  one slot file (``O_CREAT | O_EXCL``), so "kill exactly one worker"
  means exactly one even when four processes race through the site.

Fault kinds:

``raise``
    Raise :class:`~repro.errors.FaultInjectionError` naming the point.
``delay``
    Sleep ``delay_seconds`` (latency/timeout testing).
``corrupt``
    Only at :func:`inject_bytes` sites: flip one deterministically
    chosen byte of the payload (disk corruption testing).
``kill``
    ``os._exit(KILL_EXIT_CODE)`` — an abrupt worker death that skips
    ``finally`` blocks and pool bookkeeping, exactly like a SIGKILL.

Injection-point catalog (see ``docs/robustness.md`` for semantics):
``parallel.worker.chunk``, ``parallel.worker.query``,
``parallel.worker.document``, ``persistence.write``,
``persistence.read``, ``service.request``, ``client.request``,
``shards.scatter`` (router → shard sub-request, context ``shard``,
``replica``), ``shards.failover`` (before a failover sub-request to
the next replica of a failed shard, context ``shard``, ``replica``),
``shards.gather`` (merging one shard's reply, context ``shard``),
``shards.swap`` (rolling snapshot swap of one shard, context ``shard``),
``supervisor.restart`` (before respawning a dead shard worker, context
``shard``, ``replica``), ``supervisor.readmit`` (before the restarted
worker's health + generation gate, context ``shard``, ``replica``),
``ingest.wal`` (write-ahead-log append, ``inject_bytes`` site — reach
it with ``corrupt`` for torn/damaged tails; context ``seq``, ``op``,
``generation``), ``ingest.compact`` (memtable fold / segment write /
manifest install, context ``phase`` in ``fold`` | ``segment`` |
``manifest`` plus ``generation`` — ``kill`` here simulates dying
mid-compaction for recovery tests).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .errors import ConfigurationError, FaultInjectionError

#: Exit code of a ``kill`` fault — distinctive in pool crash reports.
KILL_EXIT_CODE = 87

#: Environment variable naming a JSON plan file; any process (including
#: spawn-started pool workers and CLI subprocesses) picks it up lazily.
PLAN_ENV_VAR = "REPRO_FAULTS"

_KINDS = ("raise", "delay", "corrupt", "kill")


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *where* it applies and *what* it does.

    Parameters
    ----------
    point:
        Injection-point name the rule listens on.
    kind:
        One of ``raise`` / ``delay`` / ``corrupt`` / ``kill``.
    match:
        Equality constraints on the site's context kwargs; the rule
        applies only when every listed key is present with that value
        (e.g. ``{"chunk_index": 2}`` or ``{"section": "searcher"}``).
    max_triggers:
        Total firings allowed (``None`` = unlimited).  With a plan
        ledger the bound holds across processes; without one it is
        per process.
    probability:
        Chance of firing per eligible hit, drawn deterministically from
        the plan seed, the rule id, and the hit index.
    delay_seconds:
        Sleep length for ``delay`` rules.
    message:
        Extra text carried by the raised error (``raise`` rules).
    """

    point: str
    kind: str
    match: dict = field(default_factory=dict)
    max_triggers: int | None = None
    probability: float = 1.0
    delay_seconds: float = 0.01
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} (have: {', '.join(_KINDS)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ConfigurationError(
                f"max_triggers must be >= 1 or None, got {self.max_triggers}"
            )

    def matches(self, context: dict) -> bool:
        """True when every ``match`` constraint holds in ``context``."""
        return all(context.get(key) == value for key, value in self.match.items())


class FaultPlan:
    """A seedable set of :class:`FaultSpec` rules, installable globally.

    ``ledger`` is a directory used to enforce ``max_triggers`` across
    processes (created on demand); omit it for single-process plans.
    The plan pickles cleanly (hit counters are per-process runtime state
    and reset in the receiving process).
    """

    def __init__(
        self,
        specs: list[FaultSpec] | tuple[FaultSpec, ...] = (),
        *,
        seed: int = 0,
        ledger: str | Path | None = None,
    ) -> None:
        self.specs = list(specs)
        self.seed = seed
        self.ledger = Path(ledger) if ledger is not None else None
        self._hits: dict[str, int] = {}
        self._local_claims: dict[int, int] = {}

    # -- pickling: runtime counters never travel between processes -----
    def __getstate__(self) -> dict:
        return {"specs": self.specs, "seed": self.seed, "ledger": self.ledger}

    def __setstate__(self, state: dict) -> None:
        self.specs = state["specs"]
        self.seed = state["seed"]
        self.ledger = state["ledger"]
        self._hits = {}
        self._local_claims = {}

    # ------------------------------------------------------------------
    def _claim(self, spec_index: int, spec: FaultSpec) -> bool:
        """Reserve one firing of ``spec``; False when exhausted."""
        if spec.max_triggers is None:
            return True
        if self.ledger is None:
            used = self._local_claims.get(spec_index, 0)
            if used >= spec.max_triggers:
                return False
            self._local_claims[spec_index] = used + 1
            return True
        self.ledger.mkdir(parents=True, exist_ok=True)
        safe_point = spec.point.replace("/", "_")
        for slot in range(spec.max_triggers):
            slot_path = self.ledger / f"{safe_point}.{spec_index}.{slot}"
            try:
                fd = os.open(str(slot_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            return True
        return False

    def _draw(self, spec_index: int, hit: int) -> float:
        """Deterministic pseudo-random draw for probabilistic rules."""
        return random.Random(f"{self.seed}:{spec_index}:{hit}").random()

    def fire(self, point: str, context: dict, data: bytes | None = None):
        """Apply the first matching, claimable rule at ``point``.

        Returns the (possibly corrupted) ``data`` so byte sites can use
        the return value; non-byte sites ignore it.
        """
        hit = self._hits.get(point, 0)
        self._hits[point] = hit + 1
        for spec_index, spec in enumerate(self.specs):
            if spec.point != point or not spec.matches(context):
                continue
            if spec.probability < 1.0 and self._draw(spec_index, hit) >= spec.probability:
                continue
            if spec.kind == "corrupt" and data is None:
                continue  # corrupt rules only apply at byte sites
            if not self._claim(spec_index, spec):
                continue
            if spec.kind == "raise":
                detail = f" ({spec.message})" if spec.message else ""
                raise FaultInjectionError(
                    f"injected fault at {point!r}{detail}", point=point
                )
            if spec.kind == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.kind == "kill":
                os._exit(KILL_EXIT_CODE)
            elif spec.kind == "corrupt":
                data = corrupt_bytes(data, seed=self.seed, salt=f"{spec_index}:{hit}")
        return data

    # ------------------------------------------------------------------
    # Serialization (CI plans, spawn transport by file)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ledger": str(self.ledger) if self.ledger is not None else None,
            "specs": [asdict(spec) for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict) or "specs" not in payload:
            raise ConfigurationError("fault plan must be a dict with a 'specs' list")
        specs = [FaultSpec(**spec) for spec in payload["specs"]]
        return cls(
            specs, seed=payload.get("seed", 0), ledger=payload.get("ledger")
        )

    def to_json_file(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_json_file(cls, path: str | Path) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_dict(payload)

    def __repr__(self) -> str:
        return (
            f"FaultPlan({len(self.specs)} specs, seed={self.seed}, "
            f"ledger={self.ledger})"
        )


def corrupt_bytes(data: bytes, *, seed: int = 0, salt: str = "0") -> bytes:
    """Flip one deterministically chosen byte of ``data``."""
    if not data:
        return data
    digest = hashlib.blake2b(f"{seed}:{salt}".encode("ascii"), digest_size=4)
    offset = int.from_bytes(digest.digest(), "big") % len(data)
    corrupted = bytearray(data)
    corrupted[offset] ^= 0xFF
    return bytes(corrupted)


# ----------------------------------------------------------------------
# Global installation (the switchboard the injection sites consult)
# ----------------------------------------------------------------------
_PLAN: FaultPlan | None = None
_ENV_CHECKED = False


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-globally (None clears)."""
    global _PLAN, _ENV_CHECKED
    _PLAN = plan
    _ENV_CHECKED = True


def clear_plan() -> None:
    """Remove any installed plan and re-arm the environment check."""
    global _PLAN, _ENV_CHECKED
    _PLAN = None
    _ENV_CHECKED = False


def get_plan() -> FaultPlan | None:
    """The active plan: the installed one, else ``REPRO_FAULTS``, else None."""
    global _PLAN, _ENV_CHECKED
    if _PLAN is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(PLAN_ENV_VAR)
        if path:
            _PLAN = FaultPlan.from_json_file(path)
    return _PLAN


def inject(point: str, **context) -> None:
    """Injection site: apply the active plan's rules at ``point``.

    The disabled path (no plan installed, env already checked) is a
    global load plus an ``is None`` test.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_CHECKED:
            return
        plan = get_plan()
        if plan is None:
            return
    plan.fire(point, context)


def inject_bytes(point: str, data: bytes, **context) -> bytes:
    """Byte-stream injection site: may return a corrupted copy of ``data``."""
    plan = _PLAN
    if plan is None:
        if _ENV_CHECKED:
            return data
        plan = get_plan()
        if plan is None:
            return data
    return plan.fire(point, context, data)
