"""Vocabulary: bidirectional interning of token strings to dense ids.

Every document in a collection is stored as an array of integer token
ids.  Ids are dense (0..len-1) so downstream structures (window
frequency tables, the global order, partition schemes) can be plain
arrays indexed by token id.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..errors import UnknownTokenError

#: Sentinel id for out-of-vocabulary tokens in *query* encodings.
#: Negative so it can never collide with an interned (dense, >= 0) id;
#: an OOV token can never match any data token, so collapsing all OOV
#: tokens onto one id is exact for similarity search.
OOV_TOKEN_ID = -1

#: Display string used when decoding the OOV sentinel.
OOV_TOKEN = "<oov>"


class Vocabulary:
    """Mutable string<->id mapping with dense ids.

    ``add`` interns a token and returns its id; ``encode`` interns a
    whole sequence.  Lookup of unknown tokens via ``id_of`` raises
    :class:`~repro.errors.UnknownTokenError` (a ``KeyError`` subclass
    naming the token); use ``get`` for an optional lookup and
    ``encode_query`` for a non-mutating encoding that maps unknown
    tokens to :data:`OOV_TOKEN_ID`.

    The mapping is append-only: ids are stable for the lifetime of the
    vocabulary, which the rest of the library relies on (token ids are
    baked into indexes and partition schemes).
    """

    __slots__ = ("_id_of", "_token_of")

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._id_of: dict[str, int] = {}
        self._token_of: list[str] = []
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Intern ``token`` and return its id (existing or new)."""
        token_id = self._id_of.get(token)
        if token_id is None:
            token_id = len(self._token_of)
            self._id_of[token] = token_id
            self._token_of.append(token)
        return token_id

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Intern each token of ``tokens`` and return their ids."""
        add = self.add
        return [add(token) for token in tokens]

    def encode_frozen(self, tokens: Iterable[str]) -> list[int]:
        """Encode without interning; unknown tokens raise
        :class:`~repro.errors.UnknownTokenError`."""
        id_of = self._id_of
        out: list[int] = []
        for token in tokens:
            try:
                out.append(id_of[token])
            except KeyError:
                raise UnknownTokenError(token) from None
        return out

    def encode_query(self, tokens: Iterable[str]) -> list[int]:
        """Encode without interning; unknown tokens map to
        :data:`OOV_TOKEN_ID`.

        This is the query-side encoding: it never mutates the
        vocabulary (safe under concurrent readers and consistent across
        spawned worker processes), and it is exact — an OOV query token
        cannot match any data token, so the sentinel preserves results.
        """
        get = self._id_of.get
        return [get(token, OOV_TOKEN_ID) for token in tokens]

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Map token ids back to their strings (OOV sentinel included)."""
        token_of = self._token_of
        return [
            token_of[token_id] if token_id >= 0 else OOV_TOKEN for token_id in ids
        ]

    def id_of(self, token: str) -> int:
        """Return the id of ``token``; raises
        :class:`~repro.errors.UnknownTokenError` if unknown."""
        try:
            return self._id_of[token]
        except KeyError:
            raise UnknownTokenError(token) from None

    def get(self, token: str) -> int | None:
        """Return the id of ``token`` or ``None`` if unknown."""
        return self._id_of.get(token)

    def token_of(self, token_id: int) -> str:
        """Return the string of ``token_id`` (OOV sentinel included)."""
        if token_id < 0:
            return OOV_TOKEN
        return self._token_of[token_id]

    def copy(self) -> "Vocabulary":
        """An independent copy with identical ids.

        Snapshot isolation for persistence: the ingest store copies the
        vocabulary at seal time so manifest writes (which happen off the
        writer lock) never race with concurrent interning.
        """
        clone = Vocabulary()
        clone._id_of = dict(self._id_of)
        clone._token_of = list(self._token_of)
        return clone

    def __len__(self) -> int:
        return len(self._token_of)

    def __contains__(self, token: str) -> bool:
        return token in self._id_of

    def __iter__(self) -> Iterator[str]:
        return iter(self._token_of)

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"
