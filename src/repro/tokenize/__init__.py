"""Tokenization substrate: turning raw text into token-id sequences.

The paper (Section 2.1) treats a document as a sequence of tokens drawn
from a finite universe; a token "can be a word, a q-gram, etc." and the
algorithms are independent of the tokenization scheme.  This package
provides the common schemes plus a :class:`Vocabulary` that interns
token strings to dense integer ids.
"""

from .tokenizer import (
    QGramTokenizer,
    Tokenizer,
    WhitespaceTokenizer,
    WordTokenizer,
)
from .vocabulary import OOV_TOKEN, OOV_TOKEN_ID, Vocabulary

__all__ = [
    "Tokenizer",
    "WhitespaceTokenizer",
    "WordTokenizer",
    "QGramTokenizer",
    "Vocabulary",
    "OOV_TOKEN",
    "OOV_TOKEN_ID",
]
