"""Tokenizers: whitespace, word (punctuation-aware), and token q-grams.

All tokenizers map a string to a list of token strings.  They are
deliberately stateless and cheap to construct; vocabulary interning is a
separate concern handled by :class:`repro.tokenize.Vocabulary`.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod

from ..errors import TokenizationError


class Tokenizer(ABC):
    """Abstract base for tokenizers.

    Subclasses implement :meth:`tokenize`, mapping text to a list of
    token strings.  Tokenizers never intern tokens to ids; compose with
    :class:`~repro.tokenize.Vocabulary` for that.
    """

    @abstractmethod
    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into a list of token strings."""

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)


class WhitespaceTokenizer(Tokenizer):
    """Split on runs of whitespace, exactly as the paper's examples do.

    Optionally lowercases tokens (on by default, matching common practice
    in near-duplicate detection where case changes are text laundering).
    """

    def __init__(self, lowercase: bool = True) -> None:
        self.lowercase = lowercase

    def tokenize(self, text: str) -> list[str]:
        """Split on whitespace runs (lowercasing first if configured)."""
        if self.lowercase:
            text = text.lower()
        return text.split()

    def __repr__(self) -> str:
        return f"WhitespaceTokenizer(lowercase={self.lowercase})"


class WordTokenizer(Tokenizer):
    """Extract alphanumeric word tokens, dropping punctuation.

    ``"the lord-of the rings!"`` tokenizes to
    ``["the", "lord", "of", "the", "rings"]``.  This is the tokenizer
    used by the synthetic-corpus loaders, where punctuation would
    otherwise create spuriously rare tokens that distort the window
    frequency distribution.
    """

    _WORD_RE = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z]+)?")

    def __init__(self, lowercase: bool = True, min_length: int = 1) -> None:
        if min_length < 1:
            raise TokenizationError(f"min_length must be >= 1, got {min_length}")
        self.lowercase = lowercase
        self.min_length = min_length

    def tokenize(self, text: str) -> list[str]:
        """Extract word tokens, dropping punctuation."""
        if self.lowercase:
            text = text.lower()
        words = self._WORD_RE.findall(text)
        if self.min_length > 1:
            words = [word for word in words if len(word) >= self.min_length]
        return words

    def __repr__(self) -> str:
        return (
            f"WordTokenizer(lowercase={self.lowercase}, "
            f"min_length={self.min_length})"
        )


class QGramTokenizer(Tokenizer):
    """Token q-grams over an inner tokenizer's output.

    The FBW baseline (Section 7.1) operates on *token* q-grams: each
    token of the output is the concatenation of ``q`` consecutive word
    tokens joined by a separator.  A document of ``n`` words yields
    ``n - q + 1`` q-grams (or none if ``n < q``).
    """

    def __init__(
        self,
        q: int,
        inner: Tokenizer | None = None,
        separator: str = "␟",
    ) -> None:
        if q < 1:
            raise TokenizationError(f"q must be >= 1, got {q}")
        self.q = q
        self.inner = inner if inner is not None else WhitespaceTokenizer()
        self.separator = separator

    def tokenize(self, text: str) -> list[str]:
        """Tokenize with the inner tokenizer, then emit token q-grams."""
        words = self.inner.tokenize(text)
        return self.gramify(words)

    def gramify(self, words: list[str]) -> list[str]:
        """Turn an already-tokenized word list into q-gram tokens."""
        q = self.q
        if len(words) < q:
            return []
        join = self.separator.join
        return [join(words[i : i + q]) for i in range(len(words) - q + 1)]

    def __repr__(self) -> str:
        return f"QGramTokenizer(q={self.q}, inner={self.inner!r})"
