"""Per-document block fingerprints and the vectorized survivor test.

Layout
------
Every document's rank sequence is cut into tumbling blocks of
``block_len = max(block_tokens, w)`` tokens.  Each block gets a 256-bit
OR-fingerprint — bit ``mix(rank) mod 256`` set for every token in the
block, packed into :data:`LANES` ``uint64`` lanes — and what is stored
is the *cover* of every pair of consecutive blocks,
``cover_i = block_i | block_{i+1}``.  Because ``block_len >= w``, any
``w``-window of the document lies within two consecutive blocks, hence
within some stored cover.  Alongside each cover sit ``bands`` MinHash
minima (one universal-hash minimum per band over the cover's tokens),
consulted only by ``approx`` mode.

Conservativeness (``exact`` mode)
---------------------------------
Let ``Q`` be a query window and ``D`` a data window with at most
``tau`` differing tokens.  Every bit set in ``F(Q)`` but not in
``F(D)`` requires a token *type* present in ``Q`` and wholly absent
from ``D`` — there are at most ``tau`` such types, so
``popcount(F(Q) & ~F(D)) <= tau``.  Covers only add bits
(``F(D) ⊆ cover``), so the bound holds against the cover too.  The
query side tests windows on a stride of ``tau + 1`` (plus the final
position): the nearest tested window ``Q'`` left of ``Q`` is at most
``tau`` positions away, and each one-position shift removes at most
one token type, so ``popcount(F(Q') & ~cover) <= 2 * tau``.  A
document none of whose covers comes within ``2 * tau`` missing bits of
*any* tested query window therefore cannot contain a qualifying
window, and pruning it never changes results (recall 1.0).

The missing-bit count is the asymmetric half of the Hamming distance:
``F(Q) & ~M == (F(Q) | M) ^ M``, so the kernel is a popcount over an
XOR of packed ``uint64`` columns, fully vectorized with
``np.bitwise_count``.

Determinism
-----------
All hashing is splitmix64-style arithmetic on ``uint64`` numpy arrays
with fixed seeds — no Python ``hash``, no RNG — so fingerprints are
byte-identical across processes, start methods, and
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import numpy as np

from ..errors import IndexStateError

#: Packed ``uint64`` lanes per fingerprint (8 lanes = 512 bits).  64
#: bits saturate on realistic blocks (a 256-token cover would set
#: nearly every bit, leaving no missing-bit signal); 512 keeps cover
#: fill near 40%, so an unrelated window misses far more bits than the
#: ``2 * tau`` budget at the paper's thresholds.
LANES = 8

#: Total fingerprint width in bits.
FINGERPRINT_BITS = LANES * 64

_U64 = np.uint64
_BIT_MASK = _U64(FINGERPRINT_BITS - 1)
_LANE_SHIFT = _U64(6)
_LOW6 = _U64(63)
_ONE = _U64(1)

_SPLIT_GAMMA = _U64(0x9E3779B97F4A7C15)
_SPLIT_M1 = _U64(0xBF58476D1CE4E5B9)
_SPLIT_M2 = _U64(0x94D049BB133111EB)
_TOKEN_SEED = _U64(0xA076_1D64_78BD_642F)


def _mix64(values: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a ``uint64`` array (wraps silently)."""
    z = values + _SPLIT_GAMMA
    z = (z ^ (z >> _U64(30))) * _SPLIT_M1
    z = (z ^ (z >> _U64(27))) * _SPLIT_M2
    return z ^ (z >> _U64(31))


#: Fixed per-band seeds (enough for the policy's maximum band count).
_BAND_SEEDS = _mix64(np.arange(1, 17, dtype=np.uint64) * _SPLIT_GAMMA)


def exact_hamming_budget(tau: int) -> int:
    """The conservative missing-bit budget for ``exact`` mode.

    ``tau`` bits for the qualifying pair itself plus ``tau`` for the
    worst-case alignment shift to the nearest tested query window
    (stride ``tau + 1``); see the module docstring for the derivation.
    """
    return 2 * tau


def _as_u64(ranks) -> np.ndarray:
    """Rank sequence -> ``uint64`` array (negative ranks wrap, fixed)."""
    return np.asarray(ranks, dtype=np.int64).astype(np.uint64)


def _token_masks(u64_ranks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-token (lane, single-bit mask) columns for OR-fingerprinting."""
    bits = _mix64(u64_ranks ^ _TOKEN_SEED) & _BIT_MASK
    return (bits >> _LANE_SHIFT).astype(np.int64), np.left_shift(_ONE, bits & _LOW6)


def _query_positions(n: int, w: int, tau: int) -> list[int]:
    """Window starts tested on the query side (stride ``tau + 1``)."""
    last = n - w
    positions = list(range(0, last + 1, tau + 1))
    if positions[-1] != last:
        positions.append(last)
    return positions


class _Compiled:
    """Flat concatenated columns the survivor kernel runs over."""

    __slots__ = ("cover_lanes", "band_minima", "cover_counts", "doc_of_cover")

    def __init__(self, cover_lanes, band_minima, cover_counts) -> None:
        self.cover_lanes = cover_lanes
        self.band_minima = band_minima
        self.cover_counts = cover_counts
        self.doc_of_cover = np.repeat(
            np.arange(len(cover_counts), dtype=np.int64), cover_counts
        )


class FingerprintTier:
    """Block-cover fingerprints for one contiguous doc-id range.

    Grows incrementally (:meth:`add`, the memtable insert path) or
    builds in one pass over a rank-docs sequence
    (:meth:`from_rank_docs`), and freezes to flat numpy columns for the
    format-v3 envelope (:meth:`to_arrays` / :meth:`from_arrays`).
    ``doc_lo`` is the global id of the first fingerprinted document —
    survivor masks cover ``[0, doc_lo + ndocs)`` with the prefix all
    False (ids below ``doc_lo`` are never probed by the view that owns
    this tier).
    """

    __slots__ = (
        "block_len",
        "bands",
        "doc_lo",
        "_cover_lanes",
        "_band_minima",
        "_cover_counts",
        "_compiled",
    )

    def __init__(self, *, block_len: int, bands: int, doc_lo: int = 0) -> None:
        if block_len < 1:
            raise ValueError(f"block_len must be >= 1, got {block_len}")
        if not 1 <= bands <= len(_BAND_SEEDS):
            raise ValueError(f"bands must be in [1, {len(_BAND_SEEDS)}]")
        self.block_len = block_len
        self.bands = bands
        self.doc_lo = doc_lo
        self._cover_lanes: list | None = []
        self._band_minima: list | None = []
        self._cover_counts: list[int] = []
        self._compiled: _Compiled | None = None

    # -- pickling (``__slots__`` classes need explicit state) ----------
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- construction ---------------------------------------------------
    @property
    def ndocs(self) -> int:
        """Documents fingerprinted so far."""
        return len(self._cover_counts)

    @property
    def frozen(self) -> bool:
        """True when array-backed (loaded from a snapshot); no adds."""
        return self._cover_lanes is None

    def add(self, ranks) -> None:
        """Fingerprint the next document (global id ``doc_lo + ndocs``).

        ``ranks`` is the document's rank sequence (any int sequence or
        array; negative lazy/OOV ranks hash fine).  O(len(ranks)).
        """
        if self.frozen:
            raise IndexStateError(
                "cannot add documents to a frozen fingerprint tier"
            )
        lanes, minima = self._fingerprint_document(ranks)
        self._cover_lanes.append(lanes)
        self._band_minima.append(minima)
        self._cover_counts.append(len(lanes))
        self._compiled = None

    def _fingerprint_document(self, ranks) -> tuple[np.ndarray, np.ndarray]:
        """One document's ``(cover_lanes, band_minima)`` arrays."""
        u = _as_u64(ranks)
        n = len(u)
        bands = self.bands
        if n == 0:
            return (
                np.zeros((0, LANES), dtype=np.uint64),
                np.zeros((0, bands), dtype=np.uint64),
            )
        block_len = self.block_len
        nblocks = -(-n // block_len)
        pad = nblocks * block_len - n
        if pad:
            # Repeating the last token changes neither ORs nor minima.
            u = np.concatenate([u, np.full(pad, u[-1], dtype=np.uint64)])
        lane, mask = _token_masks(u)
        token_lanes = np.zeros((len(u), LANES), dtype=np.uint64)
        token_lanes[np.arange(len(u)), lane] = mask
        block_lanes = np.bitwise_or.reduce(
            token_lanes.reshape(nblocks, block_len, LANES), axis=1
        )
        hashed = _mix64(u[:, None] ^ _BAND_SEEDS[None, :bands])
        block_minima = hashed.reshape(nblocks, block_len, bands).min(axis=1)
        if nblocks > 1:
            cover_lanes = block_lanes[:-1] | block_lanes[1:]
            cover_minima = np.minimum(block_minima[:-1], block_minima[1:])
        else:
            cover_lanes = block_lanes
            cover_minima = block_minima
        return cover_lanes, cover_minima

    @classmethod
    def from_rank_docs(
        cls, rank_docs, *, block_len: int, bands: int, doc_lo: int = 0
    ) -> "FingerprintTier":
        """Fingerprint ``rank_docs[doc_lo:]`` in one pass.

        ``rank_docs`` is anything indexable by global doc id (a list of
        lists, a :class:`~repro.index.PackedRankDocs`, or a
        :class:`~repro.ingest.tiered.TieredRankDocs`).  Ids that raise
        ``IndexError`` (gaps between tiers) get zero covers — they are
        never probed, so pruning them is vacuous.
        """
        tier = cls(block_len=block_len, bands=bands, doc_lo=doc_lo)
        for doc_id in range(doc_lo, len(rank_docs)):
            try:
                ranks = rank_docs[doc_id]
            except IndexError:
                ranks = ()
            tier.add(ranks)
        return tier

    # -- persistence ----------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat columns for the format-v3 envelope."""
        compiled = self._compile()
        return {
            "cover_lanes": compiled.cover_lanes,
            "band_minima": compiled.band_minima,
            "cover_counts": compiled.cover_counts,
        }

    def describe(self) -> dict:
        """Layout parameters persisted next to the arrays."""
        return {
            "block_len": self.block_len,
            "bands": self.bands,
            "doc_lo": self.doc_lo,
            "ndocs": self.ndocs,
            "lanes": LANES,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        block_len: int,
        bands: int,
        doc_lo: int = 0,
    ) -> "FingerprintTier":
        """Rebuild a frozen tier straight over mmap-able columns."""
        tier = cls(block_len=block_len, bands=bands, doc_lo=doc_lo)
        cover_counts = np.ascontiguousarray(arrays["cover_counts"], dtype=np.int64)
        cover_lanes = np.asarray(arrays["cover_lanes"], dtype=np.uint64)
        band_minima = np.asarray(arrays["band_minima"], dtype=np.uint64)
        cover_lanes = cover_lanes.reshape(-1, LANES)
        band_minima = band_minima.reshape(len(cover_lanes), -1)
        tier._cover_lanes = None
        tier._band_minima = None
        tier._cover_counts = cover_counts  # len() works on the array
        tier._compiled = _Compiled(cover_lanes, band_minima, cover_counts)
        return tier

    def _compile(self) -> _Compiled:
        """Concatenate per-doc arrays into the kernel's flat columns."""
        compiled = self._compiled
        if compiled is not None:
            return compiled
        if self._cover_lanes:
            cover_lanes = np.concatenate(self._cover_lanes, axis=0)
            band_minima = np.concatenate(self._band_minima, axis=0)
        else:
            cover_lanes = np.zeros((0, LANES), dtype=np.uint64)
            band_minima = np.zeros((0, self.bands), dtype=np.uint64)
        counts = np.asarray(self._cover_counts, dtype=np.int64)
        compiled = _Compiled(cover_lanes, band_minima, counts)
        self._compiled = compiled
        return compiled

    # -- the survivor kernel --------------------------------------------
    def survivors(
        self,
        query_ranks,
        *,
        w: int,
        tau: int,
        mode: str = "exact",
        hamming_budget: int | None = None,
        bands: int | None = None,
    ) -> np.ndarray | None:
        """Boolean mask over global doc ids ``[0, doc_lo + ndocs)``.

        ``True`` means the document *may* contain a qualifying window
        and must go to exact verification; ``False`` means it provably
        (``exact``) or probably (``approx``) cannot.  Returns ``None``
        when the tier cannot prune anything (empty tier, query shorter
        than ``w``, or a budget at or above the fingerprint width).
        """
        ndocs = self.ndocs
        u = _as_u64(query_ranks)
        n = len(u)
        if ndocs == 0 or n < w:
            return None
        if mode == "exact":
            budget = exact_hamming_budget(tau)
        else:
            budget = tau if hamming_budget is None else hamming_budget
        if budget >= FINGERPRINT_BITS:
            return None

        compiled = self._compile()
        positions = _query_positions(n, w, tau)
        lane, mask = _token_masks(u)
        token_lanes = np.zeros((n, LANES), dtype=np.uint64)
        token_lanes[np.arange(n), lane] = mask

        cover_lanes = compiled.cover_lanes
        inverted = ~cover_lanes
        cover_ok = np.zeros(len(cover_lanes), dtype=bool)
        budget_u = np.int64(budget)
        for start in positions:
            window = np.bitwise_or.reduce(token_lanes[start : start + w], axis=0)
            missing = np.bitwise_count(window[None, :] & inverted).sum(axis=1)
            cover_ok |= missing.astype(np.int64) <= budget_u

        if mode == "approx" and cover_ok.any():
            use_bands = self.bands if bands is None else min(bands, self.bands)
            if use_bands >= 1:
                hashed = _mix64(u[:, None] ^ _BAND_SEEDS[None, :use_bands])
                window_minima = np.stack(
                    [hashed[p : p + w].min(axis=0) for p in positions]
                )
                band_match = np.zeros(len(cover_lanes), dtype=bool)
                stored = compiled.band_minima
                for j in range(use_bands):
                    band_match |= np.isin(stored[:, j], window_minima[:, j])
                cover_ok &= band_match

        alive = (
            np.bincount(
                compiled.doc_of_cover, weights=cover_ok, minlength=ndocs
            )
            > 0
        )
        out = np.zeros(self.doc_lo + ndocs, dtype=bool)
        out[self.doc_lo :] = alive
        return out

    def __repr__(self) -> str:
        return (
            f"FingerprintTier(docs=[{self.doc_lo},{self.doc_lo + self.ndocs}), "
            f"block_len={self.block_len}, bands={self.bands}, "
            f"frozen={self.frozen})"
        )
