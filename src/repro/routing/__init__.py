"""Document-fingerprint routing tier (pre-filter in front of exact search).

Window-level indexing bounds per-query cost but still touches every
data document.  This package adds a *routing tier*: per-block 256-bit
OR-fingerprints (a saturating simhash over token ids) plus banded
MinHash minima, computed per document at build/ingest time and stored
as flat numpy columns.  At query time the tier vector-computes missing
bits (popcount over AND-NOT of packed ``uint64`` lanes — equivalently
the asymmetric half of the XOR Hamming distance) between the query's
window fingerprints and every document's block covers, and prunes
documents that *provably* cannot contain a qualifying window under
``(w, tau)``.  The exact engine then runs only over the survivors.

``exact`` mode uses a conservative budget derived from ``tau`` and the
query stride (see :func:`exact_hamming_budget`): recall is exactly 1.0
by construction.  ``approx`` mode is opt-in and trades bounded recall
for deeper pruning via a tighter budget and MinHash band agreement.

The public surface is :class:`RoutingPolicy` (carried on
:class:`~repro.params.SearchParams`) and :class:`FingerprintTier` (the
per-searcher data structure).
"""

from .fingerprints import (
    FINGERPRINT_BITS,
    LANES,
    FingerprintTier,
    exact_hamming_budget,
)
from .policy import ROUTING_MODES, RoutingPolicy

__all__ = [
    "RoutingPolicy",
    "ROUTING_MODES",
    "FingerprintTier",
    "FINGERPRINT_BITS",
    "LANES",
    "exact_hamming_budget",
]
