"""The routing policy object threaded through every API surface.

One frozen, keyword-only dataclass replaces what would otherwise be a
sprawl of per-call ``routing_mode=`` / ``hamming_budget=`` kwargs: the
same :class:`RoutingPolicy` rides on
:class:`~repro.params.SearchParams`, the ``Index`` facade, the CLI
(``--routing`` / ``--hamming-budget``), and the HTTP ``/search`` body,
and serializes into the params envelope so saved snapshots round-trip
it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from ..errors import ConfigurationError

#: Valid values of :attr:`RoutingPolicy.mode`.
ROUTING_MODES = ("off", "exact", "approx")

#: Default tumbling-block width (tokens) for document fingerprints.
#: The effective block length is ``max(block_tokens, w)`` so every
#: ``w``-window always fits inside two consecutive blocks.
DEFAULT_BLOCK_TOKENS = 128

#: Default number of stored MinHash bands (used by ``approx`` mode).
DEFAULT_BANDS = 4

_MAX_BANDS = 16


@dataclass(frozen=True, kw_only=True)
class RoutingPolicy:
    """How (and whether) the fingerprint routing tier gates a search.

    Parameters
    ----------
    mode:
        ``"off"`` disables the tier, ``"exact"`` prunes conservatively
        (recall 1.0 — the Hamming budget is derived from ``tau`` and
        the query stride, see
        :func:`~repro.routing.exact_hamming_budget`), ``"approx"``
        prunes more aggressively with a caller-chosen budget plus
        MinHash band agreement, trading bounded recall for speed.
    hamming_budget:
        Missing-bit budget for ``approx`` mode (``None`` derives
        ``tau``).  Ignored in ``exact`` mode, which always uses the
        conservative derived budget.
    bands:
        MinHash bands stored per block cover (and consulted by
        ``approx`` mode).  Build-time: raising it on a query against an
        index that stored fewer bands clamps to what is stored.
    block_tokens:
        Tumbling-block width floor for document fingerprints; the
        effective width is ``max(block_tokens, w)``.  Smaller blocks
        prune harder but store more covers.
    """

    mode: str = "off"
    hamming_budget: int | None = None
    bands: int = DEFAULT_BANDS
    block_tokens: int = DEFAULT_BLOCK_TOKENS

    def __post_init__(self) -> None:
        if self.mode not in ROUTING_MODES:
            raise ConfigurationError(
                f"routing mode must be one of {ROUTING_MODES}, got {self.mode!r}"
            )
        if self.hamming_budget is not None and self.hamming_budget < 0:
            raise ConfigurationError(
                f"hamming_budget must be >= 0, got {self.hamming_budget}"
            )
        if not 1 <= self.bands <= _MAX_BANDS:
            raise ConfigurationError(
                f"bands must be in [1, {_MAX_BANDS}], got {self.bands}"
            )
        if self.block_tokens < 1:
            raise ConfigurationError(
                f"block_tokens must be >= 1, got {self.block_tokens}"
            )

    @property
    def enabled(self) -> bool:
        """True when the tier should gate candidates at all."""
        return self.mode != "off"

    def with_mode(self, mode: str) -> "RoutingPolicy":
        """Copy with a different ``mode`` (re-validated)."""
        return replace(self, mode=mode)

    def to_dict(self) -> dict:
        """JSON-ready form (the HTTP ``/search`` body's ``routing`` key)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict | None) -> "RoutingPolicy":
        """Inverse of :meth:`to_dict`; ``None`` means the off policy.

        Unknown keys raise :class:`~repro.errors.ConfigurationError`
        (typed, so the HTTP layer maps it to a 400) instead of being
        silently dropped.
        """
        if payload is None:
            return cls()
        if isinstance(payload, cls):
            return payload
        if isinstance(payload, str):
            return cls(mode=payload)
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"routing policy must be a mode string or an object, "
                f"got {type(payload).__name__}"
            )
        unknown = set(payload) - {"mode", "hamming_budget", "bands", "block_tokens"}
        if unknown:
            raise ConfigurationError(
                f"unknown routing policy fields: {sorted(unknown)}"
            )
        try:
            return cls(**payload)
        except TypeError as exc:  # non-keyword junk, wrong arity
            raise ConfigurationError(f"bad routing policy: {exc}") from exc
