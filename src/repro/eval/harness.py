"""Workload runner: aggregate timing with phase decomposition.

``run_searcher`` drives one algorithm over a query workload and returns
an :class:`AggregateRun` with the per-query averages the paper reports
(average query processing time, per-phase split, candidate and result
counts).  Wall-clock per phase comes from the searchers' own
instrumentation (:class:`~repro.core.SearchStats`).

With ``jobs > 1`` the workload is sharded across a process pool by
:class:`~repro.parallel.ParallelExecutor`; the merged run carries one
:class:`WorkerReport` per pool worker so load skew is visible.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from ..core.base import MatchPair, SearchResult, SearchStats
from ..corpus import Document
from ..obs import get_tracer


def canonical_pair_order(pairs: list[MatchPair]) -> list[MatchPair]:
    """Pairs sorted by (doc_id, data_start, query_start).

    The canonical per-query result order: every execution path (serial,
    sharded, any worker count) reports the same byte sequence of pairs,
    so parity checks never depend on generation order.
    """
    return sorted(
        pairs, key=lambda pair: (pair.doc_id, pair.data_start, pair.query_start)
    )


@dataclass
class QueryFailure:
    """One quarantined query of a parallel run (typed error report).

    After chunk retries and bisection isolate a repeatedly failing
    query, the executor quarantines it instead of aborting the batch:
    the query's exception is recorded here, every other query's result
    stays exact, and the run completes.  ``position`` is the query's
    index in the original workload.
    """

    position: int
    query_id: int
    query_name: str | None
    error_type: str
    error_message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "position": self.position,
            "query_id": self.query_id,
            "query_name": self.query_name,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryFailure":
        return cls(**payload)


@dataclass
class RecoveryReport:
    """What the executor's fault-tolerance machinery did during a run."""

    chunk_retries: int = 0
    chunk_bisections: int = 0
    pool_restarts: int = 0
    checkpoint_saves: int = 0
    resumed_items: int = 0

    def any(self) -> bool:
        """True when any recovery action occurred."""
        return any(self.to_dict().values())

    def to_dict(self) -> dict:
        return {
            "chunk_retries": self.chunk_retries,
            "chunk_bisections": self.chunk_bisections,
            "pool_restarts": self.pool_restarts,
            "checkpoint_saves": self.checkpoint_saves,
            "resumed_items": self.resumed_items,
        }


@dataclass
class WorkerReport:
    """One pool worker's share of a parallel run."""

    worker_id: int
    chunks: int = 0
    num_queries: int = 0
    seconds: float = 0.0
    stats: SearchStats = field(default_factory=SearchStats)

    def to_dict(self) -> dict:
        """JSON-ready summary of this worker's share.

        ``phases`` decomposes the worker's busy time into the paper's
        three phases (plus everything else under ``other``), so skew can
        be attributed to a phase, not just observed in total seconds.
        """
        phases = self.stats.phase_seconds()
        phases["other"] = max(0.0, self.seconds - sum(phases.values()))
        return {
            "worker_id": self.worker_id,
            "chunks": self.chunks,
            "num_queries": self.num_queries,
            "seconds": self.seconds,
            "phases": phases,
            "stats": self.stats.to_dict(),
        }


@dataclass
class AggregateRun:
    """Summary of one algorithm over one workload."""

    name: str
    num_queries: int
    total_seconds: float
    stats: SearchStats
    results_by_query: dict[int, list[MatchPair]] = field(default_factory=dict)
    jobs: int = 1
    worker_reports: list[WorkerReport] = field(default_factory=list)
    #: Queries quarantined by the executor's crash recovery (empty on
    #: clean runs); the surviving results stay exact and deterministic.
    failures: list[QueryFailure] = field(default_factory=list)
    #: Recovery actions taken (None on the serial path).
    recovery: RecoveryReport | None = None

    def per_query_results(self) -> list[SearchResult]:
        """Per-query :class:`SearchResult` views, in workload order.

        ``results_by_query`` is insertion-ordered by workload position,
        so this reconstructs the list shape ``search_many`` returned
        before 1.1.  The per-query ``stats`` are empty — only the run
        totals survive aggregation.
        """
        return [
            SearchResult(pairs=list(pairs))
            for pairs in self.results_by_query.values()
        ]

    def __iter__(self):
        """Deprecated tuple unpacking: ``results, stats = run``.

        Kept so pre-1.1 callers of ``search_many`` (which returned
        ``(list[SearchResult], SearchStats)``) keep working; new code
        should use ``run.results_by_query`` and ``run.stats``.
        """
        warnings.warn(
            "unpacking AggregateRun as (results, stats) is deprecated; "
            "use run.results_by_query and run.stats",
            DeprecationWarning,
            stacklevel=2,
        )
        yield self.per_query_results()
        yield self.stats

    @property
    def avg_query_seconds(self) -> float:
        """Mean wall-clock seconds per query."""
        return self.total_seconds / self.num_queries if self.num_queries else 0.0

    @property
    def num_results(self) -> int:
        """Total match pairs across the workload."""
        return self.stats.num_results

    @property
    def worker_skew(self) -> float:
        """Max over mean of per-worker busy seconds (1.0 = balanced).

        A skew of 2.0 means the slowest worker was busy twice as long as
        the average one — the workload sharded unevenly and the slowest
        worker bounds the wall clock.  Serial runs report 1.0.
        """
        busy = [report.seconds for report in self.worker_reports]
        if len(busy) <= 1:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def phase_row(self) -> str:
        """Phase-decomposed row (Figure 6 style); all times per query."""
        n = max(1, self.num_queries)
        return (
            f"{self.name:<16} avg={self.avg_query_seconds * 1e3:9.2f}ms  "
            f"sig={self.stats.signature_time / n * 1e3:8.2f}ms  "
            f"cand={self.stats.candidate_time / n * 1e3:8.2f}ms  "
            f"verify={self.stats.verify_time / n * 1e3:8.2f}ms  "
            f"cands={self.stats.candidate_windows:<9} "
            f"results={self.num_results}"
        )

    def worker_rows(self) -> list[str]:
        """One formatted line per worker (empty for serial runs)."""
        return [
            f"worker {report.worker_id:<3} chunks={report.chunks:<4} "
            f"queries={report.num_queries:<5} busy={report.seconds * 1e3:9.2f}ms"
            for report in self.worker_reports
        ]

    def to_dict(self, include_results: bool = False) -> dict:
        """JSON-ready dict of the run (no hand-rolled field lists).

        ``include_results`` additionally embeds every match pair, keyed
        by query id; leave it off for benchmark records where only the
        aggregates matter.
        """
        row = {
            "name": self.name,
            "num_queries": self.num_queries,
            "total_seconds": self.total_seconds,
            "avg_query_seconds": self.avg_query_seconds,
            "num_results": self.num_results,
            "jobs": self.jobs,
            "worker_skew": self.worker_skew,
            "phases": self.stats.phase_seconds(),
            "stats": self.stats.to_dict(),
            "workers": [report.to_dict() for report in self.worker_reports],
            "failures": [failure.to_dict() for failure in self.failures],
        }
        if self.recovery is not None:
            row["recovery"] = self.recovery.to_dict()
        if include_results:
            row["results_by_query"] = {
                str(query_id): [list(pair) for pair in pairs]
                for query_id, pairs in self.results_by_query.items()
            }
        return row

    def metrics_snapshot(self) -> dict:
        """The run as a structured :mod:`repro.obs` metrics snapshot.

        This is the canonical machine-readable record behind the CLI's
        ``--metrics-out`` flag and the benchmark JSON files: the search
        counters/timers from the registry plus run-level metrics under
        the ``run.`` prefix.  The counter section is execution-path
        independent — serial and ``--jobs N`` runs of one workload
        produce identical counters — which is what
        ``benchmarks/check_regression.py`` diffs across records.
        """
        registry = self.stats.to_registry()
        registry.counter("run.num_queries").inc(self.num_queries)
        registry.timer("run.total_seconds").add(self.total_seconds)
        registry.gauge("run.jobs").set(self.jobs)
        registry.gauge("run.worker_skew").set(self.worker_skew)
        # Fault/recovery counters appear only when something happened,
        # so clean runs keep byte-identical snapshots across PRs.
        if self.failures:
            registry.counter("run.quarantined_queries").inc(len(self.failures))
        if self.recovery is not None:
            for metric, value in self.recovery.to_dict().items():
                if value:
                    registry.counter(f"run.recovery.{metric}").inc(value)
        return {
            "name": self.name,
            "schema_version": 1,
            "phases": self.stats.phase_seconds(),
            "metrics": registry.snapshot(),
        }


def run_searcher(
    searcher,
    queries: list[Document],
    name: str | None = None,
    *,
    jobs: int = 1,
    start_method: str | None = None,
    chunk_size: int | None = None,
    checkpoint=None,
    resume: bool = False,
) -> AggregateRun:
    """Run ``searcher.search`` over every query, collecting aggregates.

    The searcher only needs a ``search(query) -> SearchResult`` method
    (all core and baseline searchers qualify).  Per-query result lists
    are in canonical (doc_id, data_start, query_start) order regardless
    of how the searcher emitted them.

    ``jobs`` shards the workload over that many worker processes
    (``None`` = one per CPU); results are merged back deterministically,
    identical to the serial run.  ``start_method`` and ``chunk_size``
    are forwarded to :class:`~repro.parallel.ParallelExecutor`.

    ``checkpoint`` names a file that accumulates completed chunks
    (atomic, checksummed) so an interrupted run can be re-invoked with
    ``resume=True`` and finish from where it stopped; setting it routes
    the run through the executor even at ``jobs=1``.
    """
    if jobs is None or jobs != 1 or checkpoint is not None:
        from ..parallel import ParallelExecutor

        executor = ParallelExecutor(
            jobs=jobs, start_method=start_method, chunk_size=chunk_size
        )
        return executor.run_workload(
            searcher, queries, name=name, checkpoint=checkpoint, resume=resume
        )
    return serial_run(searcher, queries, name=name)


def serial_run(
    searcher, queries: list[Document], name: str | None = None
) -> AggregateRun:
    """The single-process workload loop behind :func:`run_searcher`."""
    total_stats = SearchStats()
    results_by_query: dict[int, list[MatchPair]] = {}
    start = time.perf_counter()
    with get_tracer().span(
        "workload.serial", queries=len(queries)
    ) as workload_span:
        for index, query in enumerate(queries):
            result = searcher.search(query)
            total_stats.merge(result.stats)
            query_id = query.doc_id if query.doc_id >= 0 else index
            results_by_query[query_id] = canonical_pair_order(result.pairs)
        workload_span.annotate(results=total_stats.num_results)
    total_seconds = time.perf_counter() - start
    return AggregateRun(
        name=name if name is not None else getattr(searcher, "name", "searcher"),
        num_queries=len(queries),
        total_seconds=total_seconds,
        stats=total_stats,
        results_by_query=results_by_query,
    )
