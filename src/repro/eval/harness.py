"""Workload runner: aggregate timing with phase decomposition.

``run_searcher`` drives one algorithm over a query workload and returns
an :class:`AggregateRun` with the per-query averages the paper reports
(average query processing time, per-phase split, candidate and result
counts).  Wall-clock per phase comes from the searchers' own
instrumentation (:class:`~repro.core.SearchStats`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.base import MatchPair, SearchStats
from ..corpus import Document


@dataclass
class AggregateRun:
    """Summary of one algorithm over one workload."""

    name: str
    num_queries: int
    total_seconds: float
    stats: SearchStats
    results_by_query: dict[int, list[MatchPair]] = field(default_factory=dict)

    @property
    def avg_query_seconds(self) -> float:
        """Mean wall-clock seconds per query."""
        return self.total_seconds / self.num_queries if self.num_queries else 0.0

    @property
    def num_results(self) -> int:
        """Total match pairs across the workload."""
        return self.stats.num_results

    def phase_row(self) -> str:
        """Phase-decomposed row (Figure 6 style); all times per query."""
        n = max(1, self.num_queries)
        return (
            f"{self.name:<16} avg={self.avg_query_seconds * 1e3:9.2f}ms  "
            f"sig={self.stats.signature_time / n * 1e3:8.2f}ms  "
            f"cand={self.stats.candidate_time / n * 1e3:8.2f}ms  "
            f"verify={self.stats.verify_time / n * 1e3:8.2f}ms  "
            f"cands={self.stats.candidate_windows:<9} "
            f"results={self.num_results}"
        )


def run_searcher(searcher, queries: list[Document], name: str | None = None) -> AggregateRun:
    """Run ``searcher.search`` over every query, collecting aggregates.

    The searcher only needs a ``search(query) -> SearchResult`` method
    (all core and baseline searchers qualify).
    """
    total_stats = SearchStats()
    results_by_query: dict[int, list[MatchPair]] = {}
    start = time.perf_counter()
    for index, query in enumerate(queries):
        result = searcher.search(query)
        total_stats.merge(result.stats)
        query_id = query.doc_id if query.doc_id >= 0 else index
        results_by_query[query_id] = result.pairs
    total_seconds = time.perf_counter() - start
    return AggregateRun(
        name=name if name is not None else getattr(searcher, "name", "searcher"),
        num_queries=len(queries),
        total_seconds=total_seconds,
        stats=total_stats,
        results_by_query=results_by_query,
    )
