"""Export of run and quality data to CSV / JSON.

Benchmark and evaluation objects are plain dataclasses; these helpers
flatten them into rows so downstream tooling (spreadsheets, plotting
notebooks) can consume experiment outputs without importing the
library.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable, Mapping
from pathlib import Path

from .harness import AggregateRun
from .metrics import QualityReport


def aggregate_to_row(run: AggregateRun, **extra) -> dict:
    """Flatten an :class:`AggregateRun` into one CSV-friendly dict.

    ``extra`` key-values (e.g. ``w=100, tau=5``) are prepended so sweep
    parameters travel with the measurements.
    """
    row = dict(extra)
    row.update(
        {
            "algorithm": run.name,
            "num_queries": run.num_queries,
            "total_seconds": run.total_seconds,
            "avg_query_seconds": run.avg_query_seconds,
        }
    )
    # Column names keep the historical *_seconds suffix for the phase
    # times; the counters pass through under their SearchStats names.
    for key, value in run.stats.to_dict().items():
        if key == "total_time":
            continue
        row[key.replace("_time", "_seconds")] = value
    return row


def quality_to_row(report: QualityReport, **extra) -> dict:
    """Flatten a :class:`QualityReport` into one CSV-friendly dict."""
    row = dict(extra)
    row.update(
        {
            "precision": report.precision,
            "recall": report.recall,
            "num_truth": report.num_truth,
            "num_identified": report.num_identified,
            "positives": report.positives,
            "true_positives": report.true_positives,
        }
    )
    for level, recall in sorted(
        report.recall_by_level.items(), key=lambda item: item[0].value
    ):
        row[f"recall_{level.value}"] = recall
    return row


def write_csv(path: str | Path, rows: Iterable[Mapping]) -> int:
    """Write dict rows to CSV; returns the number of rows written.

    The header is the union of keys across all rows, in first-seen
    order; missing cells are empty.
    """
    rows = list(rows)
    path = Path(path)
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def write_json(path: str | Path, rows: Iterable[Mapping]) -> int:
    """Write dict rows as a JSON array; returns the row count."""
    rows = list(rows)
    Path(path).write_text(
        json.dumps(rows, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return len(rows)
