"""Quality metrics for local similarity search (Appendix D.2).

Given the result pairs of a search and the injected ground truth:

* A ground-truth pair ``<d[u, v], q[u', v']>`` is **identified** when
  some result pair ``<W(d, i), W(q, j)>`` overlaps it on *both* sides:
  ``[i, i + w - 1]`` intersects ``[u, v]`` and ``[j, j + w - 1]``
  intersects ``[u', v']``.
* **Recall** is the fraction of ground-truth pairs identified.
* **Precision** is token-level on the query side: a query token is
  *positive* if some result window covers it, a *true positive* if an
  identified ground-truth pair's query span covers it; precision is
  true positives / positives.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..core.base import MatchPair
from ..corpus.plagiarism import GroundTruthPair, ObfuscationLevel


@dataclass
class QualityReport:
    """Precision/recall summary, with a per-obfuscation-level breakdown."""

    precision: float
    recall: float
    num_truth: int
    num_identified: int
    positives: int
    true_positives: int
    recall_by_level: dict[ObfuscationLevel, float] = field(default_factory=dict)

    def as_row(self, name: str) -> str:
        """One formatted precision/recall line for reports."""
        return (
            f"{name:<24} precision={self.precision:6.1%}  "
            f"recall={self.recall:6.1%}  "
            f"({self.num_identified}/{self.num_truth} truths, "
            f"{self.true_positives}/{self.positives} tokens)"
        )


def _spans_overlap(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> bool:
    return a_lo <= b_hi and b_lo <= a_hi


def evaluate_quality(
    results_by_query: dict[int, list[MatchPair]],
    truths: list[GroundTruthPair],
    w: int,
) -> QualityReport:
    """Score results against ground truth per the paper's definitions.

    ``results_by_query`` maps each query id to the result pairs of that
    query document (the :class:`MatchPair` ``query_start`` values are
    positions within that query).
    """
    truths_by_query: dict[int, list[GroundTruthPair]] = defaultdict(list)
    for truth in truths:
        truths_by_query[truth.query_id].append(truth)

    identified: set[int] = set()  # indexes into `truths`
    truth_index = {id(truth): i for i, truth in enumerate(truths)}

    # Pass 1: identification.
    for query_id, pairs in results_by_query.items():
        for truth in truths_by_query.get(query_id, ()):
            lo_d, hi_d = truth.data_span
            lo_q, hi_q = truth.query_span
            for pair in pairs:
                if pair.doc_id != truth.data_doc_id:
                    continue
                if _spans_overlap(
                    pair.data_start, pair.data_start + w - 1, lo_d, hi_d
                ) and _spans_overlap(
                    pair.query_start, pair.query_start + w - 1, lo_q, hi_q
                ):
                    identified.add(truth_index[id(truth)])
                    break

    # Pass 2: token-level precision on the query side.
    positives = 0
    true_positives = 0
    for query_id, pairs in results_by_query.items():
        if not pairs:
            continue
        covered: set[int] = set()
        for pair in pairs:
            covered.update(range(pair.query_start, pair.query_start + w))
        positives += len(covered)
        true_spans = [
            truth.query_span
            for truth in truths_by_query.get(query_id, ())
            if truth_index[id(truth)] in identified
        ]
        for position in covered:
            if any(lo <= position <= hi for lo, hi in true_spans):
                true_positives += 1

    recall_by_level: dict[ObfuscationLevel, float] = {}
    by_level: dict[ObfuscationLevel, list[int]] = defaultdict(list)
    for index, truth in enumerate(truths):
        by_level[truth.level].append(index)
    for level, indexes in by_level.items():
        hit = sum(1 for index in indexes if index in identified)
        recall_by_level[level] = hit / len(indexes)

    num_truth = len(truths)
    return QualityReport(
        precision=true_positives / positives if positives else 0.0,
        recall=len(identified) / num_truth if num_truth else 0.0,
        num_truth=num_truth,
        num_identified=len(identified),
        positives=positives,
        true_positives=true_positives,
        recall_by_level=recall_by_level,
    )
