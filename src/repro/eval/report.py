"""Fixed-width report printers used by the benchmark harness.

Benchmarks print paper-style tables to stdout so that `pytest
benchmarks/ --benchmark-only -s` reproduces the rows/series of each
table and figure.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_seconds(seconds: float) -> str:
    """Human-scale duration: us / ms / s with 3 significant figures."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    min_width: int = 10,
) -> None:
    """Print an aligned table with a title banner."""
    widths = [max(min_width, len(header)) for header in headers]
    formatted_rows = []
    for row in rows:
        cells = [str(cell) for cell in row]
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
        formatted_rows.append(cells)
    print()
    print("=" * max(len(title), sum(widths) + 2 * len(widths)))
    print(title)
    print("-" * max(len(title), sum(widths) + 2 * len(widths)))
    print("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    for cells in formatted_rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
    print()
