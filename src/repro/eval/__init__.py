"""Evaluation utilities: quality metrics, experiment harness, reports.

Implements the paper's Appendix D.2 quality metrics (span-overlap recall
and token-level precision), aggregate timing over query workloads with
the Section 5.1 phase decomposition, and fixed-width report printers
that mimic the paper's tables.
"""

from .analysis import (
    PostingsReport,
    PrefixSharingReport,
    multiset_jaccard,
    postings_statistics,
    prefix_sharing,
    selectivity_by_class,
)
from .export import aggregate_to_row, quality_to_row, write_csv, write_json
from .harness import AggregateRun, WorkerReport, canonical_pair_order, run_searcher
from .metrics import QualityReport, evaluate_quality
from .report import format_seconds, print_table

__all__ = [
    "QualityReport",
    "evaluate_quality",
    "AggregateRun",
    "WorkerReport",
    "canonical_pair_order",
    "run_searcher",
    "print_table",
    "format_seconds",
    "PrefixSharingReport",
    "PostingsReport",
    "prefix_sharing",
    "postings_statistics",
    "selectivity_by_class",
    "multiset_jaccard",
    "aggregate_to_row",
    "quality_to_row",
    "write_csv",
    "write_json",
]
