"""Structural analysis utilities behind the paper's side measurements.

Section 7.3 quantifies *why* interval sharing works: the average Jaccard
similarity of adjacent windows' prefixes is 0.87–0.97 on REUTERS.  This
module computes that measurement, plus postings-length and
candidate-distribution statistics useful when tuning a deployment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..corpus import Document, DocumentCollection
from ..index.interval_index import IntervalIndex
from ..ordering import GlobalOrder
from ..partition.scheme import PartitionScheme
from ..signatures.prefix import prefix_length
from ..windows.slider import WindowSlider


def multiset_jaccard(left: list[int], right: list[int]) -> float:
    """Jaccard similarity of two multisets (union with multiplicities)."""
    counts_left = Counter(left)
    counts_right = Counter(right)
    intersection = sum(
        min(count, counts_right.get(token, 0))
        for token, count in counts_left.items()
    )
    union = len(left) + len(right) - intersection
    return intersection / union if union else 1.0


@dataclass(frozen=True)
class PrefixSharingReport:
    """Average adjacent-prefix similarity over a set of documents."""

    average_jaccard: float
    num_adjacent_pairs: int
    unchanged_fraction: float  # prefixes literally identical

    def __str__(self) -> str:
        return (
            f"adjacent-prefix Jaccard {self.average_jaccard:.3f} over "
            f"{self.num_adjacent_pairs} pairs "
            f"({self.unchanged_fraction:.0%} identical)"
        )


def prefix_sharing(
    documents: list[Document],
    order: GlobalOrder,
    w: int,
    tau: int,
    scheme: PartitionScheme,
) -> PrefixSharingReport:
    """Average Jaccard of adjacent windows' prefixes (Section 7.3).

    The paper reports 0.966 at (w=100, tau=5) on REUTERS, dropping to
    0.872 at w=25 — the quantity that predicts how often the
    interval-sharing fast path fires.
    """
    total = 0.0
    pairs = 0
    unchanged = 0
    for document in documents:
        ranks = order.rank_document(document)
        slider = WindowSlider(ranks, w)
        previous: list[int] | None = None
        for _start, _out, _in in slider.slides():
            raw = slider.multiset.raw
            length = prefix_length(raw, tau, scheme)
            prefix = raw[:length]
            if previous is not None:
                pairs += 1
                if prefix == previous:
                    unchanged += 1
                    total += 1.0
                else:
                    total += multiset_jaccard(prefix, previous)
            previous = prefix
    if pairs == 0:
        return PrefixSharingReport(0.0, 0, 0.0)
    return PrefixSharingReport(total / pairs, pairs, unchanged / pairs)


@dataclass(frozen=True)
class PostingsReport:
    """Distribution of postings-list lengths in an interval index."""

    num_signatures: int
    num_postings: int
    mean_length: float
    max_length: int
    singleton_fraction: float  # signatures with exactly one interval

    def __str__(self) -> str:
        return (
            f"{self.num_signatures} signatures, {self.num_postings} "
            f"postings (mean {self.mean_length:.2f}, max {self.max_length}, "
            f"{self.singleton_fraction:.0%} singletons)"
        )


def postings_statistics(index: IntervalIndex) -> PostingsReport:
    """Summary of the index's postings-length distribution.

    High singleton fraction = highly selective signatures = cheap
    candidate generation; a heavy tail means some signatures behave like
    frequent single tokens and the partitioning may want another class.
    """
    lengths = list(index.postings_lengths())
    if not lengths:
        return PostingsReport(0, 0, 0.0, 0, 0.0)
    return PostingsReport(
        num_signatures=len(lengths),
        num_postings=sum(lengths),
        mean_length=sum(lengths) / len(lengths),
        max_length=max(lengths),
        singleton_fraction=sum(1 for n in lengths if n == 1) / len(lengths),
    )


def selectivity_by_class(
    data: DocumentCollection,
    order: GlobalOrder,
    scheme: PartitionScheme,
) -> dict[int, float]:
    """Average relative window frequency of the tokens in each class.

    Confirms the partitioning intuition: class 1 should hold tokens that
    are orders of magnitude rarer than the top class.
    """
    del data  # frequencies live in the order; parameter kept for symmetry
    totals: dict[int, float] = {}
    counts: dict[int, int] = {}
    for rank in range(order.universe_size):
        class_index = scheme.class_of(rank)
        totals[class_index] = totals.get(class_index, 0.0) + (
            order.relative_frequency_of_rank(rank)
        )
        counts[class_index] = counts.get(class_index, 0) + 1
    return {
        class_index: totals[class_index] / counts[class_index]
        for class_index in totals
    }
