"""Public facade: one documented way to build, open, and query indexes.

The library grew bottom-up — corpus, ordering, partitioning, core
searchers, persistence, parallel execution, serving — and each layer is
importable on its own.  This module is the top: an :class:`Index`
object that covers the common lifecycle without knowing the layers
underneath.

* :meth:`Index.build` — corpus in (a
  :class:`~repro.DocumentCollection`, a directory path, or raw texts),
  queryable :class:`Index` out; optional greedy partitioning,
  multi-process builds, and ``compact=True`` freezing.
* :meth:`Index.open` / :meth:`Index.save` — round-trip through the
  snapshot formats in :mod:`repro.persistence`; ``Index.open(path,
  mmap=True)`` maps a compact (format-v3) snapshot's array columns
  without copying.
* :meth:`Index.searcher` — the underlying query engine, for callers
  that want the algorithm object itself.
* :class:`Searcher` — the :class:`~typing.Protocol` every query engine
  in the library satisfies (pkwise, the weighted extension, and all
  baselines), so harnesses and the service can be typed against the
  interface instead of a concrete class.

Search results are typed and frozen end to end: ``search`` yields
:class:`~repro.core.base.MatchPair` (named fields ``doc_id`` /
``data_start`` / ``query_start`` / ``overlap``) and index probes yield
:class:`~repro.index.ProbeHit` (``doc_id`` / ``u`` / ``v``); both are
NamedTuples, so positional unpacking keeps working.

Quickstart::

    from repro import Index

    index = Index.build(["some corpus text ..."], w=10, tau=3)
    result = index.search_text("query text")

    # or, round-tripped through a compact mmap-able snapshot:
    index.save("corpus.idx", compact=True)
    with Index.open("corpus.idx", mmap=True) as index:
        result = index.search_text("query text")

The pre-1.2 functions ``build_index`` / ``open_index`` / ``save_index``
were deprecated in 1.2 and have been removed; use :class:`Index`.
"""

from __future__ import annotations

import inspect
from collections.abc import Iterable
from pathlib import Path
from typing import Protocol, runtime_checkable

from .core.base import MatchPair
from .corpus import (
    Document,
    DocumentCollection,
    collection_from_directory,
    collection_from_texts,
)
from .errors import ConfigurationError, RoutingUnavailableError
from .index import ProbeHit
from .params import DEFAULT_K_MAX, SearchParams, suggested_subpartitions
from .persistence import load_bundle, save_searcher
from .routing import RoutingPolicy

__all__ = [
    "Index",
    "Searcher",
    "MatchPair",
    "ProbeHit",
]


@runtime_checkable
class Searcher(Protocol):
    """What every query engine in the library provides.

    Satisfied by :class:`~repro.PKWiseSearcher`,
    :class:`~repro.PKWiseNonIntervalSearcher`,
    :class:`~repro.WeightedPKWiseSearcher`, and every baseline in
    :mod:`repro.baselines`.  ``search`` returns an object with ``pairs``
    and ``stats``; ``search_many`` returns an
    :class:`~repro.eval.harness.AggregateRun`; ``close`` releases any
    resources (a no-op for the in-memory engines, but part of the
    contract so callers can treat engines uniformly).
    """

    def search(self, query): ...

    def search_many(self, queries, *, jobs: int = 1): ...

    def close(self) -> None: ...


def _as_collection(data) -> DocumentCollection:
    """Coerce the facade's corpus argument into a DocumentCollection."""
    if isinstance(data, DocumentCollection):
        return data
    if isinstance(data, (str, Path)):
        return collection_from_directory(data)
    if isinstance(data, Iterable):
        return collection_from_texts(list(data))
    raise ConfigurationError(
        f"cannot build a corpus from {type(data).__name__}; pass a "
        f"DocumentCollection, a directory path, or an iterable of texts"
    )


def _build_searcher(
    data,
    params: SearchParams | None,
    *,
    w: int | None,
    tau: int | None,
    k_max: int,
    m: int | None,
    greedy_partition: bool,
    sample_ratio: float,
    jobs: int,
    routing=None,
):
    """Shared build kernel behind :meth:`Index.build`."""
    collection = _as_collection(data)
    if params is None:
        if w is None or tau is None:
            raise ConfigurationError(
                "building an index needs either params=SearchParams(...) "
                "or both w= and tau="
            )
        params = SearchParams(
            w=w,
            tau=tau,
            k_max=k_max,
            m=m if m is not None else suggested_subpartitions(tau),
        )
    elif w is not None or tau is not None or m is not None:
        raise ConfigurationError(
            "pass either params= or the individual w=/tau=/m= values, not both"
        )
    if routing is not None:
        params = params.with_routing(routing)

    order = None
    scheme = None
    if greedy_partition:
        from .ordering import GlobalOrder
        from .partition import GreedyPartitioner

        order = GlobalOrder(collection, params.w)
        partitioner = GreedyPartitioner(
            collection,
            params,
            order=order,
            b1_fraction=0.25,
            b2_fraction=0.1,
            sample_ratio=sample_ratio,
        )
        scheme, _report = partitioner.partition()

    if jobs != 1:
        from .parallel import ParallelExecutor

        searcher = ParallelExecutor(jobs=None if jobs == 0 else jobs).build_searcher(
            collection, params, scheme=scheme, order=order
        )
    else:
        from .core.pkwise import PKWiseSearcher

        searcher = PKWiseSearcher(collection, params, scheme=scheme, order=order)
    return searcher, collection


class Index:
    """A built (or loaded) similarity index, ready to query.

    The facade's first-class object: pairs the query engine with the
    document collection needed to encode text queries, plus provenance
    (source path, load time).  Construct with :meth:`build` or
    :meth:`open`; use as a context manager to release resources.
    """

    __slots__ = ("_searcher", "_store", "data", "path", "load_seconds")

    def __init__(
        self,
        searcher,
        data: DocumentCollection | None = None,
        *,
        path: Path | None = None,
        load_seconds: float = 0.0,
    ) -> None:
        #: The query engine; prefer the :meth:`searcher` accessor.
        self._searcher = searcher
        #: The LSM ingest store once this index has been mutated (or
        #: was opened live); None for a purely read-side index.
        self._store = getattr(searcher, "store", None)
        #: The paired :class:`~repro.DocumentCollection` (None for
        #: ids-only snapshots — text queries then raise).
        self.data = data
        #: Source file, or None when built in memory.
        self.path = path
        #: Wall-clock seconds spent deserializing (0.0 in memory).
        self.load_seconds = load_seconds

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        data,
        params: SearchParams | None = None,
        *,
        w: int | None = None,
        tau: int | None = None,
        k_max: int = DEFAULT_K_MAX,
        m: int | None = None,
        greedy_partition: bool = False,
        sample_ratio: float = 0.01,
        jobs: int = 1,
        compact: bool = False,
        routing: RoutingPolicy | dict | str | None = None,
    ) -> "Index":
        """Build a ready-to-query pkwise index over ``data``.

        ``data`` may be a :class:`~repro.DocumentCollection`, a
        directory of ``.txt`` files, or an iterable of raw text
        strings.  Pass either a full :class:`~repro.SearchParams` or
        the individual ``w``/``tau`` (and optionally ``k_max``/``m``)
        values; when ``m`` is omitted the paper's Section 7.5 rule
        picks it from ``tau``.

        ``greedy_partition=True`` runs the cost-based greedy
        partitioner (Section 5) before indexing — slower to build,
        faster to query on skewed corpora.  ``jobs > 1`` (or ``0`` for
        one per CPU) builds the index across worker processes.
        ``compact=True`` freezes the result into the array-backed
        :class:`~repro.index.CompactIntervalIndex` (read-only, leaner,
        what ``save(compact=True)`` snapshots).

        ``routing`` sets the fingerprint routing policy the index
        searches under — a :class:`~repro.RoutingPolicy`, its dict
        form, or a bare mode string (``"exact"`` / ``"approx"``); the
        policy rides on the params, so it round-trips through
        :meth:`save` / :meth:`open`.
        """
        searcher, collection = _build_searcher(
            data,
            params,
            w=w,
            tau=tau,
            k_max=k_max,
            m=m,
            greedy_partition=greedy_partition,
            sample_ratio=sample_ratio,
            jobs=jobs,
            routing=routing,
        )
        if compact:
            searcher = searcher.compacted()
        return cls(searcher, collection)

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        mmap: bool = False,
        fallback: bool = True,
        routing: RoutingPolicy | dict | str | None = None,
    ) -> "Index":
        """Load an index saved by :meth:`save` (or ``repro index``).

        ``mmap=True`` memory-maps a compact (format-v3) snapshot's
        array columns instead of copying them — near-constant cold
        open, and concurrent processes mapping the same file share one
        page cache.  Asking for ``mmap`` on a v2 pickle is a typed
        :class:`~repro.persistence.PersistenceError`.  ``fallback``
        controls rotated-snapshot recovery as in
        :func:`~repro.persistence.load_bundle`.

        ``routing`` overrides the snapshot's routing policy for every
        query through this index.  Requesting an active mode against a
        compact snapshot saved without fingerprints raises
        :class:`~repro.errors.RoutingUnavailableError` here, at open
        time, rather than on the first query.

        SECURITY: snapshots contain pickled sections; only open files
        you (or your pipeline) wrote.
        """
        bundle = load_bundle(path, fallback=fallback, mmap=mmap)
        searcher = bundle.searcher
        if routing is not None:
            policy = RoutingPolicy.from_dict(routing)
            if policy.enabled and getattr(searcher, "_routing_tier", "auto") is None:
                raise RoutingUnavailableError(
                    f"{path} was saved without routing fingerprints; "
                    f"re-save it with a routing policy (mode != 'off') "
                    f"to route queries"
                )
            searcher.params = searcher.params.with_routing(policy)
        return cls(
            searcher,
            bundle.data,
            path=bundle.path,
            load_seconds=bundle.load_seconds,
        )

    @classmethod
    def open_live(
        cls,
        directory: str | Path | None = None,
        params: SearchParams | None = None,
        *,
        w: int | None = None,
        tau: int | None = None,
        k_max: int = DEFAULT_K_MAX,
        m: int | None = None,
        policy=None,
        routing: RoutingPolicy | dict | str | None = None,
        background: bool = False,
        fsync: bool = False,
    ) -> "Index":
        """Open (or create) a live, mutable LSM-backed index.

        With ``directory`` pointing at an existing ingest directory
        (one holding a ``MANIFEST``), the manifest is read, compact
        segments are mapped, and the write-ahead log is replayed — the
        index resumes exactly where the last process stopped, torn
        final WAL record included.  Otherwise a fresh store is created
        there (durable) or fully in memory (``directory=None``);
        creation needs ``params`` or ``w=``/``tau=`` like
        :meth:`build`.

        ``background=True`` starts the background compactor thread, so
        memtable flushes and segment compactions happen off the write
        path (:class:`~repro.ingest.CompactionPolicy` decides when).
        ``fsync=True`` makes every WAL append durable against power
        loss, not just process crash.

        ``routing`` sets (on creation) or overrides (on resume) the
        store's :class:`~repro.RoutingPolicy` — new memtables maintain
        fingerprints incrementally; frozen tiers fall back to lazily
        built ones.
        """
        from .ingest import IngestStore
        from .ingest.manifest import MANIFEST_NAME

        if routing is not None:
            routing = RoutingPolicy.from_dict(routing)
        if directory is not None and (Path(directory) / MANIFEST_NAME).exists():
            store = IngestStore.open(
                directory,
                policy=policy,
                routing=routing,
                background=background,
                fsync=fsync,
            )
        else:
            if params is None:
                if w is None or tau is None:
                    raise ConfigurationError(
                        "creating a live index needs either "
                        "params=SearchParams(...) or both w= and tau="
                    )
                params = SearchParams(
                    w=w,
                    tau=tau,
                    k_max=k_max,
                    m=m if m is not None else suggested_subpartitions(tau),
                )
            store = IngestStore.create(
                params,
                directory=directory,
                policy=policy,
                routing=routing,
                background=background,
                fsync=fsync,
            )
        index = cls(
            store.searcher(),
            store.data,
            path=Path(directory) if directory is not None else None,
        )
        index._store = store
        return index

    def save(
        self,
        path: str | Path,
        *,
        rotate: int | None = None,
        compact: bool = False,
    ) -> None:
        """Persist this index to ``path`` (atomic write).

        ``rotate=N`` keeps the previous N snapshot generations;
        ``compact=True`` writes the mmap-able format-v3 layout (the
        engine is frozen with
        :meth:`~repro.PKWiseSearcher.compacted` first).

        A live (LSM-backed) index is folded into a single plain
        searcher first — the snapshot is self-contained and reopens
        with :meth:`open` like any other; the live store itself
        persists through its own manifest + WAL instead.
        """
        searcher = self._engine()
        if self._store is not None:
            searcher = searcher.compacted()
        save_searcher(
            searcher,
            path,
            data=self.data,
            rotate=rotate or 0,
            compact=compact,
        )

    def _engine(self):
        """Current query engine, re-pointed after LSM installs."""
        if self._store is not None:
            self._searcher = self._store.searcher()
        return self._searcher

    def searcher(self) -> Searcher:
        """The underlying query engine (algorithm object)."""
        return self._engine()

    @property
    def params(self) -> SearchParams:
        """The engine's :class:`~repro.SearchParams`."""
        return self._searcher.params

    @property
    def frozen(self) -> bool:
        """True when backed by a frozen compact index (read-only)."""
        return bool(getattr(self._searcher, "frozen", False))

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def encode_query(self, text: str, name: str | None = None):
        """Tokenize ``text`` against the paired collection's vocabulary."""
        if self.data is None:
            raise ConfigurationError(
                "index has no document collection (saved ids-only); "
                "rebuild the snapshot with its data to encode text queries"
            )
        return self.data.encode_query(text, name=name)

    def search(self, query, *, routing: RoutingPolicy | dict | str | None = None):
        """Search one encoded query; pairs are typed ``MatchPair``s.

        ``routing`` overrides the index's routing policy for this one
        query (e.g. ``"exact"`` to route on an off-policy index, or
        ``RoutingPolicy(mode="off")`` to bypass a routed one).
        """
        engine = self._engine()
        if routing is None:
            return engine.search(query)
        policy = RoutingPolicy.from_dict(routing)
        if "routing" not in inspect.signature(engine.search).parameters:
            if policy.enabled:
                raise ConfigurationError(
                    f"{type(engine).__name__} does not support fingerprint "
                    f"routing; use the pkwise interval engine or pass "
                    f"routing=None"
                )
            return engine.search(query)
        return engine.search(query, routing=policy)

    def search_text(
        self, text: str, *, routing: RoutingPolicy | dict | str | None = None
    ):
        """Encode ``text`` and search it in one step."""
        return self.search(self.encode_query(text), routing=routing)

    def search_many(self, queries, *, jobs: int = 1):
        """Run a query workload (serial or multi-process)."""
        return self._engine().search_many(queries, jobs=jobs)

    # ------------------------------------------------------------------
    # Mutation (the unified write path)
    # ------------------------------------------------------------------
    def _ensure_store(self):
        """The LSM ingest store behind all mutations, created lazily.

        The first write on a built or loaded index wraps the existing
        engine as the base segment of an in-memory
        :class:`~repro.ingest.IngestStore` and swaps the tiered LSM
        view in; frozen compact indexes upgrade the same way (the
        compact segment stays frozen — writes land in the memtable).
        """
        if self._store is None:
            from .ingest import IngestStore

            self._store = IngestStore.from_searcher(self._searcher, self.data)
            self._searcher = self._store.searcher()
        return self._store

    def add(self, document_or_text, *, name: str | None = None) -> int:
        """Add one document (raw text or encoded ``Document``).

        Returns the new doc id.  The document is immediately
        searchable: it lands in the store's mutable memtable and every
        subsequent query fans out over memtable + frozen segments with
        exact merged results.
        """
        store = self._ensure_store()
        if isinstance(document_or_text, str):
            if self.data is None:
                raise ConfigurationError(
                    "index has no document collection (saved ids-only); "
                    "pass an encoded Document instead of raw text"
                )
            return store.add_text(document_or_text, name=name)
        if isinstance(document_or_text, Document):
            return store.add_document(document_or_text)
        raise ConfigurationError(
            f"Index.add takes a str or Document, "
            f"got {type(document_or_text).__name__}"
        )

    def remove(self, doc_id: int) -> None:
        """Tombstone ``doc_id``; it stops matching immediately and is
        physically purged at the next :meth:`compact`."""
        self._ensure_store().remove(doc_id)

    def flush(self):
        """Seal the memtable and fold it into a frozen compact segment.

        Returns the new segment's generation (None when the memtable
        was empty).  Durable stores persist the segment and manifest
        before the in-memory flip, and drop the folded WAL files after.
        """
        return self._ensure_store().flush()

    def compact(self):
        """Fold all tiers (memtable + every segment) into one compact
        segment, physically purging tombstoned documents."""
        return self._ensure_store().compact()

    @property
    def live(self) -> bool:
        """True once this index has a mutable LSM write path attached."""
        return self._store is not None

    def serve(
        self,
        *,
        shards: int = 1,
        replicas: int = 1,
        hedge_after: float | None = None,
        **kwargs,
    ):
        """Wrap this index in a serving front-end.

        ``shards=1, replicas=1`` (default) returns a
        :class:`~repro.service.SearchService` over this index.
        ``shards=N`` (or ``replicas=R >= 2``) partitions the paired
        collection into N compact in-process shards and returns a
        :class:`~repro.service.ShardRouter` scatter-gathering over them
        (pair-for-pair identical results; ``replicas=R`` serves each
        shard from R independent in-process services with automatic
        failover; ``hedge_after`` enables hedged sub-requests to slow
        shards).  Keyword arguments are forwarded to each underlying
        service (``max_workers``, ``max_queue``, ``cache_size``,
        ``default_timeout`` ...).
        """
        from .service import SearchService

        if shards > 1 or replicas > 1:
            if self._store is not None:
                raise ConfigurationError(
                    "sharded serving rebuilds per-shard compact indexes "
                    "and cannot host a live ingest store; serve with "
                    "shards=1 (live writes) or save + reopen read-only"
                )
            if self.data is None:
                raise ConfigurationError(
                    "sharded serving partitions the document collection; "
                    "this index was saved ids-only — rebuild with data"
                )
            from .service import ShardRouter

            default_timeout = kwargs.pop("default_timeout", None)
            return ShardRouter.local(
                self.data,
                self.params,
                shards=shards,
                replicas=replicas,
                compact=True,
                default_timeout=default_timeout,
                hedge_after=hedge_after,
                **kwargs,
            )
        return SearchService(self._engine(), self.data, **kwargs)

    def compacted(self) -> "Index":
        """This index frozen onto array-backed structures (see
        :meth:`~repro.PKWiseSearcher.compacted`)."""
        return type(self)(
            self._engine().compacted(),
            self.data,
            path=self.path,
            load_seconds=self.load_seconds,
        )

    def close(self) -> None:
        """Release the engine's resources.  Idempotent."""
        if self._store is not None:
            self._store.close()
        self._searcher.close()

    def __enter__(self) -> "Index":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        source = str(self.path) if self.path is not None else "<memory>"
        return (
            f"Index({type(self._searcher).__name__}, "
            f"data={'yes' if self.data is not None else 'no'}, "
            f"frozen={self.frozen}, source={source})"
        )

