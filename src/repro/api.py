"""Public facade: one documented way to build, open, and query indexes.

The library grew bottom-up — corpus, ordering, partitioning, core
searchers, persistence, parallel execution, serving — and each layer is
importable on its own.  This module is the top: three entry points that
cover the common lifecycle without knowing the layers underneath.

* :func:`build_index` — corpus in (a
  :class:`~repro.DocumentCollection`, a directory path, or raw texts),
  built :class:`~repro.PKWiseSearcher` out; optional greedy
  partitioning and multi-process builds.
* :func:`open_index` — load a saved index file into a
  :class:`~repro.persistence.SearcherBundle` (searcher + its document
  collection), ready to query or wrap in a
  :class:`~repro.service.SearchService`.
* :class:`Searcher` — the :class:`~typing.Protocol` every query engine
  in the library satisfies (pkwise, the weighted extension, and all
  baselines), so harnesses and the service can be typed against the
  interface instead of a concrete class.

Quickstart::

    from repro import api

    index = api.build_index(["some corpus text ..."], w=10, tau=3)
    result = index.search_text("query text")

    # or, round-tripped through a file:
    api.save_index(index, "corpus.idx")
    with api.open_index("corpus.idx") as bundle:
        result = bundle.search_text("query text")
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path
from typing import Protocol, runtime_checkable

from .corpus import (
    DocumentCollection,
    collection_from_directory,
    collection_from_texts,
)
from .errors import ConfigurationError
from .params import DEFAULT_K_MAX, SearchParams, suggested_subpartitions
from .persistence import SearcherBundle, load_bundle, save_searcher


@runtime_checkable
class Searcher(Protocol):
    """What every query engine in the library provides.

    Satisfied by :class:`~repro.PKWiseSearcher`,
    :class:`~repro.PKWiseNonIntervalSearcher`,
    :class:`~repro.WeightedPKWiseSearcher`, and every baseline in
    :mod:`repro.baselines`.  ``search`` returns an object with ``pairs``
    and ``stats``; ``search_many`` returns an
    :class:`~repro.eval.harness.AggregateRun`; ``close`` releases any
    resources (a no-op for the in-memory engines, but part of the
    contract so callers can treat engines uniformly).
    """

    def search(self, query): ...

    def search_many(self, queries, *, jobs: int = 1): ...

    def close(self) -> None: ...


def _as_collection(data) -> DocumentCollection:
    """Coerce the facade's corpus argument into a DocumentCollection."""
    if isinstance(data, DocumentCollection):
        return data
    if isinstance(data, (str, Path)):
        return collection_from_directory(data)
    if isinstance(data, Iterable):
        return collection_from_texts(list(data))
    raise ConfigurationError(
        f"cannot build a corpus from {type(data).__name__}; pass a "
        f"DocumentCollection, a directory path, or an iterable of texts"
    )


def build_index(
    data,
    params: SearchParams | None = None,
    *,
    w: int | None = None,
    tau: int | None = None,
    k_max: int = DEFAULT_K_MAX,
    m: int | None = None,
    greedy_partition: bool = False,
    sample_ratio: float = 0.01,
    jobs: int = 1,
) -> SearcherBundle:
    """Build a ready-to-query pkwise index over ``data``.

    ``data`` may be a :class:`~repro.DocumentCollection`, a directory of
    ``.txt`` files, or an iterable of raw text strings.  Pass either a
    full :class:`~repro.SearchParams` or the individual ``w``/``tau``
    (and optionally ``k_max``/``m``) values; when ``m`` is omitted the
    paper's Section 7.5 rule picks it from ``tau``.

    ``greedy_partition=True`` runs the cost-based greedy partitioner
    (Section 5) before indexing — slower to build, faster to query on
    skewed corpora.  ``jobs > 1`` (or ``0`` for one per CPU) builds the
    index across worker processes.

    Returns a :class:`~repro.persistence.SearcherBundle` pairing the
    built :class:`~repro.PKWiseSearcher` with the resolved collection —
    query it directly (``search_text``), persist it
    (:func:`save_index`), or serve it (``bundle.serve()``).
    """
    collection = _as_collection(data)
    if params is None:
        if w is None or tau is None:
            raise ConfigurationError(
                "build_index needs either params=SearchParams(...) or "
                "both w= and tau="
            )
        params = SearchParams(
            w=w,
            tau=tau,
            k_max=k_max,
            m=m if m is not None else suggested_subpartitions(tau),
        )
    elif w is not None or tau is not None or m is not None:
        raise ConfigurationError(
            "pass either params= or the individual w=/tau=/m= values, not both"
        )

    order = None
    scheme = None
    if greedy_partition:
        from .ordering import GlobalOrder
        from .partition import GreedyPartitioner

        order = GlobalOrder(collection, params.w)
        partitioner = GreedyPartitioner(
            collection,
            params,
            order=order,
            b1_fraction=0.25,
            b2_fraction=0.1,
            sample_ratio=sample_ratio,
        )
        scheme, _report = partitioner.partition()

    if jobs != 1:
        from .parallel import ParallelExecutor

        searcher = ParallelExecutor(jobs=None if jobs == 0 else jobs).build_searcher(
            collection, params, scheme=scheme, order=order
        )
    else:
        from .core.pkwise import PKWiseSearcher

        searcher = PKWiseSearcher(collection, params, scheme=scheme, order=order)
    return SearcherBundle(searcher, collection)


def save_index(index, path: str | Path, data=None) -> None:
    """Persist an index to ``path`` (atomic write).

    ``index`` may be a :class:`~repro.persistence.SearcherBundle` (its
    collection is bundled automatically, so ``search_text`` works after
    :func:`open_index`) or a bare searcher (pass ``data`` explicitly to
    bundle the collection, or omit it for a leaner ids-only file).
    """
    if isinstance(index, SearcherBundle):
        searcher = index.searcher
        if data is None:
            data = index.data
    else:
        searcher = index
    save_searcher(searcher, path, data=data)


def open_index(path: str | Path) -> SearcherBundle:
    """Load an index saved by :func:`save_index` (or ``repro index``).

    Returns a :class:`~repro.persistence.SearcherBundle` — use
    ``bundle.searcher`` / ``bundle.data`` directly, query through
    ``bundle.search_text``, or hand it to
    :class:`~repro.service.SearchService` for concurrent serving.

    SECURITY: index files are pickles; only open files you (or your
    pipeline) wrote.
    """
    return load_bundle(path)
