"""Command-line interface: index a corpus, search for local reuse.

Six subcommands:

* ``repro index``  — tokenize a directory of ``.txt`` files, build the
  pkwise interval index (optionally with greedy partitioning), and save
  it to a file.
* ``repro ingest`` — stream documents into a durable LSM ingest
  directory (write-ahead log + memtable + compact segments); killing
  the process mid-stream loses nothing, the next open replays the WAL.
* ``repro search`` — load an index and report reused passages between a
  query file and the corpus.
* ``repro selfjoin`` — find replication *within* a directory of files.
* ``repro serve``  — load an index and serve concurrent queries over
  HTTP (``/search``, ``/healthz``, ``/metrics``) through
  :class:`~repro.service.SearchService`; ``--live`` serves an ingest
  directory with mutation endpoints (``POST /ingest``, ``/remove``)
  and a background compactor.
* ``repro query``  — send one query to a running ``repro serve``.

Examples::

    repro index  --data corpus/ --out corpus.idx -w 25 --tau 5
    repro ingest --dir corpus.lsm --data corpus/ -w 25 --tau 5
    repro search --index corpus.idx --query suspicious.txt
    repro selfjoin --data corpus/ -w 25 --tau 5
    repro serve  --index corpus.idx --port 8080
    repro serve  --index corpus.lsm --live --port 8080
    repro query  --server http://127.0.0.1:8080 --text "some passage"

All subcommands accept ``--jobs N`` to spread the work over ``N``
worker processes (``--jobs 0`` = one per CPU); results are identical
to single-process runs.  Observability flags (also on every
subcommand): ``--trace FILE`` appends JSON-lines span events from
:mod:`repro.obs`, ``--metrics-out FILE`` writes a structured metrics
snapshot whose counters are identical across ``--jobs`` settings, and
``--faults FILE`` installs a deterministic fault-injection plan
(:mod:`repro.faults`, testing only).

Robustness surfaces: ``repro search``/``repro selfjoin`` take
``--checkpoint FILE`` (+ ``--resume``) to survive interruption,
``repro index --rotate N`` keeps rotated snapshot generations, and
``repro query --retries/--timeout`` drives the retrying
:class:`~repro.service.ResilientClient`.

Compact snapshots: ``repro index --compact`` writes the array-backed
format-v3 layout, and ``repro search``/``repro serve`` accept
``--mmap`` to map such a snapshot's columns zero-copy instead of
deserializing them (fast cold start; results are identical).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path

from .core.selfjoin import local_similarity_self_join
from .corpus import collection_from_directory
from .errors import ReproError
from .obs import MetricsRegistry, configure_tracing, disable_tracing
from .params import SearchParams, suggested_subpartitions
from .partition import GreedyPartitioner
from .persistence import load_bundle, save_searcher
from .postprocess import filter_passages, merge_passages


def _add_search_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-w", "--window", type=int, default=25,
                        help="window size in tokens (default 25)")
    parser.add_argument("--tau", type=int, default=5,
                        help="max differing tokens per window pair (default 5)")
    parser.add_argument("--k-max", type=int, default=4,
                        help="number of signature classes (default 4)")
    parser.add_argument("-m", "--sub-partitions", type=int, default=None,
                        help="sub-partitions per class (default: paper rule)")


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (0 = one per CPU; default 1)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="append JSON-lines span trace events to FILE")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write a structured metrics snapshot (JSON) to FILE")
    parser.add_argument("--faults", metavar="FILE", default=None,
                        help="install a deterministic fault-injection plan "
                             "from a JSON file (testing only)")


def _write_metrics(path: str, payload: dict) -> None:
    """Write one metrics snapshot as indented JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote metrics snapshot to {path}", file=sys.stderr)


def _jobs_from_args(args: argparse.Namespace) -> int | None:
    """``--jobs`` as the library convention: None = auto, else N."""
    return None if args.jobs == 0 else args.jobs


def _add_routing_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--routing", choices=("off", "exact", "approx"),
                        default=None,
                        help="fingerprint routing tier: 'exact' prunes "
                             "documents without losing any pair, 'approx' "
                             "prunes harder with bounded recall "
                             "(default: the index's stored policy)")
    parser.add_argument("--hamming-budget", type=int, default=None,
                        help="approx-mode Hamming budget (default tau; "
                             "exact mode derives its own conservative one)")
    parser.add_argument("--routing-bands", type=int, default=None,
                        help="MinHash bands per fingerprint (default 4)")
    parser.add_argument("--routing-block", type=int, default=None,
                        help="tokens per fingerprint block (default 128)")


def _routing_from_args(args: argparse.Namespace):
    """A RoutingPolicy from the --routing* flags, or None when untouched."""
    from .routing import RoutingPolicy
    from .routing.policy import DEFAULT_BANDS, DEFAULT_BLOCK_TOKENS

    mode = getattr(args, "routing", None)
    budget = getattr(args, "hamming_budget", None)
    bands = getattr(args, "routing_bands", None)
    block = getattr(args, "routing_block", None)
    if mode is None and budget is None and bands is None and block is None:
        return None
    return RoutingPolicy(
        mode=mode if mode is not None else "exact",
        hamming_budget=budget,
        bands=bands if bands is not None else DEFAULT_BANDS,
        block_tokens=block if block is not None else DEFAULT_BLOCK_TOKENS,
    )


def _params_from_args(args: argparse.Namespace) -> SearchParams:
    m = args.sub_partitions
    if m is None:
        m = suggested_subpartitions(args.tau)
    params = SearchParams(w=args.window, tau=args.tau, k_max=args.k_max, m=m)
    routing = _routing_from_args(args)
    if routing is not None:
        params = params.with_routing(routing)
    return params


def _cmd_index(args: argparse.Namespace) -> int:
    from .core.pkwise import PKWiseSearcher
    from .ordering import GlobalOrder

    params = _params_from_args(args)
    jobs = _jobs_from_args(args)
    print(f"loading corpus from {args.data} ...", file=sys.stderr)
    data = collection_from_directory(args.data, min_tokens=args.min_tokens)
    print(f"  {data}", file=sys.stderr)

    order = None
    scheme = None
    if args.greedy_partition:
        order = GlobalOrder(data, params.w)
        print("running greedy token-universe partitioning ...", file=sys.stderr)
        partitioner = GreedyPartitioner(
            data, params, order=order,
            b1_fraction=0.25, b2_fraction=0.1, sample_ratio=args.sample_ratio,
        )
        scheme, report = partitioner.partition()
        print(
            f"  borders {scheme.borders} "
            f"({report.evaluations} cost evaluations)",
            file=sys.stderr,
        )

    start = time.perf_counter()
    if jobs != 1:
        from .parallel import ParallelExecutor

        searcher = ParallelExecutor(jobs=jobs).build_searcher(
            data, params, scheme=scheme, order=order
        )
    else:
        searcher = PKWiseSearcher(data, params, scheme=scheme, order=order)
    print(
        f"indexed {searcher.index.num_windows} windows "
        f"({searcher.index.num_postings} interval postings) in "
        f"{time.perf_counter() - start:.2f}s",
        file=sys.stderr,
    )
    save_searcher(
        searcher, args.out, data=data, rotate=args.rotate, compact=args.compact
    )
    print(
        f"wrote {args.out}" + (" (compact v3)" if args.compact else ""),
        file=sys.stderr,
    )
    if args.metrics_out:
        registry = MetricsRegistry()
        registry.timer("index.build_seconds").add(searcher.index_build_seconds)
        registry.counter("index.num_documents").inc(len(data))
        registry.counter("index.num_windows").inc(searcher.index.num_windows)
        registry.counter("index.num_postings").inc(searcher.index.num_postings)
        registry.gauge("run.jobs").set(jobs if jobs is not None else 0)
        _write_metrics(
            args.metrics_out,
            {"name": "index", "schema_version": 1,
             "metrics": registry.snapshot()},
        )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream documents into a durable LSM ingest directory.

    Opens (or creates) the write-ahead-logged store at ``--dir``,
    appends every ``.txt`` under ``--data`` and/or every line of
    stdin (``--from-stdin``), applies ``--remove`` tombstones, and
    optionally folds with ``--flush`` / ``--compact`` before closing.
    Killing the process mid-stream loses nothing: the next open
    replays the WAL and resumes at the same state.
    """
    from .api import Index
    from .ingest.manifest import MANIFEST_NAME

    directory = Path(args.dir)
    creating = not (directory / MANIFEST_NAME).exists()
    params = _params_from_args(args) if creating else None
    index = Index.open_live(
        directory,
        params,
        routing=None if creating else _routing_from_args(args),
        fsync=args.fsync,
    )
    store = index._store
    print(
        f"{'created' if creating else 'opened'} ingest store at {directory} "
        f"(w={index.params.w}, tau={index.params.tau}, "
        f"docs={store.next_doc_id}, segments={store.num_segments})",
        file=sys.stderr,
    )
    added = 0
    try:
        if args.data:
            for path in sorted(Path(args.data).glob("**/*.txt")):
                index.add(
                    path.read_text(encoding="utf-8"), name=str(path.name)
                )
                added += 1
        if args.from_stdin:
            for line in sys.stdin:
                line = line.strip()
                if line:
                    index.add(line)
                    added += 1
        for doc_id in args.remove or ():
            index.remove(doc_id)
        if args.compact:
            index.compact()
        elif args.flush:
            index.flush()
    finally:
        summary = store.metrics_snapshot()
        index.close()
    print(
        f"ingested {added} documents "
        f"(total {store.next_doc_id}, {store.num_segments} segments, "
        f"{len(store.removed)} tombstones)",
        file=sys.stderr,
    )
    if args.metrics_out:
        _write_metrics(
            args.metrics_out,
            {"name": "ingest", "schema_version": 1, "metrics": summary},
        )
    return 0


def _apply_routing_override(searcher, routing, source) -> None:
    """Re-key a loaded searcher's params with a --routing override."""
    if routing is None:
        return
    if routing.enabled and getattr(searcher, "_routing_tier", "auto") is None:
        from .errors import RoutingUnavailableError

        raise RoutingUnavailableError(
            f"{source} was saved without routing fingerprints; re-save it "
            f"with a routing policy (repro index --routing exact) or drop "
            f"the --routing flags"
        )
    searcher.params = searcher.params.with_routing(routing)


def _cmd_search(args: argparse.Namespace) -> int:
    from .eval.harness import run_searcher

    bundle = load_bundle(args.index, mmap=args.mmap)
    searcher, data = bundle.searcher, bundle.data
    _apply_routing_override(searcher, _routing_from_args(args), args.index)
    if data is None:
        raise ReproError(
            "index was saved without the document collection; rebuild with "
            "'repro index' to enable text reports"
        )
    params = searcher.params
    queries = [
        data.encode_query(
            Path(path).read_text(encoding="utf-8"), name=Path(path).name
        )
        for path in args.query
    ]
    run = run_searcher(
        searcher,
        queries,
        jobs=_jobs_from_args(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    if args.metrics_out:
        _write_metrics(args.metrics_out, run.metrics_snapshot())
    for failure in run.failures:
        print(
            f"warning: query {failure.query_name or failure.position} "
            f"quarantined after {failure.attempts} attempts: "
            f"{failure.error_type}: {failure.error_message}",
            file=sys.stderr,
        )
    found_any = False
    for position, query in enumerate(queries):
        # encode_query yields doc_id -1, so the run keys by position.
        pairs = run.results_by_query.get(position, [])
        passages = filter_passages(
            merge_passages(pairs, params.w),
            min_pairs=args.min_pairs,
        )
        found_any = found_any or bool(passages)
        for passage in passages:
            document = data[passage.doc_id]
            q_lo, q_hi = passage.query_span
            d_lo, d_hi = passage.data_span
            print(
                f"{query.name}[{q_lo}:{q_hi + 1}] ~ "
                f"{document.name}[{d_lo}:{d_hi + 1}] "
                f"({passage.num_pairs} window pairs, "
                f"best overlap {passage.max_overlap}/{params.w})"
            )
            if args.show_text:
                snippet = " ".join(
                    data.decode_window(query, q_lo, q_hi + 1 - q_lo)
                )
                print(f"    {snippet}")
    if not found_any:
        print("no reused passages found")
        return 1
    return 0


def _cmd_selfjoin(args: argparse.Namespace) -> int:
    params = _params_from_args(args)
    data = collection_from_directory(args.data, min_tokens=args.min_tokens)
    print(f"loaded {data}", file=sys.stderr)
    join_started = time.perf_counter()
    pairs = local_similarity_self_join(
        data,
        params,
        exclude_same_document_within=params.w,
        jobs=_jobs_from_args(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    if args.metrics_out:
        registry = MetricsRegistry()
        registry.timer("selfjoin.seconds").add(time.perf_counter() - join_started)
        registry.counter("selfjoin.num_documents").inc(len(data))
        registry.counter("selfjoin.num_pairs").inc(len(pairs))
        _write_metrics(
            args.metrics_out,
            {"name": "selfjoin", "schema_version": 1,
             "metrics": registry.snapshot()},
        )
    if not pairs:
        print("no replicated windows found")
        return 1
    # Group pairs into document-pair summaries.
    from collections import Counter

    doc_pairs: Counter[tuple[int, int]] = Counter()
    for pair in pairs:
        doc_pairs[(pair.left_doc, pair.right_doc)] += 1
    for (left, right), count in doc_pairs.most_common():
        print(
            f"{data[left].name} ~ {data[right].name}: "
            f"{count} replicated window pairs"
        )
    return 0


def _graceful_sigterm() -> None:
    """Make SIGTERM unwind like Ctrl-C so serve loops run their cleanup.

    Without this a supervisor's ``terminate()`` skips the ``finally``
    blocks — a sharded router would orphan its worker processes.
    """

    def _handler(signum, frame):  # noqa: ARG001 - signal API
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _handler)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api import Index
    from .service import SearchService, serve_http

    _graceful_sigterm()
    if args.shards > 1:
        if args.live:
            print("error: --live and --shards are mutually exclusive",
                  file=sys.stderr)
            return 2
        return _serve_sharded(args)
    if args.live:
        index = Index.open_live(
            args.index, routing=_routing_from_args(args), background=True
        )
        store = index._store
        print(
            f"opened live ingest store {args.index} "
            f"(w={index.params.w}, tau={index.params.tau}, "
            f"docs={store.next_doc_id}, segments={store.num_segments}, "
            f"background compactor on)",
            file=sys.stderr,
        )
    else:
        index = Index.open(
            args.index, mmap=args.mmap, routing=_routing_from_args(args)
        )
        print(
            f"loaded {index} in {index.load_seconds:.2f}s "
            f"(w={index.params.w}, tau={index.params.tau})",
            file=sys.stderr,
        )
    service = SearchService(
        index.searcher(),
        index.data,
        max_workers=args.workers,
        max_queue=args.max_queue,
        cache_size=args.cache_size,
        default_timeout=args.request_timeout,
    )
    server = serve_http(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    # Machine-readable line on stdout: smoke scripts parse the URL from
    # it (mandatory with --port 0, where the OS picks the port).
    print(f"SERVING http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down ...", file=sys.stderr)
    finally:
        server.server_close()
        if args.metrics_out:
            _write_metrics(args.metrics_out, service.metrics_snapshot())
        service.close()
        index.close()
    return 0


def _serve_sharded(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: worker processes + scatter router.

    Builds (or reuses) a :class:`~repro.service.ShardPlan` of compact
    snapshots next to the index, spawns ``--replicas`` ``repro serve``
    processes per shard mapping that shard's snapshot, and fronts them
    with a :class:`~repro.service.ShardRouter` on the requested port.
    One ``SHARD <id> <url> pid=<pid> docs=[lo,hi) replica=<r>`` line
    per worker goes to stdout before the ``SERVING`` line so smoke
    scripts can target (or kill) individual workers.  Unless
    ``--no-supervise`` is given, a
    :class:`~repro.service.ShardSupervisor` watches the workers and
    restarts + re-admits dead ones automatically.
    """
    from pathlib import Path

    from .api import Index
    from .service import (
        ShardPlan,
        ShardRouter,
        ShardSupervisor,
        backends_for_workers,
        serve_http,
        spawn_shard_workers,
        stop_shard_workers,
    )

    index = Index.open(args.index, mmap=args.mmap)
    if index.data is None:
        print("error: sharded serving needs an index saved with its data",
              file=sys.stderr)
        return 1
    shard_dir = Path(args.shard_dir or f"{args.index}.shards")
    plan = ShardPlan.ensure(
        index.data,
        index.params,
        shard_dir,
        num_shards=args.shards,
        replicas=args.replicas,
    )
    print(
        f"shard plan: {plan.num_shards} shards x {plan.replicas} replica(s) "
        f"over {plan.num_documents} documents (generation {plan.generation}) "
        f"in {shard_dir}",
        file=sys.stderr,
    )
    workers = spawn_shard_workers(
        shard_dir, plan, cache_size=args.cache_size, workers=args.workers
    )
    router = None
    server = None
    supervisor = None
    try:
        for worker in workers:
            spec = worker.spec
            print(
                f"SHARD {spec.shard_id} {worker.url} pid={worker.pid} "
                f"docs=[{spec.doc_lo},{spec.doc_hi}) replica={worker.replica}",
                flush=True,
            )
        # With replicas the router's failover beats client retries (a
        # retry hammers a dead worker; a failover moves past it).
        retries = 0 if plan.replicas > 1 else 2
        router = ShardRouter(
            backends_for_workers(workers, retries=retries),
            index.data,
            default_timeout=args.request_timeout,
            hedge_after=args.hedge_after,
        )
        if not args.no_supervise:
            supervisor = ShardSupervisor(
                router,
                workers,
                directory=shard_dir,
                check_interval=args.check_interval,
                cache_size=args.cache_size,
                http_workers=args.workers,
            ).start()
        server = serve_http(
            router, host=args.host, port=args.port, verbose=args.verbose
        )
        host, port = server.server_address[:2]
        print(f"SERVING http://{host}:{port}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down ...", file=sys.stderr)
    finally:
        if server is not None:
            server.server_close()
        if args.metrics_out and router is not None:
            _write_metrics(args.metrics_out, router.metrics_snapshot())
        if supervisor is not None:
            supervisor.stop()
            workers = supervisor.workers  # restarts replaced some handles
        if router is not None:
            router.close()
        stop_shard_workers(workers)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .service.client import ResilientClient

    client = ResilientClient(
        args.server, retries=args.retries, deadline=args.timeout
    )
    if args.healthz:
        health = client.healthz()
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0 if health.get("status") == "ok" else 1
    if (args.text is None) == (args.query is None):
        print("error: pass exactly one of --text or --query", file=sys.stderr)
        return 2
    text = (
        args.text
        if args.text is not None
        else Path(args.query).read_text(encoding="utf-8")
    )
    routing = _routing_from_args(args)
    reply = client.search(
        text,
        timeout=args.request_timeout,
        routing=routing.to_dict() if routing is not None else None,
    )
    print(
        f"{reply['num_pairs']} window pairs "
        f"({'cached' if reply['cached'] else 'fresh'}, "
        f"{reply['seconds'] * 1e3:.1f}ms, index epoch {reply['index_epoch']})"
    )
    if args.show_pairs:
        for doc_id, data_start, query_start, overlap in reply["pairs"]:
            print(f"  doc {doc_id} [{data_start}] ~ query [{query_start}] "
                  f"overlap {overlap}")
    return 0 if reply["num_pairs"] else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local similarity search for unstructured text "
        "(SIGMOD 2016 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    index_parser = subparsers.add_parser(
        "index", help="build and save a pkwise index from a text directory"
    )
    index_parser.add_argument("--data", required=True, help="directory of .txt files")
    index_parser.add_argument("--out", required=True, help="output index file")
    index_parser.add_argument("--min-tokens", type=int, default=0,
                              help="drop documents shorter than this")
    index_parser.add_argument("--greedy-partition", action="store_true",
                              help="run the cost-based greedy partitioner")
    index_parser.add_argument("--sample-ratio", type=float, default=0.01,
                              help="surrogate workload sample ratio")
    index_parser.add_argument("--rotate", type=int, default=0,
                              help="keep N previous snapshot generations "
                                   "(.1 newest .. .N oldest; default 0)")
    index_parser.add_argument("--compact", action="store_true",
                              help="write the array-backed format-v3 snapshot "
                                   "(frozen; loadable with --mmap)")
    _add_search_params(index_parser)
    _add_routing_flags(index_parser)
    _add_jobs_flag(index_parser)
    _add_obs_flags(index_parser)
    index_parser.set_defaults(func=_cmd_index)

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="stream documents into a durable LSM ingest directory "
        "(WAL + memtable + compact segments; crash-safe)",
    )
    ingest_parser.add_argument("--dir", required=True,
                               help="ingest directory (created on first use)")
    ingest_parser.add_argument("--data", default=None,
                               help="directory of .txt files to append")
    ingest_parser.add_argument("--from-stdin", action="store_true",
                               help="append one document per non-empty "
                                    "stdin line")
    ingest_parser.add_argument("--remove", type=int, action="append",
                               help="tombstone this doc id (repeatable)")
    ingest_parser.add_argument("--flush", action="store_true",
                               help="fold the memtable into a compact "
                                    "segment before closing")
    ingest_parser.add_argument("--compact", action="store_true",
                               help="fold everything into one segment, "
                                    "purging tombstones")
    ingest_parser.add_argument("--fsync", action="store_true",
                               help="fsync every WAL append (power-loss "
                                    "durability, slower)")
    _add_search_params(ingest_parser)
    _add_routing_flags(ingest_parser)
    _add_jobs_flag(ingest_parser)
    _add_obs_flags(ingest_parser)
    ingest_parser.set_defaults(func=_cmd_ingest)

    search_parser = subparsers.add_parser(
        "search", help="search a query file against a saved index"
    )
    search_parser.add_argument("--index", required=True, help="saved index file")
    search_parser.add_argument("--query", required=True, action="append",
                               help="query .txt file (repeat for a batch)")
    search_parser.add_argument("--min-pairs", type=int, default=2,
                               help="min window pairs per reported passage")
    search_parser.add_argument("--show-text", action="store_true",
                               help="print the reused query text")
    search_parser.add_argument("--checkpoint", metavar="FILE", default=None,
                               help="accumulate completed chunks in FILE so "
                                    "an interrupted run can --resume")
    search_parser.add_argument("--resume", action="store_true",
                               help="continue from an existing --checkpoint")
    search_parser.add_argument("--mmap", action="store_true",
                               help="memory-map a compact (v3) index instead "
                                    "of deserializing it")
    _add_routing_flags(search_parser)
    _add_jobs_flag(search_parser)
    _add_obs_flags(search_parser)
    search_parser.set_defaults(func=_cmd_search)

    selfjoin_parser = subparsers.add_parser(
        "selfjoin", help="find replication inside a directory of files"
    )
    selfjoin_parser.add_argument("--data", required=True,
                                 help="directory of .txt files")
    selfjoin_parser.add_argument("--min-tokens", type=int, default=0)
    selfjoin_parser.add_argument("--checkpoint", metavar="FILE", default=None,
                                 help="accumulate completed blocks in FILE so "
                                      "an interrupted join can --resume")
    selfjoin_parser.add_argument("--resume", action="store_true",
                                 help="continue from an existing --checkpoint")
    _add_search_params(selfjoin_parser)
    _add_jobs_flag(selfjoin_parser)
    _add_obs_flags(selfjoin_parser)
    selfjoin_parser.set_defaults(func=_cmd_selfjoin)

    serve_parser = subparsers.add_parser(
        "serve", help="serve a saved index over HTTP (search/healthz/metrics)"
    )
    serve_parser.add_argument("--index", required=True, help="saved index file")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="bind port (0 = OS-assigned; default 8080)")
    serve_parser.add_argument("--workers", type=int, default=4,
                              help="service worker threads (default 4)")
    serve_parser.add_argument("--max-queue", type=int, default=64,
                              help="admission queue bound (default 64)")
    serve_parser.add_argument("--cache-size", type=int, default=256,
                              help="result cache entries, 0 disables (default 256)")
    serve_parser.add_argument("--request-timeout", type=float, default=None,
                              help="default per-request deadline in seconds")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every HTTP request to stderr")
    serve_parser.add_argument("--live", action="store_true",
                              help="treat --index as an ingest directory "
                                   "(repro ingest) and serve it live: "
                                   "POST /ingest and /remove mutate while "
                                   "queries keep flowing")
    serve_parser.add_argument("--mmap", action="store_true",
                              help="memory-map a compact (v3) index instead "
                                   "of deserializing it")
    serve_parser.add_argument("--shards", type=int, default=1,
                              help="partition the corpus into N compact "
                                   "shards, each served by its own worker "
                                   "process behind a scatter-gather router "
                                   "(default 1 = single in-process service)")
    serve_parser.add_argument("--shard-dir", default=None,
                              help="directory for shard snapshots + manifest "
                                   "(default <index>.shards); a compatible "
                                   "existing manifest is reused")
    serve_parser.add_argument("--replicas", type=int, default=1,
                              help="worker processes per shard (sharded mode "
                                   "only); with R >= 2 the router fails over "
                                   "to a sibling replica before declaring a "
                                   "shard dead (default 1)")
    serve_parser.add_argument("--check-interval", type=float, default=1.0,
                              help="seconds between supervisor liveness "
                                   "sweeps over the shard workers "
                                   "(default 1.0)")
    serve_parser.add_argument("--no-supervise", action="store_true",
                              help="disable the shard supervisor: dead "
                                   "workers stay dead and queries degrade "
                                   "to partial results (sharded mode only)")
    serve_parser.add_argument("--hedge-after", type=float, default=None,
                              help="seconds before hedging a slow shard "
                                   "sub-request (sharded mode only)")
    _add_routing_flags(serve_parser)
    _add_obs_flags(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    query_parser = subparsers.add_parser(
        "query", help="send one query to a running 'repro serve'"
    )
    query_parser.add_argument("--server", required=True,
                              help="base URL, e.g. http://127.0.0.1:8080")
    query_parser.add_argument("--text", default=None, help="query text inline")
    query_parser.add_argument("--query", default=None, help="query .txt file")
    query_parser.add_argument("--request-timeout", type=float, default=None,
                              help="service-side deadline in seconds")
    query_parser.add_argument("--retries", type=int, default=0,
                              help="retry attempts after the first try "
                                   "(backoff + jitter, honoring retry-after; "
                                   "default 0)")
    query_parser.add_argument("--timeout", type=float, default=None,
                              help="total client deadline budget in seconds "
                                   "across all attempts (default unbounded)")
    query_parser.add_argument("--show-pairs", action="store_true",
                              help="print every matching window pair")
    query_parser.add_argument("--healthz", action="store_true",
                              help="print the server's health report instead")
    _add_routing_flags(query_parser)
    query_parser.set_defaults(func=_cmd_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    tracing = getattr(args, "trace", None) is not None
    if tracing:
        configure_tracing(args.trace)
    fault_file = getattr(args, "faults", None)
    if fault_file is not None:
        from . import faults

        faults.install_plan(faults.FaultPlan.from_json_file(fault_file))
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracing:
            disable_tracing()
        if fault_file is not None:
            from . import faults

            faults.clear_plan()


if __name__ == "__main__":
    raise SystemExit(main())
