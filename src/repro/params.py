"""Validated search parameters shared by every algorithm in the library.

The paper (Section 2.1) defines local similarity search by a window size
``w`` and a dissimilarity threshold ``tau`` (equivalently an overlap
threshold ``theta = w - tau``).  The pkwise algorithm additionally takes
the number of token classes ``k_max`` (Section 3.2) and the number of
equi-width sub-partitions per class ``m`` (Section 6).

:class:`SearchParams` validates all of these once, up front, so the rest
of the code can assume a consistent configuration.  In particular it
enforces the completeness condition of Theorem 2::

    w >= tau + 1 + k_max * (k_max - 1) / 2      (m == 1)
    w >= tau + 1 + m * k_max * (k_max - 1) / 2  (m > 1, Section 6)

Violating it would allow a window's prefix to exceed the window itself,
in which case prefix filtering can miss results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigurationError
from .routing.policy import RoutingPolicy

#: Default number of token classes (the paper's default, Section 7.1).
DEFAULT_K_MAX = 4

#: Suggested rule from Section 7.5: use m = 1 for tau <= 20 and
#: m = 0.25 * tau for larger thresholds.
LARGE_TAU_CUTOFF = 20
LARGE_TAU_M_FACTOR = 0.25


def suggested_subpartitions(tau: int) -> int:
    """Return the number of sub-partitions the paper suggests for ``tau``.

    Section 7.5: ``m = 1`` when ``tau <= 20``, else ``m = 0.25 * tau``.
    """
    if tau <= LARGE_TAU_CUTOFF:
        return 1
    return max(1, round(LARGE_TAU_M_FACTOR * tau))


def max_prefix_length(tau: int, k_max: int, m: int = 1) -> int:
    """Upper bound of the prefix length (Corollary 1 and its Section 6 form).

    For ``m == 1`` the bound is ``tau + 1 + k_max * (k_max - 1) / 2``; for
    ``m > 1`` every class above 1 contributes ``m * (i - 1)`` extra
    tokens, giving ``tau + 1 + m * k_max * (k_max - 1) / 2``.
    """
    return tau + 1 + m * (k_max * (k_max - 1)) // 2


@dataclass(frozen=True, kw_only=True)
class SearchParams:
    """Immutable, validated parameters for one search configuration.

    All fields are keyword-only — ``SearchParams(w=25, tau=5)``, never
    positionally — so a reordering of parameters can never silently
    swap ``w`` and ``tau``.

    Parameters
    ----------
    w:
        Window size in tokens.  Every window of a document is exactly
        ``w`` consecutive tokens; documents shorter than ``w`` produce no
        windows.
    tau:
        Maximum number of differing tokens between matching windows,
        i.e. results satisfy ``w - O(x, y) <= tau``.  Use
        :meth:`from_theta` to construct from an overlap threshold
        instead.
    k_max:
        Number of token classes for partitioned k-wise signatures.
        ``k_max = 1`` degenerates to standard prefix filtering.
    m:
        Number of equi-width sub-partitions per class above 1
        (Section 6).  ``m = 1`` disables sub-partitioning.
    routing:
        The fingerprint routing policy (:class:`~repro.RoutingPolicy`)
        this configuration searches under.  ``mode="off"`` (the
        default) bypasses the tier; ``"exact"`` prunes documents
        conservatively before the exact engine (recall 1.0);
        ``"approx"`` is opt-in bounded-recall pruning.
    """

    w: int
    tau: int
    k_max: int = DEFAULT_K_MAX
    m: int = 1
    routing: RoutingPolicy = field(default_factory=RoutingPolicy)
    theta: int = field(init=False)

    def __post_init__(self) -> None:
        if self.w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {self.w}")
        if self.tau < 0:
            raise ConfigurationError(f"threshold tau must be >= 0, got {self.tau}")
        if self.tau >= self.w:
            raise ConfigurationError(
                f"tau must be < w (otherwise every window pair matches); "
                f"got tau={self.tau}, w={self.w}"
            )
        if self.k_max < 1:
            raise ConfigurationError(f"k_max must be >= 1, got {self.k_max}")
        if self.m < 1:
            raise ConfigurationError(f"m must be >= 1, got {self.m}")
        bound = max_prefix_length(self.tau, self.k_max, self.m)
        if self.w < bound:
            raise ConfigurationError(
                f"completeness condition violated (Theorem 2): need "
                f"w >= tau + 1 + m*k_max*(k_max-1)/2 = {bound}, got w={self.w}. "
                f"Lower k_max or m, or raise w."
            )
        if not isinstance(self.routing, RoutingPolicy):
            object.__setattr__(
                self, "routing", RoutingPolicy.from_dict(self.routing)
            )
        object.__setattr__(self, "theta", self.w - self.tau)

    def __getattr__(self, name: str):
        # Params pickled before 1.3 predate the ``routing`` field; read
        # them as the off policy so old snapshots keep opening.
        if name == "routing":
            return RoutingPolicy()
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @classmethod
    def from_theta(
        cls, w: int, theta: int, k_max: int = DEFAULT_K_MAX, m: int = 1
    ) -> "SearchParams":
        """Build params from an overlap threshold ``theta = w - tau``."""
        if theta < 1 or theta > w:
            raise ConfigurationError(
                f"theta must be in [1, w]; got theta={theta}, w={w}"
            )
        return cls(w=w, tau=w - theta, k_max=k_max, m=m)

    @property
    def prefix_length_bound(self) -> int:
        """Corollary 1 upper bound on any window's prefix length."""
        return max_prefix_length(self.tau, self.k_max, self.m)

    def with_k_max(self, k_max: int) -> "SearchParams":
        """Return a copy with a different ``k_max`` (re-validated)."""
        return SearchParams(
            w=self.w, tau=self.tau, k_max=k_max, m=self.m, routing=self.routing
        )

    def with_m(self, m: int) -> "SearchParams":
        """Return a copy with a different sub-partition count ``m``."""
        return SearchParams(
            w=self.w, tau=self.tau, k_max=self.k_max, m=m, routing=self.routing
        )

    def with_routing(self, routing: RoutingPolicy | dict | str | None) -> "SearchParams":
        """Return a copy under a different routing policy.

        Accepts a :class:`~repro.RoutingPolicy`, its ``to_dict`` form,
        a bare mode string, or ``None`` (the off policy).
        """
        return SearchParams(
            w=self.w,
            tau=self.tau,
            k_max=self.k_max,
            m=self.m,
            routing=RoutingPolicy.from_dict(routing),
        )
