"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to discriminate on subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter or combination of parameters is invalid.

    Raised, for example, when the window size violates the completeness
    condition of Theorem 2 (``w >= tau + 1 + k_max * (k_max - 1) / 2``),
    or when a threshold is out of range.
    """


class TokenizationError(ReproError):
    """A document could not be tokenized (e.g. bad q-gram length)."""


class UnknownTokenError(ReproError, KeyError):
    """A frozen vocabulary lookup hit a token it has never interned.

    Subclasses ``KeyError`` so pre-existing ``except KeyError`` callers
    keep working, but carries the offending token so the message names
    *what* was unknown instead of surfacing a bare mapping failure.
    """

    def __init__(self, token: str) -> None:
        super().__init__(f"token {token!r} is not in the vocabulary")
        self.token = token

    def __str__(self) -> str:  # KeyError.__str__ would repr() the args
        return self.args[0]


class CorpusError(ReproError):
    """A document collection is malformed or cannot be loaded."""


class PartitioningError(ReproError):
    """A partition scheme is inconsistent with the token universe."""


class SearchCancelled(ReproError):
    """A search was cancelled cooperatively through its cancel callback.

    Raised from inside the slide loop when the caller-supplied cancel
    callback returns True between query windows; carries how far the
    search had progressed so callers can report partial work.
    """

    def __init__(self, message: str, windows_processed: int = 0) -> None:
        super().__init__(message)
        self.windows_processed = windows_processed


class FaultInjectionError(ReproError):
    """A deliberately injected fault (see :mod:`repro.faults`).

    Never raised in production paths — only when a fault plan is
    installed and one of its ``raise`` rules fires.  Carries the
    injection-point name so recovery tests can assert provenance.
    """

    def __init__(self, message: str, point: str = "") -> None:
        super().__init__(message)
        self.point = point


class WorkerCrashError(ReproError):
    """The parallel worker pool crashed more times than allowed.

    Raised by :class:`~repro.parallel.ParallelExecutor` when worker
    processes keep dying (``max_pool_restarts`` exceeded).  Work that
    completed before the crash is preserved in the run's checkpoint
    when one was configured — rerun with ``resume=True``.
    """

    def __init__(self, message: str, restarts: int = 0) -> None:
        super().__init__(message)
        self.restarts = restarts


class ServiceError(ReproError):
    """Base class for errors raised by :mod:`repro.service`."""


class ServiceOverloadError(ServiceError):
    """The service's admission queue is full; retry after a backoff.

    ``retry_after`` is the service's estimate (in seconds) of when
    capacity will free up, derived from current queue depth and the
    observed average request latency.  The HTTP front-end maps this to
    a ``429`` response with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ServiceError):
    """A request's deadline passed before its search completed."""


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open; the request was not sent.

    Raised by :class:`~repro.service.client.ResilientClient` after
    ``failure_threshold`` consecutive connect/5xx failures; requests
    fail fast until the ``reset_after`` cooldown admits a half-open
    probe.  ``retry_after`` estimates seconds until that probe.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceClosedError(ServiceError):
    """The service has been shut down and accepts no new requests."""


class WorkerStartupError(ServiceError):
    """A spawned shard worker died (or hung) before it started serving.

    Raised by :func:`~repro.service.shards.spawn_shard_workers` when a
    worker process exits before printing its ``SERVING`` line or fails
    to serve within the startup timeout.  Carries the worker's exit
    code (``None`` if it is still running) and the tail of its captured
    stderr so the operator sees *why* the worker died instead of a bare
    timeout.
    """

    def __init__(
        self,
        message: str,
        returncode: int | None = None,
        stderr: str = "",
    ) -> None:
        super().__init__(message)
        self.returncode = returncode
        self.stderr = stderr


class ReplicaQuarantinedError(ServiceError):
    """A crash-looping shard replica was quarantined by its supervisor.

    Raised (and surfaced through ``/healthz``) by
    :class:`~repro.service.supervisor.ShardSupervisor` when a replica
    keeps dying immediately after being restarted: instead of burning
    CPU on a restart loop, the supervisor parks the replica for an
    exponentially growing backoff.  ``retry_after`` estimates seconds
    until the next restart attempt.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_id: int = -1,
        replica: int = -1,
        retry_after: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.replica = replica
        self.retry_after = retry_after


class IndexError_(ReproError):
    """The inverted/interval index is in an inconsistent state.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexStateError`` from the package
    root.
    """


# Public alias with a less awkward name.
IndexStateError = IndexError_


class RoutingUnavailableError(IndexError_):
    """Routing was requested but the snapshot carries no fingerprints.

    Raised when a query asks for ``RoutingPolicy(mode="exact"|"approx")``
    against a compact snapshot that was saved without a routing section
    (built with ``mode="off"``).  Rebuild or re-save the snapshot with a
    routing policy, or query with ``mode="off"``.
    """
