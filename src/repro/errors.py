"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to discriminate on subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter or combination of parameters is invalid.

    Raised, for example, when the window size violates the completeness
    condition of Theorem 2 (``w >= tau + 1 + k_max * (k_max - 1) / 2``),
    or when a threshold is out of range.
    """


class TokenizationError(ReproError):
    """A document could not be tokenized (e.g. bad q-gram length)."""


class CorpusError(ReproError):
    """A document collection is malformed or cannot be loaded."""


class PartitioningError(ReproError):
    """A partition scheme is inconsistent with the token universe."""


class IndexError_(ReproError):
    """The inverted/interval index is in an inconsistent state.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexStateError`` from the package
    root.
    """


# Public alias with a less awkward name.
IndexStateError = IndexError_
