"""Prefix-filtering joins on materialized windows (Section 2.2).

Two classic baselines:

* :class:`StandardPrefixSearcher` — Lemma 1: index the first ``tau + 1``
  tokens of each data window; a candidate shares at least one prefix
  token with the query window's prefix.
* :class:`KPrefixSearcher` — Lemma 2 (extended prefix filtering): index
  the first ``tau + k`` tokens; a candidate shares at least ``k``.

Multiset semantics: "sharing t tokens" counts multiplicities (Example 2
of the paper: two A's count as two shared tokens).  We realize this by
keying postings on ``(token, occurrence_index)``: the j-th occurrence of
a token in a prefix only matches the j-th occurrence on the other side,
so per-window hit counts equal sum_t min(mult_q(t), mult_d(t)) without
any per-token bookkeeping at query time.
"""

from __future__ import annotations

import time
from collections import Counter

from ..corpus import Document, DocumentCollection
from ..core.base import MatchPair, SearchResult, SearchStats
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..windows.rolling import window_overlap
from ..windows.slider import WindowSlider
from .base_runner import BaselineSearcher

#: Postings key: (rank, occurrence index within the prefix).
_OccToken = tuple[int, int]


def occurrence_keys(prefix_ranks: list[int]) -> list[_OccToken]:
    """Each prefix token keyed by its occurrence number (0-based)."""
    seen: Counter[int] = Counter()
    keys: list[_OccToken] = []
    for rank in prefix_ranks:
        keys.append((rank, seen[rank]))
        seen[rank] += 1
    return keys


class KPrefixSearcher(BaselineSearcher):
    """Fixed-k extended prefix filtering join (Lemma 2)."""

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        k: int = 1,
        order: GlobalOrder | None = None,
    ) -> None:
        super().__init__(data, params, order)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if params.tau + k > params.w:
            raise ValueError(
                f"prefix length tau + k = {params.tau + k} exceeds window "
                f"size {params.w}"
            )
        self.k = k
        self.name = f"{k}-prefix"
        build_start = time.perf_counter()
        self._postings: dict[_OccToken, list[tuple[int, int]]] = {}
        prefix_len = params.tau + k
        for doc_id, ranks in enumerate(self.rank_docs):
            slider = WindowSlider(ranks, params.w)
            for start, _outgoing, _incoming in slider.slides():
                prefix = slider.multiset.prefix(prefix_len)
                for key in occurrence_keys(prefix):
                    self._postings.setdefault(key, []).append((doc_id, start))
        self.index_build_seconds = time.perf_counter() - build_start

    @property
    def index_entries(self) -> int:
        """Abstract index size: one entry per (key, window)."""
        return sum(len(postings) for postings in self._postings.values())

    # ------------------------------------------------------------------
    def search(self, query: Document) -> SearchResult:
        """All matching window pairs between ``query`` and the data."""
        stats = SearchStats()
        w, tau, k = self.params.w, self.params.tau, self.k
        query_ranks = self.order.rank_document(query)
        if len(query_ranks) < w:
            return SearchResult(pairs=[], stats=stats)

        pairs: list[MatchPair] = []
        prefix_len = tau + k
        slider = WindowSlider(query_ranks, w)
        for start, _outgoing, _incoming in slider.slides():
            t0 = time.perf_counter()
            prefix = slider.multiset.prefix(prefix_len)
            keys = occurrence_keys(prefix)
            stats.signatures_generated += len(keys)
            stats.signature_tokens += len(keys)
            t1 = time.perf_counter()
            stats.signature_time += t1 - t0

            hit_counts: Counter[tuple[int, int]] = Counter()
            for key in keys:
                postings = self._postings.get(key, ())
                stats.postings_entries += len(postings)
                hit_counts.update(postings)
            candidates = [
                window for window, hits in hit_counts.items() if hits >= k
            ]
            t2 = time.perf_counter()
            stats.candidate_time += t2 - t1

            query_window = query_ranks[start : start + w]
            for doc_id, data_start in candidates:
                stats.candidate_windows += 1
                stats.hash_ops += 2 * w
                overlap = window_overlap(
                    self.rank_docs[doc_id][data_start : data_start + w],
                    query_window,
                )
                if w - overlap <= tau:
                    pairs.append(MatchPair(doc_id, data_start, start, overlap))
            stats.verify_time += time.perf_counter() - t2

        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)


class StandardPrefixSearcher(KPrefixSearcher):
    """Lemma 1: the classic 1-prefix filtering join."""

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        order: GlobalOrder | None = None,
    ) -> None:
        super().__init__(data, params, k=1, order=order)
        self.name = "prefix"
