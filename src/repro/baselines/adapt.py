"""Adapt: adaptive prefix filtering on materialized windows.

Reproduces the framework of Wang, Li & Feng, "Can we beat the prefix
filtering?" (SIGMOD 2012) as used by the paper's Section 7: every data
window is materialized as an object; its prefix is indexed up to length
``tau + k_limit``; for each *query* window the algorithm chooses the
prefix length ``tau + k`` adaptively with a cost model — extending the
prefix by one token costs the next token's postings accesses but
tightens the candidate condition from "share >= k" to "share >= k + 1".

Reproduction notes (documented deviations from the original system):

* Data windows are indexed once at the maximal prefix length instead of
  keeping per-length delta indexes.  Candidates are counted against the
  full indexed prefix, which is a superset of the length-matched count,
  so completeness is preserved (Lemma 2 applies a fortiori); the cost is
  a few extra candidates, not missed results.
* The candidate-size estimate for ``k + 1`` is the current number of
  windows with at least ``k + 1`` hits plus the next token's postings
  length — an upper bound in the spirit of the original estimator.

Multiset semantics use occurrence-indexed keys as in
:mod:`repro.baselines.prefix_join`.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict

from ..corpus import Document, DocumentCollection
from ..core.base import MatchPair, SearchResult, SearchStats
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..windows.rolling import window_overlap
from ..windows.slider import WindowSlider
from .base_runner import BaselineSearcher
from .prefix_join import occurrence_keys


class AdaptSearcher(BaselineSearcher):
    """Adaptive prefix filtering over materialized windows."""

    name = "adapt"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        k_limit: int = 3,
        order: GlobalOrder | None = None,
        access_cost: float = 2.0,
        verify_cost_per_window: float | None = None,
    ) -> None:
        super().__init__(data, params, order)
        if k_limit < 1:
            raise ValueError(f"k_limit must be >= 1, got {k_limit}")
        # Prefix cannot exceed the window.
        self.k_limit = min(k_limit, params.w - params.tau)
        self.access_cost = access_cost
        self.verify_cost = (
            verify_cost_per_window
            if verify_cost_per_window is not None
            else 2.0 * params.w  # Equation 4's per-candidate hash ops
        )
        build_start = time.perf_counter()
        prefix_len = params.tau + self.k_limit
        self._postings: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for doc_id, ranks in enumerate(self.rank_docs):
            slider = WindowSlider(ranks, params.w)
            for start, _outgoing, _incoming in slider.slides():
                prefix = slider.multiset.prefix(prefix_len)
                for key in occurrence_keys(prefix):
                    self._postings.setdefault(key, []).append((doc_id, start))
        self.index_build_seconds = time.perf_counter() - build_start

    @property
    def index_entries(self) -> int:
        """Abstract index size: one entry per (key, window)."""
        return sum(len(postings) for postings in self._postings.values())

    # ------------------------------------------------------------------
    def search(self, query: Document) -> SearchResult:
        """All matching window pairs between ``query`` and the data."""
        stats = SearchStats()
        w, tau = self.params.w, self.params.tau
        query_ranks = self.order.rank_document(query)
        if len(query_ranks) < w:
            return SearchResult(pairs=[], stats=stats)

        pairs: list[MatchPair] = []
        max_prefix = tau + self.k_limit
        slider = WindowSlider(query_ranks, w)
        for start, _outgoing, _incoming in slider.slides():
            t0 = time.perf_counter()
            prefix = slider.multiset.prefix(max_prefix)
            keys = occurrence_keys(prefix)
            stats.signatures_generated += len(keys)
            stats.signature_tokens += len(keys)
            t1 = time.perf_counter()
            stats.signature_time += t1 - t0

            # Probe the mandatory (tau + 1)-prefix, then extend while the
            # cost model says extending is cheaper than verifying the
            # current candidate set.
            hit_counts: Counter[tuple[int, int]] = Counter()
            histogram: defaultdict[int, int] = defaultdict(int)

            def probe(key: tuple[int, int]) -> None:
                """Fetch one key's postings into the hit counters."""
                postings = self._postings.get(key, ())
                stats.postings_entries += len(postings)
                for window in postings:
                    old = hit_counts[window]
                    hit_counts[window] = old + 1
                    if old:
                        histogram[old] -= 1
                    histogram[old + 1] += 1

            for key in keys[: tau + 1]:
                probe(key)
            k = 1
            while k < self.k_limit and tau + k < len(keys):
                next_key = keys[tau + k]
                next_postings = len(self._postings.get(next_key, ()))
                at_least_k = sum(
                    count for hits, count in histogram.items() if hits >= k
                )
                at_least_k1 = sum(
                    count for hits, count in histogram.items() if hits >= k + 1
                )
                cost_stay = at_least_k * self.verify_cost
                estimated_candidates = at_least_k1 + next_postings
                cost_extend = (
                    next_postings * self.access_cost
                    + estimated_candidates * self.verify_cost
                )
                if cost_extend >= cost_stay:
                    break
                probe(next_key)
                k += 1
            candidates = [
                window for window, hits in hit_counts.items() if hits >= k
            ]
            t2 = time.perf_counter()
            stats.candidate_time += t2 - t1

            query_window = query_ranks[start : start + w]
            for doc_id, data_start in candidates:
                stats.candidate_windows += 1
                stats.hash_ops += 2 * w
                overlap = window_overlap(
                    self.rank_docs[doc_id][data_start : data_start + w],
                    query_window,
                )
                if w - overlap <= tau:
                    pairs.append(MatchPair(doc_id, data_start, start, overlap))
            stats.verify_time += time.perf_counter() - t2

        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)
