"""MinHash + LSH banding: the classic approximate alternative.

The paper's related work cites MinHash [Broder 1997] and LSH [Gionis et
al. 1999] as the approximate family for set similarity.  This baseline
applies them to materialized windows: each window gets ``num_hashes``
min-hash values computed with independent universal hash functions;
values are grouped into ``bands`` of ``rows`` each; two windows sharing
any complete band become candidates, which are then verified exactly.

For a window pair with Jaccard similarity J the candidate probability is
``1 - (1 - J^rows)^bands`` — tunable recall, never guaranteed, which is
exactly the qualitative contrast with the exact pkwise algorithm.

Min-hash values for all windows of a document are computed in O(n) per
hash function with a monotonic-deque sliding-window minimum, rather than
O(n * w) naively.
"""

from __future__ import annotations

import random
import time
from collections import deque
from collections.abc import Sequence

from ..corpus import Document, DocumentCollection
from ..core.base import MatchPair, SearchResult, SearchStats
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..windows.rolling import window_overlap
from .base_runner import BaselineSearcher

_MERSENNE_PRIME = (1 << 61) - 1


def sliding_window_minima(values: Sequence[int], w: int) -> list[int]:
    """Minimum of every length-``w`` window of ``values`` (O(n) total)."""
    if len(values) < w:
        return []
    minima: list[int] = []
    candidates: deque[int] = deque()  # indexes, values increasing
    for index, value in enumerate(values):
        while candidates and values[candidates[-1]] >= value:
            candidates.pop()
        candidates.append(index)
        if candidates[0] <= index - w:
            candidates.popleft()
        if index >= w - 1:
            minima.append(values[candidates[0]])
    return minima


class MinHashLSHSearcher(BaselineSearcher):
    """Approximate window search via min-hash signatures and banding."""

    name = "minhash-lsh"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        num_hashes: int = 24,
        bands: int = 6,
        order: GlobalOrder | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(data, params, order)
        if num_hashes < 1 or bands < 1 or num_hashes % bands != 0:
            raise ValueError(
                f"num_hashes ({num_hashes}) must be a positive multiple of "
                f"bands ({bands})"
            )
        self.num_hashes = num_hashes
        self.bands = bands
        self.rows = num_hashes // bands
        rng = random.Random(seed)
        self._coefficients = [
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(_MERSENNE_PRIME))
            for _ in range(num_hashes)
        ]
        build_start = time.perf_counter()
        self._buckets: dict[tuple, list[tuple[int, int]]] = {}
        for doc_id, ranks in enumerate(self.rank_docs):
            for start, keys in enumerate(self._band_keys(ranks)):
                for key in keys:
                    self._buckets.setdefault(key, []).append((doc_id, start))
        self.index_build_seconds = time.perf_counter() - build_start

    # ------------------------------------------------------------------
    def _hash_sequence(self, ranks: Sequence[int], which: int) -> list[int]:
        a, b = self._coefficients[which]
        # Shift ranks to non-negative values (query-only tokens are < 0).
        return [(a * (rank + 2**32) + b) % _MERSENNE_PRIME for rank in ranks]

    def _band_keys(self, ranks: Sequence[int]):
        """Yield, per window start, the list of LSH band keys."""
        w = self.params.w
        if len(ranks) < w:
            return
        minima = [
            sliding_window_minima(self._hash_sequence(ranks, which), w)
            for which in range(self.num_hashes)
        ]
        num_windows = len(ranks) - w + 1
        rows = self.rows
        for start in range(num_windows):
            keys = []
            for band in range(self.bands):
                values = tuple(
                    minima[band * rows + row][start] for row in range(rows)
                )
                keys.append((band, values))
            yield keys

    @property
    def index_entries(self) -> int:
        """Abstract index size: one entry per (band bucket, window)."""
        return sum(len(bucket) for bucket in self._buckets.values())

    # ------------------------------------------------------------------
    def search(self, query: Document) -> SearchResult:
        """The matching window pairs whose sketches collide in a band."""
        stats = SearchStats()
        w, tau = self.params.w, self.params.tau
        query_ranks = self.order.rank_document(query)
        if len(query_ranks) < w:
            return SearchResult(pairs=[], stats=stats)

        pairs: list[MatchPair] = []
        t0 = time.perf_counter()
        candidate_pairs: set[tuple[int, int, int]] = set()
        for start, keys in enumerate(self._band_keys(query_ranks)):
            for key in keys:
                bucket = self._buckets.get(key)
                if not bucket:
                    continue
                stats.postings_entries += len(bucket)
                for doc_id, data_start in bucket:
                    candidate_pairs.add((doc_id, data_start, start))
        t1 = time.perf_counter()
        stats.candidate_time += t1 - t0

        for doc_id, data_start, query_start in candidate_pairs:
            stats.candidate_windows += 1
            stats.hash_ops += 2 * w
            overlap = window_overlap(
                self.rank_docs[doc_id][data_start : data_start + w],
                query_ranks[query_start : query_start + w],
            )
            if w - overlap <= tau:
                pairs.append(MatchPair(doc_id, data_start, query_start, overlap))
        stats.verify_time += time.perf_counter() - t1

        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)
