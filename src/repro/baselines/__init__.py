"""Baseline algorithms compared against pkwise in Section 7.

* :class:`BruteForceSearcher` — exhaustive rolling verification; the
  test oracle.
* :class:`StandardPrefixSearcher` — 1-prefix filtering (Lemma 1), i.e.
  pkwise with ``k_max = 1``.
* :class:`KPrefixSearcher` — fixed k-prefix filtering (Lemma 2).
* :class:`AdaptSearcher` — the adaptive prefix framework of Wang, Li &
  Feng (SIGMOD 2012) applied to materialized windows.
* :class:`FaerieSearcher` — the heap-based approximate dictionary
  entity-extraction algorithm of Deng et al. (VLDB J. 2015) with data
  windows materialized as entities.
* :class:`FBWSearcher` — frequency-biased winnowing (Sun, Qin & Wang,
  WISE 2013); approximate — may miss results.
* :class:`WinnowingSearcher` — classic hash-min Winnowing (Schleimer et
  al., SIGMOD 2003); approximate.
* :class:`MinHashLSHSearcher` — MinHash sketches with LSH banding
  (Broder 1997 / Gionis et al. 1999); approximate.

All exact baselines return exactly the same :class:`~repro.core.MatchPair`
sets as pkwise (asserted by the integration tests); the approximate ones
return subsets.
"""

from .adapt import AdaptSearcher
from .bruteforce import BruteForceSearcher
from .faerie import FaerieSearcher
from .fbw import FBWSearcher, WinnowingSearcher
from .minhash import MinHashLSHSearcher
from .prefix_join import KPrefixSearcher, StandardPrefixSearcher

__all__ = [
    "BruteForceSearcher",
    "StandardPrefixSearcher",
    "KPrefixSearcher",
    "AdaptSearcher",
    "FaerieSearcher",
    "FBWSearcher",
    "WinnowingSearcher",
    "MinHashLSHSearcher",
]
