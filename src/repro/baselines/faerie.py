"""Faerie: heap-based approximate dictionary entity extraction.

Reproduces the algorithm of Deng, Li, Feng, Duan & Gong (VLDB J. 2015)
as adapted by the paper's Section 7.1: every data window is materialized
as a dictionary *entity*; given a query document, the algorithm finds
the query spans of length ``w`` sharing at least ``theta = w - tau``
tokens with an entity.  Candidate generation is the signature move of
Faerie — a heap-merge of the per-position postings lists producing, for
each entity, the sorted list of query positions whose token occurs in
the entity; spans with enough hits become candidates and are verified
exactly.

The hit count upper-bounds the true multiset overlap (each query
occurrence counts even beyond the entity's multiplicity), so candidates
are a superset of the results and the algorithm is exact after
verification.  The paper found this heap-based generation 2-3 orders of
magnitude slower than pkwise for long windows — reproducing that
slowness is the point of this baseline; do not use it at large scale.
"""

from __future__ import annotations

import heapq
import time
from itertools import groupby

from ..corpus import Document, DocumentCollection
from ..core.base import MatchPair, SearchResult, SearchStats
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..windows.rolling import window_overlap
from .base_runner import BaselineSearcher


class FaerieSearcher(BaselineSearcher):
    """Heap-merge candidate generation over materialized windows."""

    name = "faerie"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        order: GlobalOrder | None = None,
    ) -> None:
        super().__init__(data, params, order)
        build_start = time.perf_counter()
        # Entities are data windows; entity id = dense index.
        self._entities: list[tuple[int, int]] = []  # id -> (doc, start)
        self._postings: dict[int, list[int]] = {}  # rank -> sorted entity ids
        w = params.w
        for doc_id, ranks in enumerate(self.rank_docs):
            for start in range(max(0, len(ranks) - w + 1)):
                entity_id = len(self._entities)
                self._entities.append((doc_id, start))
                for rank in set(ranks[start : start + w]):
                    self._postings.setdefault(rank, []).append(entity_id)
        self.index_build_seconds = time.perf_counter() - build_start

    @property
    def index_entries(self) -> int:
        """Abstract index size: one entry per (token, entity)."""
        return sum(len(postings) for postings in self._postings.values())

    # ------------------------------------------------------------------
    def search(self, query: Document) -> SearchResult:
        """All matching window pairs between ``query`` and the data."""
        stats = SearchStats()
        w, tau = self.params.w, self.params.tau
        theta = w - tau
        query_ranks = self.order.rank_document(query)
        n = len(query_ranks)
        if n < w:
            return SearchResult(pairs=[], stats=stats)

        t0 = time.perf_counter()
        # Heap-merge of per-position postings: streams (entity, position)
        # pairs grouped by entity.  This is the expensive part Faerie is
        # known for when entities are long windows.
        def stream(postings: list[int], position: int):
            """Yield (entity, position) pairs for one query position."""
            for entity_id in postings:
                yield (entity_id, position)

        streams = []
        for position, rank in enumerate(query_ranks):
            postings = self._postings.get(rank)
            if postings:
                stats.postings_entries += len(postings)
                streams.append(stream(postings, position))
        merged = heapq.merge(*streams, key=lambda pair: pair[0])

        candidate_pairs: set[tuple[int, int]] = set()  # (entity, query_start)
        max_query_start = n - w
        for entity_id, group in groupby(merged, key=lambda pair: pair[0]):
            positions = sorted(position for _entity, position in group)
            if len(positions) < theta:
                continue
            # Any theta consecutive hit positions spanning < w tokens
            # admit the query windows covering all of them.
            for i in range(len(positions) - theta + 1):
                first = positions[i]
                last = positions[i + theta - 1]
                if last - first >= w:
                    continue
                lo = max(0, last - w + 1)
                hi = min(first, max_query_start)
                for query_start in range(lo, hi + 1):
                    candidate_pairs.add((entity_id, query_start))
        t1 = time.perf_counter()
        stats.candidate_time += t1 - t0

        pairs: list[MatchPair] = []
        for entity_id, query_start in candidate_pairs:
            doc_id, data_start = self._entities[entity_id]
            stats.candidate_windows += 1
            stats.hash_ops += 2 * w
            overlap = window_overlap(
                self.rank_docs[doc_id][data_start : data_start + w],
                query_ranks[query_start : query_start + w],
            )
            if w - overlap <= tau:
                pairs.append(MatchPair(doc_id, data_start, query_start, overlap))
        stats.verify_time += time.perf_counter() - t1

        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)
