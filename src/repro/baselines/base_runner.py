"""Shared plumbing for baseline searchers.

Every baseline shares the same setup — a global order, rank-converted
data documents, and a ``search_many`` aggregator — so it lives here once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..corpus import Document, DocumentCollection
from ..core.base import SearchResult
from ..obs import get_tracer
from ..ordering import GlobalOrder
from ..params import SearchParams


class BaselineSearcher(ABC):
    """Base class: owns the order and the rank-converted documents."""

    name = "baseline"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        order: GlobalOrder | None = None,
    ) -> None:
        self.params = params
        self.order = order if order is not None else GlobalOrder(data, params.w)
        self.rank_docs: list[list[int]] = [
            self.order.rank_document(document) for document in data
        ]

    @abstractmethod
    def search(self, query: Document) -> SearchResult:
        """All matching window pairs between ``query`` and the data."""

    def search_many(self, queries: list[Document], *, jobs: int = 1):
        """Search every query; returns an :class:`~repro.eval.AggregateRun`.

        One shape for serial and sharded runs — see
        :meth:`repro.PKWiseSearcher.search_many`.
        """
        from ..eval.harness import run_searcher

        with get_tracer().span(
            "baseline.search_many", algorithm=self.name, queries=len(queries)
        ) as many_span:
            run = run_searcher(self, queries, jobs=jobs)
            many_span.annotate(
                results=run.stats.num_results, **run.stats.phase_seconds()
            )
        return run

    def close(self) -> None:
        """Release resources (no-op; in-memory structures). Idempotent."""
