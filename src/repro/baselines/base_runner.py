"""Shared plumbing for baseline searchers.

Every baseline shares the same setup — a global order, rank-converted
data documents, and a ``search_many`` aggregator — so it lives here once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..corpus import Document, DocumentCollection
from ..core.base import SearchResult, SearchStats
from ..obs import get_tracer
from ..ordering import GlobalOrder
from ..params import SearchParams


class BaselineSearcher(ABC):
    """Base class: owns the order and the rank-converted documents."""

    name = "baseline"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        order: GlobalOrder | None = None,
    ) -> None:
        self.params = params
        self.order = order if order is not None else GlobalOrder(data, params.w)
        self.rank_docs: list[list[int]] = [
            self.order.rank_document(document) for document in data
        ]

    @abstractmethod
    def search(self, query: Document) -> SearchResult:
        """All matching window pairs between ``query`` and the data."""

    def search_many(
        self, queries: list[Document]
    ) -> tuple[list[SearchResult], SearchStats]:
        """Search every query; returns per-query results and summed stats."""
        total = SearchStats()
        results = []
        with get_tracer().span(
            "baseline.search_many", algorithm=self.name, queries=len(queries)
        ) as many_span:
            for query in queries:
                result = self.search(query)
                total.merge(result.stats)
                results.append(result)
            many_span.annotate(results=total.num_results, **total.phase_seconds())
        return results, total
