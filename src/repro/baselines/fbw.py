"""FBW: frequency-biased winnowing fingerprints (approximate).

Reproduces the Winnowing-family algorithm of Sun, Qin & Wang (WISE
2013) as used by the paper's Section 7.1: documents are transformed into
token q-grams (q = 2 by default, the paper's setting); a winnowing pass
slides a fingerprint window over the q-gram sequence and selects, per
window, the *least frequent* q-gram (frequency measured over the data
collection; ties by hash) as a fingerprint.  A shared fingerprint
between a data and a query document anchors candidate window pairs along
the alignment diagonal, which are then verified against the exact
similarity constraint.

FBW is approximate: replications whose rare q-grams were perturbed by
obfuscation select *different* fingerprints on the two sides (the
errors produce frequency-zero grams that win the selection), so results
are missed — the paper measured only 10-43% of the exact result set,
with recall dropping for heavy obfuscation.  The quality benches
reproduce that failure mode.
"""

from __future__ import annotations

import time
from collections import Counter

from ..corpus import Document, DocumentCollection
from ..core.base import MatchPair, SearchResult, SearchStats
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..windows.rolling import window_overlap
from .base_runner import BaselineSearcher

#: A q-gram of token ranks.
_Gram = tuple[int, ...]


def default_winnow_window(w: int, q: int, tau: int) -> int:
    """Fingerprint-window size balancing index size against recall.

    A quarter of the gram span of a window: coarse enough that the
    index stays far smaller than the exact methods' (the paper's
    Figure 7 property), fine enough that a verbatim replication of ``w``
    tokens always contributes several fingerprints.  Tolerance to
    scattered errors is *not* guaranteed — that approximation is FBW's
    defining trade-off (Table 3 / Figure 12).
    """
    del tau  # recall-vs-size is deliberately independent of tau here
    return max(4, (w - q + 1) // 4)


class FBWSearcher(BaselineSearcher):
    """Frequency-biased winnowing; approximate (subset of results)."""

    name = "fbw"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        q: int = 2,
        winnow_window: int | None = None,
        order: GlobalOrder | None = None,
    ) -> None:
        super().__init__(data, params, order)
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q
        self.winnow_window = (
            winnow_window
            if winnow_window is not None
            else default_winnow_window(params.w, q, params.tau)
        )
        build_start = time.perf_counter()
        gram_docs = [self._grams(ranks) for ranks in self.rank_docs]
        self._gram_frequency: Counter[_Gram] = Counter()
        for grams in gram_docs:
            self._gram_frequency.update(grams)
        self._fingerprints: dict[_Gram, list[tuple[int, int]]] = {}
        for doc_id, grams in enumerate(gram_docs):
            for position, gram in self._select(grams):
                self._fingerprints.setdefault(gram, []).append((doc_id, position))
        self.index_build_seconds = time.perf_counter() - build_start

    def _grams(self, ranks: list[int]) -> list[_Gram]:
        q = self.q
        if len(ranks) < q:
            return []
        return [tuple(ranks[i : i + q]) for i in range(len(ranks) - q + 1)]

    def _selection_keys(self, grams: list[_Gram]) -> list[tuple]:
        """Per-gram selection key: least (frequency, hash) wins.

        Overridden by :class:`WinnowingSearcher` to select by hash only
        (the original, frequency-blind Winnowing of Schleimer et al.).
        """
        frequency = self._gram_frequency
        return [(frequency[gram], hash(gram)) for gram in grams]

    def _select(self, grams: list[_Gram]) -> list[tuple[int, int]]:
        """Winnowing selection: per window, the minimum-key gram.

        Standard winnowing de-duplication: a gram is recorded once per
        maximal run of windows selecting the same position.
        """
        window = self.winnow_window
        if not grams:
            return []
        keys = self._selection_keys(grams)
        selected: list[tuple[int, int]] = []
        last_position = -1
        for start in range(max(1, len(grams) - window + 1)):
            end = min(len(grams), start + window)
            best = min(range(start, end), key=lambda i: (keys[i], i))
            if best != last_position:
                selected.append((best, grams[best]))
                last_position = best
        return [(position, gram) for position, gram in selected]

    @property
    def index_entries(self) -> int:
        """Abstract index size: one entry per stored fingerprint."""
        return sum(len(postings) for postings in self._fingerprints.values())

    # ------------------------------------------------------------------
    def search(self, query: Document) -> SearchResult:
        """The matching window pairs this fingerprinting scheme finds."""
        stats = SearchStats()
        w, tau, q = self.params.w, self.params.tau, self.q
        query_ranks = self.order.rank_document(query)
        n = len(query_ranks)
        if n < w:
            return SearchResult(pairs=[], stats=stats)

        t0 = time.perf_counter()
        query_grams = self._grams(query_ranks)
        selected = self._select(query_grams)
        stats.signatures_generated += len(selected)
        stats.signature_tokens += len(selected) * q
        t1 = time.perf_counter()
        stats.signature_time += t1 - t0

        candidate_pairs: set[tuple[int, int, int]] = set()
        max_query_start = n - w
        for query_position, gram in selected:
            postings = self._fingerprints.get(gram, ())
            stats.postings_entries += len(postings)
            for doc_id, data_position in postings:
                max_data_start = len(self.rank_docs[doc_id]) - w
                # Diagonal alignment: the shared gram sits at the same
                # offset within both windows.
                for offset in range(w - q + 1):
                    data_start = data_position - offset
                    query_start = query_position - offset
                    if (
                        0 <= data_start <= max_data_start
                        and 0 <= query_start <= max_query_start
                    ):
                        candidate_pairs.add((doc_id, data_start, query_start))
        t2 = time.perf_counter()
        stats.candidate_time += t2 - t1

        pairs: list[MatchPair] = []
        for doc_id, data_start, query_start in candidate_pairs:
            stats.candidate_windows += 1
            stats.hash_ops += 2 * w
            overlap = window_overlap(
                self.rank_docs[doc_id][data_start : data_start + w],
                query_ranks[query_start : query_start + w],
            )
            if w - overlap <= tau:
                pairs.append(MatchPair(doc_id, data_start, query_start, overlap))
        stats.verify_time += time.perf_counter() - t2

        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)


class WinnowingSearcher(FBWSearcher):
    """Classic Winnowing (Schleimer, Wilkerson & Aiken, SIGMOD 2003).

    Identical pipeline to FBW but fingerprints are selected by minimum
    *hash* instead of minimum collection frequency — the original,
    frequency-blind scheme.  Included as the natural ablation of FBW's
    frequency bias: on clean copies both behave alike; under obfuscation
    their failure modes differ (FBW locks onto error grams because they
    are rare; Winnowing's hash-min choice is error-agnostic but
    unselective).
    """

    name = "winnowing"

    def _selection_keys(self, grams: list[_Gram]) -> list[tuple]:
        return [(hash(gram),) for gram in grams]
