"""Brute-force local similarity search: the correctness oracle.

Verifies every (data window, query window) pair, but does so with
rolling hash tables so even the oracle is O(1) per pair after setup:
for each query window the data side rolls across each document.  Used
by the test suite to validate every other algorithm, and runnable as a
baseline at small scales.
"""

from __future__ import annotations

import time
from collections import Counter

from ..corpus import Document, DocumentCollection
from ..ordering import GlobalOrder
from ..params import SearchParams
from .base_runner import BaselineSearcher
from ..core.base import MatchPair, SearchResult, SearchStats


class BruteForceSearcher(BaselineSearcher):
    """Exhaustive pairwise verification with rolling overlap."""

    name = "bruteforce"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        order: GlobalOrder | None = None,
    ) -> None:
        super().__init__(data, params, order)
        self.index_build_seconds = 0.0  # no index

    def search(self, query: Document) -> SearchResult:
        """All matching window pairs between ``query`` and the data."""
        stats = SearchStats()
        w, tau = self.params.w, self.params.tau
        query_ranks = self.order.rank_document(query)
        num_query_windows = len(query_ranks) - w + 1
        if num_query_windows <= 0:
            return SearchResult(pairs=[], stats=stats)

        pairs: list[MatchPair] = []
        t0 = time.perf_counter()
        query_counts = Counter(query_ranks[:w])
        for query_start in range(num_query_windows):
            if query_start > 0:
                outgoing = query_ranks[query_start - 1]
                incoming = query_ranks[query_start + w - 1]
                if outgoing != incoming:
                    if query_counts[outgoing] == 1:
                        del query_counts[outgoing]
                    else:
                        query_counts[outgoing] -= 1
                    query_counts[incoming] += 1
            for doc_id, doc_ranks in enumerate(self.rank_docs):
                num_windows = len(doc_ranks) - w + 1
                if num_windows <= 0:
                    continue
                data_counts = Counter(doc_ranks[:w])
                overlap = sum(
                    min(count, query_counts.get(rank, 0))
                    for rank, count in data_counts.items()
                )
                stats.hash_ops += 2 * w
                for data_start in range(num_windows):
                    if data_start > 0:
                        outgoing = doc_ranks[data_start - 1]
                        incoming = doc_ranks[data_start + w - 1]
                        if outgoing != incoming:
                            stats.hash_ops += 4
                            old = data_counts[outgoing]
                            if query_counts.get(outgoing, 0) >= old:
                                overlap -= 1
                            if old == 1:
                                del data_counts[outgoing]
                            else:
                                data_counts[outgoing] = old - 1
                            new = data_counts.get(incoming, 0) + 1
                            data_counts[incoming] = new
                            if query_counts.get(incoming, 0) >= new:
                                overlap += 1
                    stats.candidate_windows += 1
                    if w - overlap <= tau:
                        pairs.append(
                            MatchPair(doc_id, data_start, query_start, overlap)
                        )
        stats.verify_time = time.perf_counter() - t0
        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)
