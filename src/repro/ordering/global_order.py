"""Window frequencies and the global token order O.

The prefix-filtering framework requires one total order over the token
universe, shared by indexing and query processing.  Following
Section 2.2, tokens are ordered by increasing window frequency (number
of data windows containing the token), breaking ties by token string.

Tokens that first appear in *query* documents (window frequency zero by
definition) are admitted lazily: they are ordered before every data
token — they are the rarest possible — and among themselves by arrival.
This matches the paper's Example 1/2, where the query-only tokens E and
F sort first.  Extending the order this way never perturbs the relative
order of data tokens, so signatures indexed before the extension remain
valid (see the proof of Theorem 1, which only needs O to be a fixed
total order consistent between both sides).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..corpus import Document, DocumentCollection
from ..errors import ConfigurationError

#: Rank assigned to the query-side OOV sentinel (negative token ids).
#: Far below any lazily admitted rank (those count down from -1 one at a
#: time), so the sentinel can never collide with a token that actually
#: occurs in indexed data.
OOV_RANK = -(1 << 60)


def window_frequencies(data: DocumentCollection, w: int) -> list[int]:
    """Number of data windows of size ``w`` containing each token.

    Returns a list indexed by token id (length = vocabulary size).  A
    window "contains" a token if at least one of its ``w`` positions
    holds it; multiplicities within one window do not add.

    Runs in O(total tokens): for each occurrence at position ``p`` the
    containing window starts form the interval
    ``[max(0, p - w + 1), min(p, n - w)]``; per token we count the union
    of those intervals with a running high-water mark.
    """
    return window_frequencies_of_documents(data, len(data.vocabulary), w)


def window_frequencies_of_documents(
    documents: Iterable[Document], vocabulary_size: int, w: int
) -> list[int]:
    """:func:`window_frequencies` over an explicit document subset.

    Counts are per document, so frequency vectors computed over a
    partition of a collection sum elementwise to the full collection's
    vector — the reduction used by parallel index construction.
    """
    if w < 1:
        raise ConfigurationError(f"window size must be >= 1, got {w}")
    freq = [0] * vocabulary_size
    for document in documents:
        n = len(document)
        if n < w:
            continue
        covered_to: dict[int, int] = {}  # token -> last counted window start
        for p, token in enumerate(document.tokens):
            lo = max(0, p - w + 1)
            hi = min(p, n - w)
            start = max(lo, covered_to.get(token, -1) + 1)
            if start <= hi:
                freq[token] += hi - start + 1
                covered_to[token] = hi
    return freq


class GlobalOrder:
    """The total order O: token id -> dense rank.

    Ranks are non-negative for tokens known when the order was built
    (rank 0 = rarest data token) and negative, decreasing, for tokens
    that appear later (query-only tokens), which keeps them first in the
    order without renumbering anything.

    The order also carries the window frequency of each *rank*, which
    the cost model and the partitioners consume.
    """

    def __init__(self, data: DocumentCollection, w: int) -> None:
        self._init_from_frequencies(
            data.vocabulary, w, window_frequencies(data, w), data.total_windows(w)
        )

    @classmethod
    def from_frequencies(
        cls,
        vocabulary,
        w: int,
        frequencies: Sequence[int],
        num_data_windows: int,
    ) -> "GlobalOrder":
        """Build an order from a precomputed window-frequency vector.

        Given the vector :func:`window_frequencies` would produce (e.g.
        assembled by summing per-partition vectors from
        :func:`window_frequencies_of_documents`), this yields an order
        identical to ``GlobalOrder(data, w)`` without touching the
        documents again.
        """
        self = cls.__new__(cls)
        self._init_from_frequencies(vocabulary, w, list(frequencies), num_data_windows)
        return self

    def _init_from_frequencies(
        self, vocabulary, w: int, freq: list[int], num_data_windows: int
    ) -> None:
        self._vocabulary = vocabulary
        self.w = w
        token_of = vocabulary.token_of
        order = sorted(range(len(freq)), key=lambda t: (freq[t], token_of(t)))
        self._rank_of_token: list[int] = [0] * len(freq)
        self._token_of_rank: list[int] = order
        for rank, token in enumerate(order):
            self._rank_of_token[token] = rank
        self._freq_of_rank: list[int] = [freq[token] for token in order]
        self._built_size = len(freq)
        self._extra_ranks: dict[int, int] = {}
        self.num_data_windows = num_data_windows

    # ------------------------------------------------------------------
    @property
    def universe_size(self) -> int:
        """Number of tokens known at build time (rank space size)."""
        return self._built_size

    def rank(self, token_id: int) -> int:
        """Rank of ``token_id``; lazily admits tokens unseen at build.

        Negative token ids (the query-side OOV sentinel) map to the
        fixed :data:`OOV_RANK` without mutating the order — they sort
        before everything, like any zero-frequency token, and can never
        equal a rank that occurs in indexed data.
        """
        if token_id < 0:
            return OOV_RANK
        if token_id < self._built_size:
            return self._rank_of_token[token_id]
        rank = self._extra_ranks.get(token_id)
        if rank is None:
            rank = -1 - len(self._extra_ranks)
            self._extra_ranks[token_id] = rank
        return rank

    def token_of_rank(self, rank: int) -> int:
        """Token id holding non-negative ``rank``."""
        return self._token_of_rank[rank]

    def frequency_of_rank(self, rank: int) -> int:
        """Window frequency of the token at ``rank`` (0 for negatives)."""
        if rank < 0:
            return 0
        return self._freq_of_rank[rank]

    def relative_frequency_of_rank(self, rank: int) -> float:
        """Window frequency normalized by the number of data windows."""
        if self.num_data_windows == 0:
            return 0.0
        return self.frequency_of_rank(rank) / self.num_data_windows

    # ------------------------------------------------------------------
    def snapshot(self, vocabulary=None) -> "GlobalOrder":
        """A point-in-time copy safe to pickle while this order keeps
        admitting tokens.

        The build-time tables are frozen after construction and are
        shared; only the lazy-admission map is copied.  Pass the
        matching vocabulary snapshot so the copy does not pin (or race
        with) the live, still-interning vocabulary.
        """
        clone = GlobalOrder.__new__(GlobalOrder)
        clone._vocabulary = (
            vocabulary if vocabulary is not None else self._vocabulary
        )
        clone.w = self.w
        clone._rank_of_token = self._rank_of_token
        clone._token_of_rank = self._token_of_rank
        clone._freq_of_rank = self._freq_of_rank
        clone._built_size = self._built_size
        clone._extra_ranks = dict(self._extra_ranks)
        clone.num_data_windows = self.num_data_windows
        return clone

    def rank_sequence(self, tokens: Sequence[int]) -> list[int]:
        """Map a token-id sequence to its rank sequence."""
        rank = self.rank
        return [rank(token) for token in tokens]

    def rank_document(self, document: Document) -> list[int]:
        """Rank sequence of a document (original token order preserved)."""
        return self.rank_sequence(document.tokens)

    def sorted_window(self, document: Document, start: int, w: int) -> list[int]:
        """Ranks of window ``W(document, start)`` sorted by O (ascending)."""
        return sorted(self.rank_sequence(document.window(start, w)))

    def __repr__(self) -> str:
        return (
            f"GlobalOrder(universe={self._built_size}, w={self.w}, "
            f"windows={self.num_data_windows}, extras={len(self._extra_ranks)})"
        )
