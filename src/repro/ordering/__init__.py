"""Global token order substrate (Section 2.2 of the paper).

Tokens are sorted by increasing *window frequency* — the number of data
windows that contain the token — with ties broken by token string.  The
:class:`GlobalOrder` assigns each token a dense integer *rank*; all
window-level processing in the library operates on rank sequences.
"""

from .global_order import (
    GlobalOrder,
    window_frequencies,
    window_frequencies_of_documents,
)

__all__ = [
    "GlobalOrder",
    "window_frequencies",
    "window_frequencies_of_documents",
]
