"""Saving and loading built searchers.

Index construction (and especially greedy partitioning) is the
expensive, offline part of the pipeline; production deployments build
once and serve many queries.  This module persists a fully built
:class:`~repro.PKWiseSearcher` — interval index, partition scheme,
global order and rank-converted documents — to a single file.

Format: Python pickle wrapped in a small versioned envelope.  Pickle is
appropriate here because an index file is a local artifact produced by
the same trust domain that loads it; never load index files from
untrusted sources (the standard pickle caveat, restated in
:func:`load_searcher`).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path

from .core.pkwise import PKWiseSearcher
from .errors import ReproError

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1
_MAGIC = "repro-pkwise-index"


class PersistenceError(ReproError):
    """The index file is missing, corrupt, or from another version."""


def save_searcher(
    searcher: PKWiseSearcher, path: str | Path, data=None
) -> None:
    """Serialize a built searcher to ``path`` (atomic via temp file).

    Pass the :class:`~repro.DocumentCollection` as ``data`` to bundle
    the original documents (needed to decode matches back to text, e.g.
    by the CLI); omit it for a leaner, ids-only index file.

    The write goes through a uniquely named temp file in the target
    directory (so concurrent writers to the same ``path`` never clobber
    each other's half-written bytes), is fsynced, and is renamed over
    ``path`` only on success; a failed dump leaves no temp file behind.
    """
    path = Path(path)
    envelope = {
        "magic": _MAGIC,
        "version": FORMAT_VERSION,
        "params": {
            "w": searcher.params.w,
            "tau": searcher.params.tau,
            "k_max": searcher.params.k_max,
            "m": searcher.params.m,
        },
        "searcher": searcher,
        "data": data,
    }
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    temp_path = Path(temp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        temp_path.replace(path)
    finally:
        temp_path.unlink(missing_ok=True)


def _load_envelope(path: Path) -> dict:
    if not path.exists():
        raise PersistenceError(f"index file {path} does not exist")
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise PersistenceError(f"cannot read index file {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("magic") != _MAGIC:
        raise PersistenceError(f"{path} is not a repro index file")
    version = envelope.get("version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"index file {path} has format version {version}; this build "
            f"reads version {FORMAT_VERSION} — rebuild the index"
        )
    if not isinstance(envelope.get("searcher"), PKWiseSearcher):
        raise PersistenceError(f"{path} does not contain a PKWiseSearcher")
    return envelope


class SearcherBundle:
    """A loaded (or freshly built) searcher plus its document collection.

    The unit the serving and facade layers pass around: the query
    engine, the collection needed to encode text queries against it,
    and provenance (source path, load time).  Unpacks as the historical
    ``(searcher, data)`` tuple, so pre-1.1 callers of
    :func:`load_bundle` keep working unchanged.
    """

    __slots__ = ("searcher", "data", "path", "load_seconds")

    def __init__(
        self,
        searcher,
        data=None,
        path: Path | None = None,
        load_seconds: float = 0.0,
    ) -> None:
        #: The query engine (a :class:`~repro.PKWiseSearcher` for files
        #: written by :func:`save_searcher`).
        self.searcher = searcher
        #: The bundled :class:`~repro.DocumentCollection`, or None for
        #: ids-only index files.
        self.data = data
        #: Source file, or None when built in memory.
        self.path = path
        #: Wall-clock seconds spent deserializing (0.0 in memory).
        self.load_seconds = load_seconds

    # Legacy tuple shape: ``searcher, data = load_bundle(path)``.
    def __iter__(self):
        yield self.searcher
        yield self.data

    @property
    def params(self):
        """The searcher's :class:`~repro.SearchParams`."""
        return self.searcher.params

    def encode_query(self, text: str, name: str | None = None):
        """Tokenize ``text`` against the bundled collection's vocabulary."""
        if self.data is None:
            raise PersistenceError(
                "bundle has no document collection (saved ids-only); "
                "rebuild the index with its data to encode text queries"
            )
        return self.data.encode_query(text, name=name)

    def search(self, query):
        """Delegate to the searcher (single query)."""
        return self.searcher.search(query)

    def search_text(self, text: str):
        """Encode ``text`` and search it in one step."""
        return self.searcher.search(self.encode_query(text))

    def search_many(self, queries, *, jobs: int = 1):
        """Delegate to the searcher (workload run)."""
        return self.searcher.search_many(queries, jobs=jobs)

    def serve(self, **kwargs):
        """Wrap this bundle in a :class:`~repro.service.SearchService`.

        Keyword arguments are forwarded (``max_workers``, ``max_queue``,
        ``cache_size``, ``default_timeout`` ...).
        """
        from .service import SearchService

        return SearchService(self.searcher, self.data, **kwargs)

    def close(self) -> None:
        """Release the searcher's resources."""
        self.searcher.close()

    def __enter__(self) -> "SearcherBundle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        source = str(self.path) if self.path is not None else "<memory>"
        return (
            f"SearcherBundle({type(self.searcher).__name__}, "
            f"data={'yes' if self.data is not None else 'no'}, "
            f"source={source})"
        )


def load_searcher(path: str | Path) -> PKWiseSearcher:
    """Load a searcher saved by :func:`save_searcher`.

    SECURITY: this unpickles the file — only load files you (or your
    pipeline) wrote.
    """
    return _load_envelope(Path(path))["searcher"]


def load_bundle(path: str | Path) -> SearcherBundle:
    """Load a :class:`SearcherBundle` from ``path``.

    Still unpacks as the pre-1.1 ``(searcher, data)`` tuple; ``data``
    is None for ids-only files.  Same pickle caveat as
    :func:`load_searcher`.
    """
    path = Path(path)
    start = time.perf_counter()
    envelope = _load_envelope(path)
    return SearcherBundle(
        envelope["searcher"],
        envelope.get("data"),
        path=path,
        load_seconds=time.perf_counter() - start,
    )
