"""Saving and loading built searchers.

Index construction (and especially greedy partitioning) is the
expensive, offline part of the pipeline; production deployments build
once and serve many queries.  This module persists a fully built
:class:`~repro.PKWiseSearcher` — interval index, partition scheme,
global order and rank-converted documents — to a single file.

Format: Python pickle sections wrapped in a small versioned envelope
whose every section carries a BLAKE2b payload digest, so a flipped bit
on disk surfaces as a typed :class:`PersistenceError` naming the
corrupt section — never a pickle error or silently wrong data.  Pickle
is appropriate here because an index file is a local artifact produced
by the same trust domain that loads it; never load index files from
untrusted sources (the standard pickle caveat, restated in
:func:`load_searcher`).

:func:`save_searcher` can additionally keep rotated snapshot
generations (``index.idx.1``, ``index.idx.2``, ...); the loaders fall
back to the newest intact generation when the primary is corrupt, so a
crash mid-deploy never leaves serving without an index.

The checksummed envelope is generic (:func:`write_envelope` /
:func:`read_envelope`) and is shared by the parallel executor's run
checkpoints (:mod:`repro.parallel.checkpoint`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import warnings
from pathlib import Path

from . import faults
from .core.pkwise import PKWiseSearcher
from .errors import ReproError

#: Bumped whenever the on-disk layout changes incompatibly.
#: Version 2 added per-section BLAKE2b digests and the ``kind`` field.
FORMAT_VERSION = 2
_MAGIC = "repro-envelope"
_MAGIC_V1 = "repro-pkwise-index"
_INDEX_KIND = "pkwise-index"
_DIGEST_SIZE = 16


class PersistenceError(ReproError):
    """The file is missing, corrupt, or from another format version."""


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()


def _atomic_write(path: Path, serialize) -> None:
    """Write through a unique temp file, fsync, rename over ``path``.

    ``serialize(handle)`` does the actual dump; concurrent writers to
    the same ``path`` never clobber each other's half-written bytes and
    a failed dump leaves no temp file behind.
    """
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    temp_path = Path(temp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            serialize(handle)
            handle.flush()
            os.fsync(handle.fileno())
        temp_path.replace(path)
    finally:
        temp_path.unlink(missing_ok=True)


def write_envelope(
    path: str | Path, kind: str, sections: dict, header: dict | None = None
) -> None:
    """Atomically write a checksummed envelope of pickled ``sections``.

    Each section value is pickled independently and stored next to the
    BLAKE2b digest of its bytes; ``header`` is a small plain-data dict
    readable without touching any section payload.  ``kind`` names the
    envelope's schema (index file, workload checkpoint, ...) and is
    verified on read.
    """
    path = Path(path)
    packed: dict[str, bytes] = {}
    digests: dict[str, str] = {}
    for name, obj in sections.items():
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        blob = faults.inject_bytes("persistence.write", blob, section=name, kind=kind)
        packed[name] = blob
        digests[name] = _digest(blob)
    envelope = {
        "magic": _MAGIC,
        "version": FORMAT_VERSION,
        "kind": kind,
        "header": dict(header or {}),
        "sections": packed,
        "digests": digests,
    }
    _atomic_write(
        path,
        lambda handle: pickle.dump(
            envelope, handle, protocol=pickle.HIGHEST_PROTOCOL
        ),
    )


def read_envelope(path: str | Path, kind: str) -> tuple[dict, dict]:
    """Load ``(header, sections)`` from a checksummed envelope.

    Every failure mode is a typed :class:`PersistenceError`: missing
    file, unreadable outer frame, wrong magic/kind, old format version,
    and — checked before any section is unpickled — a section whose
    bytes no longer match their recorded digest (the error names the
    corrupt section).
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"{kind} file {path} does not exist")
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError,
            IndexError, MemoryError) as exc:
        raise PersistenceError(f"cannot read {kind} file {path}: {exc}") from exc
    if not isinstance(envelope, dict):
        raise PersistenceError(f"{path} is not a repro {kind} file")
    magic = envelope.get("magic")
    if magic == _MAGIC_V1:
        raise PersistenceError(
            f"{path} has format version 1; this build reads version "
            f"{FORMAT_VERSION} — rebuild the file"
        )
    if magic != _MAGIC:
        raise PersistenceError(f"{path} is not a repro {kind} file")
    version = envelope.get("version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"{kind} file {path} has format version {version}; this build "
            f"reads version {FORMAT_VERSION} — rebuild the file"
        )
    if envelope.get("kind") != kind:
        raise PersistenceError(
            f"{path} is a {envelope.get('kind')!r} envelope, not {kind!r}"
        )
    packed = envelope.get("sections")
    digests = envelope.get("digests")
    if not isinstance(packed, dict) or not isinstance(digests, dict):
        raise PersistenceError(f"{kind} file {path} has a malformed envelope")
    sections: dict = {}
    for name, blob in packed.items():
        blob = faults.inject_bytes("persistence.read", blob, section=name, kind=kind)
        if _digest(blob) != digests.get(name):
            raise PersistenceError(
                f"{kind} file {path}: section {name!r} is corrupt "
                f"(payload checksum mismatch) — restore from a snapshot "
                f"or rebuild"
            )
        try:
            sections[name] = pickle.loads(blob)
        except Exception as exc:  # digest matched but payload won't load
            raise PersistenceError(
                f"{kind} file {path}: section {name!r} cannot be "
                f"deserialized: {exc}"
            ) from exc
    return envelope.get("header", {}), sections


def rotated_paths(path: str | Path, generations: int) -> list[Path]:
    """``[path.1, path.2, ...]`` up to ``generations`` entries."""
    path = Path(path)
    return [
        path.with_name(f"{path.name}.{generation}")
        for generation in range(1, generations + 1)
    ]


def _rotate_snapshots(path: Path, keep: int) -> None:
    """Shift ``path`` → ``path.1`` → ... → ``path.keep`` (drop oldest)."""
    if keep < 1 or not path.exists():
        return
    generations = rotated_paths(path, keep)
    if generations[-1].exists():
        generations[-1].unlink()
    for older, newer in zip(reversed(generations[1:]), reversed(generations[:-1])):
        if newer.exists():
            newer.replace(older)
    path.replace(generations[0])


def save_searcher(
    searcher: PKWiseSearcher, path: str | Path, data=None, *, rotate: int = 0
) -> None:
    """Serialize a built searcher to ``path`` (atomic via temp file).

    Pass the :class:`~repro.DocumentCollection` as ``data`` to bundle
    the original documents (needed to decode matches back to text, e.g.
    by the CLI); omit it for a leaner, ids-only index file.

    ``rotate=N`` keeps the previous N snapshot generations as
    ``path.1`` (newest) through ``path.N`` (oldest) before writing the
    new file; the loaders automatically fall back to the newest intact
    generation when the primary fails its checksum.
    """
    path = Path(path)
    if rotate:
        _rotate_snapshots(path, rotate)
    write_envelope(
        path,
        _INDEX_KIND,
        {"searcher": searcher, "data": data},
        header={
            "params": {
                "w": searcher.params.w,
                "tau": searcher.params.tau,
                "k_max": searcher.params.k_max,
                "m": searcher.params.m,
            },
        },
    )


def _load_envelope(path: Path) -> dict:
    header, sections = read_envelope(path, _INDEX_KIND)
    searcher = sections.get("searcher")
    if not isinstance(searcher, PKWiseSearcher):
        raise PersistenceError(f"{path} does not contain a PKWiseSearcher")
    return {
        "params": header.get("params", {}),
        "searcher": searcher,
        "data": sections.get("data"),
    }


def _load_with_fallback(path: Path) -> tuple[dict, Path]:
    """Load ``path`` or, on failure, the newest intact rotated snapshot.

    Candidates are the primary plus every existing ``path.N`` sibling in
    generation order (newest first).  The primary's error is re-raised
    when no candidate loads; a successful fallback emits a
    :class:`RuntimeWarning` naming both files.
    """
    candidates = [path]
    generation = 1
    while True:
        sibling = path.with_name(f"{path.name}.{generation}")
        if not sibling.exists():
            break
        candidates.append(sibling)
        generation += 1
    primary_error: PersistenceError | None = None
    for candidate in candidates:
        try:
            envelope = _load_envelope(candidate)
        except PersistenceError as exc:
            if primary_error is None:
                primary_error = exc
            continue
        if candidate is not path:
            warnings.warn(
                f"index file {path} is unreadable ({primary_error}); "
                f"fell back to rotated snapshot {candidate}",
                RuntimeWarning,
                stacklevel=3,
            )
        return envelope, candidate
    assert primary_error is not None
    raise primary_error


class SearcherBundle:
    """A loaded (or freshly built) searcher plus its document collection.

    The unit the serving and facade layers pass around: the query
    engine, the collection needed to encode text queries against it,
    and provenance (source path, load time).  Unpacks as the historical
    ``(searcher, data)`` tuple, so pre-1.1 callers of
    :func:`load_bundle` keep working unchanged.
    """

    __slots__ = ("searcher", "data", "path", "load_seconds")

    def __init__(
        self,
        searcher,
        data=None,
        path: Path | None = None,
        load_seconds: float = 0.0,
    ) -> None:
        #: The query engine (a :class:`~repro.PKWiseSearcher` for files
        #: written by :func:`save_searcher`).
        self.searcher = searcher
        #: The bundled :class:`~repro.DocumentCollection`, or None for
        #: ids-only index files.
        self.data = data
        #: Source file, or None when built in memory.
        self.path = path
        #: Wall-clock seconds spent deserializing (0.0 in memory).
        self.load_seconds = load_seconds

    # Legacy tuple shape: ``searcher, data = load_bundle(path)``.
    def __iter__(self):
        yield self.searcher
        yield self.data

    @property
    def params(self):
        """The searcher's :class:`~repro.SearchParams`."""
        return self.searcher.params

    def encode_query(self, text: str, name: str | None = None):
        """Tokenize ``text`` against the bundled collection's vocabulary."""
        if self.data is None:
            raise PersistenceError(
                "bundle has no document collection (saved ids-only); "
                "rebuild the index with its data to encode text queries"
            )
        return self.data.encode_query(text, name=name)

    def search(self, query):
        """Delegate to the searcher (single query)."""
        return self.searcher.search(query)

    def search_text(self, text: str):
        """Encode ``text`` and search it in one step."""
        return self.searcher.search(self.encode_query(text))

    def search_many(self, queries, *, jobs: int = 1):
        """Delegate to the searcher (workload run)."""
        return self.searcher.search_many(queries, jobs=jobs)

    def serve(self, **kwargs):
        """Wrap this bundle in a :class:`~repro.service.SearchService`.

        Keyword arguments are forwarded (``max_workers``, ``max_queue``,
        ``cache_size``, ``default_timeout`` ...).
        """
        from .service import SearchService

        return SearchService(self.searcher, self.data, **kwargs)

    def close(self) -> None:
        """Release the searcher's resources."""
        self.searcher.close()

    def __enter__(self) -> "SearcherBundle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        source = str(self.path) if self.path is not None else "<memory>"
        return (
            f"SearcherBundle({type(self.searcher).__name__}, "
            f"data={'yes' if self.data is not None else 'no'}, "
            f"source={source})"
        )


def load_searcher(path: str | Path, *, fallback: bool = True) -> PKWiseSearcher:
    """Load a searcher saved by :func:`save_searcher`.

    With ``fallback=True`` (default) a corrupt or missing primary file
    falls back to the newest intact rotated snapshot (``path.1``,
    ``path.2``, ...) when one exists, warning about the substitution.

    SECURITY: this unpickles the file — only load files you (or your
    pipeline) wrote.
    """
    if not fallback:
        return _load_envelope(Path(path))["searcher"]
    envelope, _source = _load_with_fallback(Path(path))
    return envelope["searcher"]


def load_bundle(path: str | Path, *, fallback: bool = True) -> SearcherBundle:
    """Load a :class:`SearcherBundle` from ``path``.

    Still unpacks as the pre-1.1 ``(searcher, data)`` tuple; ``data``
    is None for ids-only files.  ``fallback`` as in
    :func:`load_searcher`; the bundle's ``path`` records the file that
    actually loaded (the rotated sibling after a fallback).  Same
    pickle caveat as :func:`load_searcher`.
    """
    path = Path(path)
    start = time.perf_counter()
    if fallback:
        envelope, source = _load_with_fallback(path)
    else:
        envelope, source = _load_envelope(path), path
    return SearcherBundle(
        envelope["searcher"],
        envelope.get("data"),
        path=source,
        load_seconds=time.perf_counter() - start,
    )
