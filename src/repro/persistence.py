"""Saving and loading built searchers.

Index construction (and especially greedy partitioning) is the
expensive, offline part of the pipeline; production deployments build
once and serve many queries.  This module persists a fully built
:class:`~repro.PKWiseSearcher` — interval index, partition scheme,
global order and rank-converted documents — to a single file.

Two on-disk layouts share one loader surface:

* **Format v2** — Python pickle sections wrapped in a small versioned
  envelope whose every section carries a BLAKE2b payload digest, so a
  flipped bit on disk surfaces as a typed :class:`PersistenceError`
  naming the corrupt section — never a pickle error or silently wrong
  data.  Pickle is appropriate here because an index file is a local
  artifact produced by the same trust domain that loads it; never load
  index files from untrusted sources (the standard pickle caveat,
  restated in :func:`load_searcher`).
* **Format v3** (``save_searcher(..., compact=True)``) — the compact
  array-backed searcher: a 16-byte magic, an 8-byte little-endian TOC
  length, a pickled TOC, then each section's raw bytes at a 64-byte
  aligned offset.  Small sections (params/order/scheme/data) are still
  pickled; the index and rank columns are stored as raw typed arrays,
  so ``load_bundle(path, mmap=True)`` maps them with ``mmap`` +
  ``np.frombuffer`` without copying — workers sharing one snapshot
  share one page cache.  Every section (pickled or raw) keeps the v2
  per-section BLAKE2b digest contract.

:func:`save_searcher` can additionally keep rotated snapshot
generations (``index.idx.1``, ``index.idx.2``, ...); the loaders fall
back to the newest intact generation when the primary is corrupt, so a
crash mid-deploy never leaves serving without an index.

The checksummed envelope is generic (:func:`write_envelope` /
:func:`read_envelope`) and is shared by the parallel executor's run
checkpoints (:mod:`repro.parallel.checkpoint`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import warnings
from pathlib import Path

from . import faults
from .core.pkwise import PKWiseSearcher
from .errors import ReproError

#: Bumped whenever the on-disk layout changes incompatibly.
#: Version 2 added per-section BLAKE2b digests and the ``kind`` field.
FORMAT_VERSION = 2
#: The compact/mmap-able layout written by ``save_searcher(compact=True)``.
FORMAT_VERSION_V3 = 3
_MAGIC = "repro-envelope"
_MAGIC_V1 = "repro-pkwise-index"
_MAGIC_V3 = b"repro-envelope-3"  # exactly 16 bytes
_V3_HEAD_SIZE = len(_MAGIC_V3) + 8  # magic + TOC length
_V3_ALIGN = 64
_INDEX_KIND = "pkwise-index"
_DIGEST_SIZE = 16


class PersistenceError(ReproError):
    """The file is missing, corrupt, or from another format version."""


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()


def _atomic_write(path: Path, serialize) -> None:
    """Write through a unique temp file, fsync, rename over ``path``.

    ``serialize(handle)`` does the actual dump; concurrent writers to
    the same ``path`` never clobber each other's half-written bytes and
    a failed dump leaves no temp file behind.
    """
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    temp_path = Path(temp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            serialize(handle)
            handle.flush()
            os.fsync(handle.fileno())
        temp_path.replace(path)
    finally:
        temp_path.unlink(missing_ok=True)


def write_envelope(
    path: str | Path, kind: str, sections: dict, header: dict | None = None
) -> None:
    """Atomically write a checksummed envelope of pickled ``sections``.

    Each section value is pickled independently and stored next to the
    BLAKE2b digest of its bytes; ``header`` is a small plain-data dict
    readable without touching any section payload.  ``kind`` names the
    envelope's schema (index file, workload checkpoint, ...) and is
    verified on read.
    """
    path = Path(path)
    packed: dict[str, bytes] = {}
    digests: dict[str, str] = {}
    for name, obj in sections.items():
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        blob = faults.inject_bytes("persistence.write", blob, section=name, kind=kind)
        packed[name] = blob
        digests[name] = _digest(blob)
    envelope = {
        "magic": _MAGIC,
        "version": FORMAT_VERSION,
        "kind": kind,
        "header": dict(header or {}),
        "sections": packed,
        "digests": digests,
    }
    _atomic_write(
        path,
        lambda handle: pickle.dump(
            envelope, handle, protocol=pickle.HIGHEST_PROTOCOL
        ),
    )


def read_envelope(path: str | Path, kind: str) -> tuple[dict, dict]:
    """Load ``(header, sections)`` from a checksummed envelope.

    Every failure mode is a typed :class:`PersistenceError`: missing
    file, unreadable outer frame, wrong magic/kind, old format version,
    and — checked before any section is unpickled — a section whose
    bytes no longer match their recorded digest (the error names the
    corrupt section).
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"{kind} file {path} does not exist")
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError,
            IndexError, MemoryError) as exc:
        raise PersistenceError(f"cannot read {kind} file {path}: {exc}") from exc
    if not isinstance(envelope, dict):
        raise PersistenceError(f"{path} is not a repro {kind} file")
    magic = envelope.get("magic")
    if magic == _MAGIC_V1:
        raise PersistenceError(
            f"{path} has format version 1; this build reads version "
            f"{FORMAT_VERSION} — rebuild the file"
        )
    if magic != _MAGIC:
        raise PersistenceError(f"{path} is not a repro {kind} file")
    version = envelope.get("version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"{kind} file {path} has format version {version}; this build "
            f"reads version {FORMAT_VERSION} — rebuild the file"
        )
    if envelope.get("kind") != kind:
        raise PersistenceError(
            f"{path} is a {envelope.get('kind')!r} envelope, not {kind!r}"
        )
    packed = envelope.get("sections")
    digests = envelope.get("digests")
    if not isinstance(packed, dict) or not isinstance(digests, dict):
        raise PersistenceError(f"{kind} file {path} has a malformed envelope")
    sections: dict = {}
    for name, blob in packed.items():
        blob = faults.inject_bytes("persistence.read", blob, section=name, kind=kind)
        if _digest(blob) != digests.get(name):
            raise PersistenceError(
                f"{kind} file {path}: section {name!r} is corrupt "
                f"(payload checksum mismatch) — restore from a snapshot "
                f"or rebuild"
            )
        try:
            sections[name] = pickle.loads(blob)
        except Exception as exc:  # digest matched but payload won't load
            raise PersistenceError(
                f"{kind} file {path}: section {name!r} cannot be "
                f"deserialized: {exc}"
            ) from exc
    return envelope.get("header", {}), sections


def _align_v3(offset: int) -> int:
    return (offset + _V3_ALIGN - 1) // _V3_ALIGN * _V3_ALIGN


def write_envelope_v3(
    path: str | Path,
    kind: str,
    sections: dict,
    arrays: dict,
    header: dict | None = None,
) -> None:
    """Atomically write a format-v3 envelope (pickled + raw sections).

    ``sections`` values are pickled; ``arrays`` values are numpy arrays
    stored as raw bytes at 64-byte-aligned offsets (dtype and shape
    recorded in the TOC) so readers can map them zero-copy.  Every
    payload — pickled or raw — carries a BLAKE2b digest in the TOC.
    """
    import numpy as np

    path = Path(path)
    toc: dict = {
        "version": FORMAT_VERSION_V3,
        "kind": kind,
        "header": dict(header or {}),
        "pickled": {},
        "arrays": {},
    }
    entries: list[tuple[int, bytes]] = []
    rel = 0
    for name, obj in sections.items():
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        blob = faults.inject_bytes("persistence.write", blob, section=name, kind=kind)
        rel = _align_v3(rel)
        toc["pickled"][name] = {
            "offset": rel,
            "length": len(blob),
            "digest": _digest(blob),
        }
        entries.append((rel, blob))
        rel += len(blob)
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        blob = array.tobytes()
        blob = faults.inject_bytes("persistence.write", blob, section=name, kind=kind)
        rel = _align_v3(rel)
        toc["arrays"][name] = {
            "offset": rel,
            "length": len(blob),
            "digest": _digest(blob),
            "dtype": array.dtype.str,
            "shape": tuple(array.shape),
        }
        entries.append((rel, blob))
        rel += len(blob)
    toc_bytes = pickle.dumps(toc, protocol=pickle.HIGHEST_PROTOCOL)
    data_start = _align_v3(_V3_HEAD_SIZE + len(toc_bytes))

    def serialize(handle) -> None:
        handle.write(_MAGIC_V3)
        handle.write(len(toc_bytes).to_bytes(8, "little"))
        handle.write(toc_bytes)
        position = _V3_HEAD_SIZE + len(toc_bytes)
        for rel_offset, blob in entries:
            target = data_start + rel_offset
            if target > position:
                handle.write(b"\x00" * (target - position))
            handle.write(blob)
            position = target + len(blob)

    _atomic_write(path, serialize)


def is_v3_file(path: str | Path) -> bool:
    """True when ``path`` exists and starts with the format-v3 magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(_MAGIC_V3)) == _MAGIC_V3
    except OSError:
        return False


def read_envelope_v3(
    path: str | Path, kind: str, *, mmap: bool = False
) -> tuple[dict, dict, dict]:
    """Load ``(header, sections, arrays)`` from a format-v3 envelope.

    With ``mmap=True`` the file is memory-mapped and every array in
    ``arrays`` is a read-only view into the mapping (zero copy); the
    mapping stays alive for as long as any returned array does (numpy
    holds the buffer via ``.base``).  With ``mmap=False`` the file is
    read once into memory and arrays view that buffer.  In both modes
    every section's bytes are verified against their recorded BLAKE2b
    digest before use, and all failure modes raise a typed
    :class:`PersistenceError` naming the corrupt section.
    """
    import mmap as mmap_module

    import numpy as np

    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"{kind} file {path} does not exist")
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC_V3))
        if magic != _MAGIC_V3:
            raise PersistenceError(f"{path} is not a format-v3 {kind} envelope")
        try:
            toc_length = int.from_bytes(handle.read(8), "little")
            toc_bytes = handle.read(toc_length)
            toc = pickle.loads(toc_bytes)
        except Exception as exc:
            raise PersistenceError(
                f"cannot read {kind} file {path}: malformed v3 TOC: {exc}"
            ) from exc
        if not isinstance(toc, dict) or toc.get("version") != FORMAT_VERSION_V3:
            raise PersistenceError(f"{kind} file {path} has a malformed v3 TOC")
        if toc.get("kind") != kind:
            raise PersistenceError(
                f"{path} is a {toc.get('kind')!r} envelope, not {kind!r}"
            )
        data_start = _align_v3(_V3_HEAD_SIZE + toc_length)
        if mmap:
            mapping = mmap_module.mmap(
                handle.fileno(), 0, access=mmap_module.ACCESS_READ
            )
            buffer: memoryview | bytes = memoryview(mapping)
        else:
            handle.seek(0)
            buffer = handle.read()
        if len(buffer) < data_start:
            raise PersistenceError(f"{kind} file {path} is truncated")
    sections: dict = {}
    for name, entry in toc.get("pickled", {}).items():
        start = data_start + entry["offset"]
        blob = bytes(buffer[start : start + entry["length"]])
        blob = faults.inject_bytes("persistence.read", blob, section=name, kind=kind)
        if _digest(blob) != entry.get("digest"):
            raise PersistenceError(
                f"{kind} file {path}: section {name!r} is corrupt "
                f"(payload checksum mismatch) — restore from a snapshot "
                f"or rebuild"
            )
        try:
            sections[name] = pickle.loads(blob)
        except Exception as exc:
            raise PersistenceError(
                f"{kind} file {path}: section {name!r} cannot be "
                f"deserialized: {exc}"
            ) from exc
    arrays: dict = {}
    for name, entry in toc.get("arrays", {}).items():
        start = data_start + entry["offset"]
        end = start + entry["length"]
        if end > len(buffer):
            raise PersistenceError(
                f"{kind} file {path}: section {name!r} is truncated"
            )
        if _digest(buffer[start:end]) != entry.get("digest"):
            raise PersistenceError(
                f"{kind} file {path}: section {name!r} is corrupt "
                f"(payload checksum mismatch) — restore from a snapshot "
                f"or rebuild"
            )
        dtype = np.dtype(entry["dtype"])
        arrays[name] = np.frombuffer(
            buffer, dtype=dtype, count=entry["length"] // dtype.itemsize,
            offset=start,
        ).reshape(entry["shape"])
    return toc.get("header", {}), sections, arrays


def rotated_paths(path: str | Path, generations: int) -> list[Path]:
    """``[path.1, path.2, ...]`` up to ``generations`` entries."""
    path = Path(path)
    return [
        path.with_name(f"{path.name}.{generation}")
        for generation in range(1, generations + 1)
    ]


def generation_name(stem: str, generation: int, suffix: str = ".idx") -> str:
    """Canonical file name for snapshot ``generation`` of ``stem``.

    Sharded serving writes each shard generation to its own immutable
    file (``shard-003.g000002.idx``) instead of rotating one path in
    place: a rolling swap maps the new generation while the old one is
    still being served, then drops the old mapping.  Zero-padding keeps
    lexicographic and numeric order identical for directory listings.
    """
    if generation < 1:
        raise ValueError(f"generation must be >= 1, got {generation}")
    return f"{stem}.g{generation:06d}{suffix}"


def _rotate_snapshots(path: Path, keep: int) -> None:
    """Shift ``path`` → ``path.1`` → ... → ``path.keep`` (drop oldest)."""
    if keep < 1 or not path.exists():
        return
    generations = rotated_paths(path, keep)
    if generations[-1].exists():
        generations[-1].unlink()
    for older, newer in zip(reversed(generations[1:]), reversed(generations[:-1])):
        if newer.exists():
            newer.replace(older)
    path.replace(generations[0])


def _params_header(searcher: PKWiseSearcher) -> dict:
    return {
        "params": {
            "w": searcher.params.w,
            "tau": searcher.params.tau,
            "k_max": searcher.params.k_max,
            "m": searcher.params.m,
        },
    }


def save_searcher(
    searcher: PKWiseSearcher,
    path: str | Path,
    data=None,
    *,
    rotate: int = 0,
    compact: bool = False,
) -> None:
    """Serialize a built searcher to ``path`` (atomic via temp file).

    Pass the :class:`~repro.DocumentCollection` as ``data`` to bundle
    the original documents (needed to decode matches back to text, e.g.
    by the CLI); omit it for a leaner, ids-only index file.

    ``rotate=N`` keeps the previous N snapshot generations as
    ``path.1`` (newest) through ``path.N`` (oldest) before writing the
    new file; the loaders automatically fall back to the newest intact
    generation when the primary fails its checksum.

    ``compact=True`` writes the format-v3 compact snapshot instead of
    the v2 pickle: the searcher is frozen
    (:meth:`~repro.PKWiseSearcher.compacted`) and its index/rank
    columns stored as raw typed arrays, which loads ~an order of
    magnitude faster and supports ``load_bundle(path, mmap=True)``.
    Only :class:`~repro.PKWiseSearcher` supports compaction.
    """
    path = Path(path)
    if rotate:
        _rotate_snapshots(path, rotate)
    if not compact:
        write_envelope(
            path,
            _INDEX_KIND,
            {"searcher": searcher, "data": data},
            header=_params_header(searcher),
        )
        return
    if not isinstance(searcher, PKWiseSearcher):
        raise PersistenceError(
            f"compact snapshots require a PKWiseSearcher, "
            f"got {type(searcher).__name__}"
        )
    frozen = searcher.compacted()
    index_meta, index_arrays = frozen.index.to_arrays()
    rank_arrays = frozen.rank_docs.to_arrays()
    meta = {
        "params": frozen.params,
        "index": index_meta,
        "removed": sorted(frozen._removed),
        "index_epoch": frozen.index_epoch,
        "build_seconds": frozen.index_build_seconds,
    }
    arrays = {f"index.{name}": array for name, array in index_arrays.items()}
    arrays.update({f"ranks.{name}": array for name, array in rank_arrays.items()})
    routing = getattr(frozen.params, "routing", None)
    if routing is not None and routing.enabled:
        # Fingerprints ride in their own v3 section so reopened
        # snapshots (and the shard workers mmapping them) route without
        # decoding a single rank column.
        tier = frozen.routing_fingerprints()
        meta["routing"] = tier.describe()
        arrays.update(
            {f"routing.{name}": array for name, array in tier.to_arrays().items()}
        )
    write_envelope_v3(
        path,
        _INDEX_KIND,
        {
            "meta": meta,
            "order": frozen.order,
            "scheme": frozen.scheme,
            "data": data,
        },
        arrays,
        header=_params_header(searcher),
    )


def _load_envelope_v2(path: Path) -> dict:
    header, sections = read_envelope(path, _INDEX_KIND)
    searcher = sections.get("searcher")
    if not isinstance(searcher, PKWiseSearcher):
        raise PersistenceError(f"{path} does not contain a PKWiseSearcher")
    return {
        "params": header.get("params", {}),
        "searcher": searcher,
        "data": sections.get("data"),
    }


def _load_envelope_v3(path: Path, *, mmap: bool = False) -> dict:
    from .index.compact import CompactIntervalIndex, PackedRankDocs

    header, sections, arrays = read_envelope_v3(path, _INDEX_KIND, mmap=mmap)
    meta = sections.get("meta")
    if not isinstance(meta, dict):
        raise PersistenceError(f"{path} does not contain a compact searcher")
    try:
        index = CompactIntervalIndex.from_arrays(
            meta["index"],
            sections["scheme"],
            {
                name.partition(".")[2]: array
                for name, array in arrays.items()
                if name.startswith("index.")
            },
        )
        rank_docs = PackedRankDocs.from_arrays(
            {
                name.partition(".")[2]: array
                for name, array in arrays.items()
                if name.startswith("ranks.")
            }
        )
        routing_meta = meta.get("routing")
        if routing_meta is not None:
            from .routing import FingerprintTier

            routing_tier = FingerprintTier.from_arrays(
                {
                    name.partition(".")[2]: array
                    for name, array in arrays.items()
                    if name.startswith("routing.")
                },
                block_len=routing_meta["block_len"],
                bands=routing_meta["bands"],
                doc_lo=routing_meta.get("doc_lo", 0),
            )
        else:
            # Saved without fingerprints: a routed query against this
            # snapshot raises RoutingUnavailableError instead of
            # silently decoding every rank column to build them.
            routing_tier = None
        searcher = PKWiseSearcher.from_prebuilt(
            meta["params"],
            sections["order"],
            sections["scheme"],
            index,
            rank_docs,
            build_seconds=meta.get("build_seconds", 0.0),
            removed=meta.get("removed", ()),
            index_epoch=meta.get("index_epoch", 0),
            routing_tier=routing_tier,
        )
    except KeyError as exc:
        raise PersistenceError(
            f"{path}: compact snapshot is missing section {exc}"
        ) from exc
    return {
        "params": header.get("params", {}),
        "searcher": searcher,
        "data": sections.get("data"),
    }


def _load_envelope(path: Path, *, mmap: bool = False) -> dict:
    """Load ``path`` whichever format version it carries.

    ``mmap=True`` requires a format-v3 compact snapshot — a v2 pickle
    cannot be mapped, so asking for it is a typed error rather than a
    silent full deserialization.
    """
    if is_v3_file(path):
        return _load_envelope_v3(path, mmap=mmap)
    if mmap:
        raise PersistenceError(
            f"{path} is not a format-v3 compact snapshot; mmap loading "
            f"requires one (save with compact=True / repro index --compact)"
        )
    return _load_envelope_v2(path)


def _load_with_fallback(path: Path, *, mmap: bool = False) -> tuple[dict, Path]:
    """Load ``path`` or, on failure, the newest intact rotated snapshot.

    Candidates are the primary plus every existing ``path.N`` sibling in
    generation order (newest first).  The primary's error is re-raised
    when no candidate loads; a successful fallback emits a
    :class:`RuntimeWarning` naming both files.
    """
    candidates = [path]
    generation = 1
    while True:
        sibling = path.with_name(f"{path.name}.{generation}")
        if not sibling.exists():
            break
        candidates.append(sibling)
        generation += 1
    primary_error: PersistenceError | None = None
    for candidate in candidates:
        try:
            envelope = _load_envelope(candidate, mmap=mmap)
        except PersistenceError as exc:
            if primary_error is None:
                primary_error = exc
            continue
        if candidate is not path:
            warnings.warn(
                f"index file {path} is unreadable ({primary_error}); "
                f"fell back to rotated snapshot {candidate}",
                RuntimeWarning,
                stacklevel=3,
            )
        return envelope, candidate
    assert primary_error is not None
    raise primary_error


class SearcherBundle:
    """A loaded (or freshly built) searcher plus its document collection.

    The unit the serving and facade layers pass around: the query
    engine, the collection needed to encode text queries against it,
    and provenance (source path, load time).

    .. deprecated:: 1.2
        The historical ``(searcher, data)`` tuple unpack
        (``searcher, data = bundle``) emits a ``DeprecationWarning``
        and will be removed in 2.0 — read ``bundle.searcher`` /
        ``bundle.data`` instead.
    """

    __slots__ = ("searcher", "data", "path", "load_seconds")

    def __init__(
        self,
        searcher,
        data=None,
        path: Path | None = None,
        load_seconds: float = 0.0,
    ) -> None:
        #: The query engine (a :class:`~repro.PKWiseSearcher` for files
        #: written by :func:`save_searcher`).
        self.searcher = searcher
        #: The bundled :class:`~repro.DocumentCollection`, or None for
        #: ids-only index files.
        self.data = data
        #: Source file, or None when built in memory.
        self.path = path
        #: Wall-clock seconds spent deserializing (0.0 in memory).
        self.load_seconds = load_seconds

    # Legacy tuple shape: ``searcher, data = load_bundle(path)``.
    def __iter__(self):
        warnings.warn(
            "unpacking a SearcherBundle as a (searcher, data) tuple is "
            "deprecated and will be removed in 2.0; use bundle.searcher "
            "and bundle.data",
            DeprecationWarning,
            stacklevel=2,
        )
        yield self.searcher
        yield self.data

    @property
    def params(self):
        """The searcher's :class:`~repro.SearchParams`."""
        return self.searcher.params

    def encode_query(self, text: str, name: str | None = None):
        """Tokenize ``text`` against the bundled collection's vocabulary."""
        if self.data is None:
            raise PersistenceError(
                "bundle has no document collection (saved ids-only); "
                "rebuild the index with its data to encode text queries"
            )
        return self.data.encode_query(text, name=name)

    def search(self, query):
        """Delegate to the searcher (single query)."""
        return self.searcher.search(query)

    def search_text(self, text: str):
        """Encode ``text`` and search it in one step."""
        return self.searcher.search(self.encode_query(text))

    def search_many(self, queries, *, jobs: int = 1):
        """Delegate to the searcher (workload run)."""
        return self.searcher.search_many(queries, jobs=jobs)

    def serve(self, **kwargs):
        """Wrap this bundle in a :class:`~repro.service.SearchService`.

        Keyword arguments are forwarded (``max_workers``, ``max_queue``,
        ``cache_size``, ``default_timeout`` ...).
        """
        from .service import SearchService

        return SearchService(self.searcher, self.data, **kwargs)

    def close(self) -> None:
        """Release the searcher's resources."""
        self.searcher.close()

    def __enter__(self) -> "SearcherBundle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        source = str(self.path) if self.path is not None else "<memory>"
        return (
            f"SearcherBundle({type(self.searcher).__name__}, "
            f"data={'yes' if self.data is not None else 'no'}, "
            f"source={source})"
        )


def load_searcher(
    path: str | Path, *, fallback: bool = True, mmap: bool = False
) -> PKWiseSearcher:
    """Load a searcher saved by :func:`save_searcher` (either format).

    With ``fallback=True`` (default) a corrupt or missing primary file
    falls back to the newest intact rotated snapshot (``path.1``,
    ``path.2``, ...) when one exists, warning about the substitution.
    ``mmap=True`` memory-maps a format-v3 compact snapshot's array
    columns instead of copying them (typed error on a v2 file).

    SECURITY: this unpickles (parts of) the file — only load files you
    (or your pipeline) wrote.
    """
    if not fallback:
        return _load_envelope(Path(path), mmap=mmap)["searcher"]
    envelope, _source = _load_with_fallback(Path(path), mmap=mmap)
    return envelope["searcher"]


def load_bundle(
    path: str | Path, *, fallback: bool = True, mmap: bool = False
) -> SearcherBundle:
    """Load a :class:`SearcherBundle` from ``path`` (either format).

    ``data`` is None for ids-only files.  ``fallback`` and ``mmap`` as
    in :func:`load_searcher`; the bundle's ``path`` records the file
    that actually loaded (the rotated sibling after a fallback).  Same
    pickle caveat as :func:`load_searcher`.
    """
    path = Path(path)
    start = time.perf_counter()
    if fallback:
        envelope, source = _load_with_fallback(path, mmap=mmap)
    else:
        envelope, source = _load_envelope(path, mmap=mmap), path
    return SearcherBundle(
        envelope["searcher"],
        envelope.get("data"),
        path=source,
        load_seconds=time.perf_counter() - start,
    )
