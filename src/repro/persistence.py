"""Saving and loading built searchers.

Index construction (and especially greedy partitioning) is the
expensive, offline part of the pipeline; production deployments build
once and serve many queries.  This module persists a fully built
:class:`~repro.PKWiseSearcher` — interval index, partition scheme,
global order and rank-converted documents — to a single file.

Format: Python pickle wrapped in a small versioned envelope.  Pickle is
appropriate here because an index file is a local artifact produced by
the same trust domain that loads it; never load index files from
untrusted sources (the standard pickle caveat, restated in
:func:`load_searcher`).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

from .core.pkwise import PKWiseSearcher
from .errors import ReproError

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1
_MAGIC = "repro-pkwise-index"


class PersistenceError(ReproError):
    """The index file is missing, corrupt, or from another version."""


def save_searcher(
    searcher: PKWiseSearcher, path: str | Path, data=None
) -> None:
    """Serialize a built searcher to ``path`` (atomic via temp file).

    Pass the :class:`~repro.DocumentCollection` as ``data`` to bundle
    the original documents (needed to decode matches back to text, e.g.
    by the CLI); omit it for a leaner, ids-only index file.

    The write goes through a uniquely named temp file in the target
    directory (so concurrent writers to the same ``path`` never clobber
    each other's half-written bytes), is fsynced, and is renamed over
    ``path`` only on success; a failed dump leaves no temp file behind.
    """
    path = Path(path)
    envelope = {
        "magic": _MAGIC,
        "version": FORMAT_VERSION,
        "params": {
            "w": searcher.params.w,
            "tau": searcher.params.tau,
            "k_max": searcher.params.k_max,
            "m": searcher.params.m,
        },
        "searcher": searcher,
        "data": data,
    }
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    temp_path = Path(temp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        temp_path.replace(path)
    finally:
        temp_path.unlink(missing_ok=True)


def _load_envelope(path: Path) -> dict:
    if not path.exists():
        raise PersistenceError(f"index file {path} does not exist")
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise PersistenceError(f"cannot read index file {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("magic") != _MAGIC:
        raise PersistenceError(f"{path} is not a repro index file")
    version = envelope.get("version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"index file {path} has format version {version}; this build "
            f"reads version {FORMAT_VERSION} — rebuild the index"
        )
    if not isinstance(envelope.get("searcher"), PKWiseSearcher):
        raise PersistenceError(f"{path} does not contain a PKWiseSearcher")
    return envelope


def load_searcher(path: str | Path) -> PKWiseSearcher:
    """Load a searcher saved by :func:`save_searcher`.

    SECURITY: this unpickles the file — only load files you (or your
    pipeline) wrote.
    """
    return _load_envelope(Path(path))["searcher"]


def load_bundle(path: str | Path):
    """Load ``(searcher, data)``; ``data`` is None for ids-only files."""
    envelope = _load_envelope(Path(path))
    return envelope["searcher"], envelope.get("data")
