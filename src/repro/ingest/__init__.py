"""repro.ingest: LSM-style streaming ingestion.

The write path of the library.  Writes land in a mutable dict-backed
memtable (:mod:`~repro.ingest.memtable`), queries fan out over
memtable + frozen compact segments with exact merged results
(:mod:`~repro.ingest.tiered`, :mod:`~repro.ingest.searcher`), and a
background compactor folds sealed memtables and tombstones into new
compact segments behind a persisted manifest
(:mod:`~repro.ingest.store`, :mod:`~repro.ingest.manifest`), installing
each new tier snapshot through the serving layer's epoch-monotone
searcher swap so serving never stops.  A write-ahead token log
(:mod:`~repro.ingest.wal`) makes acknowledged mutations crash-safe.

Most callers never touch this package directly: ``Index.add`` /
``Index.remove`` / ``Index.flush`` / ``Index.compact`` (and the
mutation methods of :class:`~repro.service.SearchService`) are backed
by an :class:`IngestStore` transparently.  Use the store directly for
durable streaming ingestion (``IngestStore.create(directory=...)`` /
``IngestStore.open``), which is what ``repro ingest`` and
``repro serve --live`` do.
"""

from .manifest import ManifestState, read_manifest, write_manifest
from .memtable import Memtable
from .searcher import LSMSearcher
from .store import CompactionPolicy, IngestStore
from .tiered import Tier, TieredIntervalIndex, TieredRankDocs
from .wal import WriteAheadLog, read_wal, wal_generations, wal_name

__all__ = [
    "CompactionPolicy",
    "IngestStore",
    "LSMSearcher",
    "ManifestState",
    "Memtable",
    "Tier",
    "TieredIntervalIndex",
    "TieredRankDocs",
    "WriteAheadLog",
    "read_manifest",
    "read_wal",
    "wal_generations",
    "wal_name",
    "write_manifest",
]
