"""The searcher view over an LSM ingest store.

An :class:`LSMSearcher` is an immutable *tier snapshot*: it captures the
store's frozen tiers (segments + sealed memtables) and its active
memtable at install time, and satisfies the full
:class:`~repro.api.Searcher` protocol — the serving layer cannot tell it
from a plain :class:`~repro.PKWiseSearcher`.  The store installs a fresh
view whenever tier membership changes (seal, flush, compaction), via
:meth:`~repro.service.SearchService.swap_searcher` when attached to a
service; adds into the active memtable and tombstones are visible
through the *current* view immediately, with no reinstall.

Search runs as two sub-searches whose result spaces are disjoint by
construction (frozen tiers cover doc ids ``[0, seal_hi)``, the active
memtable ``[seal_hi, ...)``):

* the **frozen part** fans out over segments + sealed memtables and is
  cached in the store's segment cache under a key carrying the
  *segment-generation epoch vector* ``(tombstone_epoch, gen_1, ...,
  gen_k)`` — a memtable insert does not touch the vector, so frozen
  results stay warm across a write stream and only removals or tier
  changes invalidate them;
* the **memtable part** runs fresh every time (it is small — that is
  the point of a memtable).

Concatenating the two canonical pair lists yields the globally
canonical order, because every frozen doc id precedes every memtable
doc id.
"""

from __future__ import annotations

from ..core.base import SearchResult, SearchStats
from ..core.pkwise import PKWiseSearcher
from ..errors import ConfigurationError
from ..eval.harness import canonical_pair_order
from ..service.cache import query_token_hash
from .tiered import TieredIntervalIndex, TieredRankDocs


class LSMSearcher(PKWiseSearcher):
    """Read view over one tier snapshot of an :class:`~repro.ingest.IngestStore`."""

    name = "pkwise-lsm"

    def __init__(self, store, frozen_tiers, active_tier) -> None:
        params = store.params
        self.params = params
        self.order = store.order
        self.scheme = store.scheme
        self.store = store
        self._frozen_tiers = tuple(frozen_tiers)
        self._active_tier = active_tier
        all_tiers = self._frozen_tiers + (active_tier,)
        self.index = TieredIntervalIndex(
            all_tiers, params.w, params.tau, store.scheme
        )
        self.rank_docs = TieredRankDocs(all_tiers)
        #: Shared with the store — removals are visible to every view.
        self._removed = store.removed
        self.index_build_seconds = 0.0
        self.build_worker_reports = []
        self._params_key = repr(params)
        if self._frozen_tiers:
            self._frozen_view = PKWiseSearcher.from_prebuilt(
                params,
                store.order,
                store.scheme,
                TieredIntervalIndex(
                    self._frozen_tiers, params.w, params.tau, store.scheme
                ),
                TieredRankDocs(self._frozen_tiers),
            )
            self._frozen_view._removed = store.removed
        else:
            self._frozen_view = None
        self._memtable_view = PKWiseSearcher.from_prebuilt(
            params,
            store.order,
            store.scheme,
            TieredIntervalIndex((active_tier,), params.w, params.tau, store.scheme),
            TieredRankDocs((active_tier,)),
            routing_tier=(
                active_tier.fingerprints
                if active_tier.fingerprints is not None
                else "auto"
            ),
        )
        self._memtable_view._removed = store.removed
        #: Frozen-tier component of the epoch vector (tier generations
        #: are fixed per view; the tombstone epoch is read per search).
        self._frozen_generations = tuple(
            tier.generation for tier in self._frozen_tiers
        )

    # -- epochs ---------------------------------------------------------
    @property
    def index_epoch(self) -> int:
        """The store's mutation counter (service-level cache epoch)."""
        return self.store.mutation_epoch

    def frozen_epoch_vector(self) -> tuple:
        """Epoch vector keying the segment cache for this view.

        ``(tombstone_epoch, gen_1, ..., gen_k)`` — lexicographically
        monotone across the store's lifetime: removes bump the leading
        element, a seal appends a strictly higher generation, and a
        fold replaces generations with one strictly higher than any it
        consumed.  Monotonicity is what lets
        :meth:`~repro.service.cache.ResultCache.put` purge stale
        entries with its ordinary ``<`` comparison.
        """
        return (self.store.tombstone_epoch,) + self._frozen_generations

    @property
    def frozen(self) -> bool:
        """Never frozen: writes land in the store's active memtable."""
        return False

    # -- search ---------------------------------------------------------
    def _search(self, query, cancel=None, routing=None) -> SearchResult:
        stats = SearchStats()
        pairs: list = []
        policy = self.params.routing if routing is None else routing
        frozen_view = self._frozen_view
        if frozen_view is not None:
            cache = self.store.segment_cache
            key = (
                query_token_hash(query.tokens),
                self._params_key if routing is None
                else (self._params_key, repr(routing)),
                self.frozen_epoch_vector(),
            )
            cached = cache.get(key)
            if cached is None:
                result = frozen_view._search(query, cancel, policy)
                cached = tuple(canonical_pair_order(list(result.pairs)))
                cache.put(key, cached)
                stats.merge(result.stats)
            pairs.extend(cached)
        if len(self._active_tier):
            result = self._memtable_view._search(query, cancel, policy)
            pairs.extend(canonical_pair_order(list(result.pairs)))
            stats.merge(result.stats)
        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)

    def search_many(self, queries, *, jobs: int = 1):
        if jobs != 1:
            raise ConfigurationError(
                "a live LSM searcher runs queries serially (its store is "
                "process-local); save a compact snapshot for parallel "
                "batch runs"
            )
        return super().search_many(queries, jobs=1)

    # -- mutation (routed through the store) ----------------------------
    def _add_document(self, document) -> int:
        return self.store.add_document(document)

    def _remove_document(self, doc_id: int) -> None:
        self.store.remove(doc_id)

    @property
    def removed_documents(self) -> frozenset:
        return frozenset(self.store.removed)

    # -- lifecycle ------------------------------------------------------
    def compacted(self) -> PKWiseSearcher:
        """A plain frozen searcher over every live document (all tiers)."""
        return self.store.compacted_searcher()

    def close(self) -> None:
        """Views are cheap and shared; closing the store is explicit
        (:meth:`~repro.ingest.IngestStore.close`)."""

    def __repr__(self) -> str:
        return (
            f"LSMSearcher({len(self._frozen_tiers)} frozen tiers, "
            f"memtable={len(self._active_tier)} docs, "
            f"epoch={self.index_epoch})"
        )
