"""Tiered index and rank-sequence views over memtables + segments.

The LSM store keeps the corpus as a sequence of tiers that tile the
global doc-id space contiguously: frozen compact segments first, then
any sealed (immutable) memtables, then the active memtable.  Each tier
indexes its documents under local ids; these views glue the tiers back
into the single-index shape the pkwise search kernel expects:

* :class:`TieredIntervalIndex` satisfies the ``probe``/``probe_many``
  contract of :class:`~repro.index.IntervalIndex`.  A batched probe
  fans out to every tier, offsets each tier's hit docs by its base, and
  merges the batches *signature-wise* with one stable argsort — entries
  for each probed signature come back grouped, ordered by tier base and
  within a tier in postings-append order, which is exactly the order a
  serial from-scratch build over the same documents would have stored
  (the parallel build's exact-merge argument, applied at probe time
  instead of merge time).
* :class:`TieredRankDocs` resolves a global doc id to its owning tier's
  rank sequence for verification.

Both are read-only views: tier *membership* only changes when the store
installs a new searcher snapshot, so a search that captured a view
never sees tiers appear or vanish mid-query.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

import numpy as np

from ..errors import IndexStateError
from ..index.intervals import ProbeBatch


class Tier:
    """One doc-id-contiguous slice of the corpus with its own index."""

    __slots__ = (
        "doc_lo", "_doc_hi", "generation", "index", "rank_docs", "kind",
        "path", "fingerprints",
    )

    def __init__(
        self, doc_lo, doc_hi, generation, index, rank_docs, kind, path=None,
        fingerprints=None,
    ) -> None:
        self.doc_lo = doc_lo
        #: ``None`` marks the active-memtable tier: its upper bound
        #: tracks the shared rank_docs list live, so adds are visible
        #: through already-installed views without a reinstall.
        self._doc_hi = doc_hi
        self.generation = generation
        #: ``probe_many``-capable index over local ids ``0..doc_hi-doc_lo-1``.
        self.index = index
        #: Local-id rank sequences (list of lists or PackedRankDocs).
        self.rank_docs = rank_docs
        #: ``"segment"`` (frozen compact) or ``"memtable"`` (dict).
        self.kind = kind
        #: Backing snapshot file for segments persisted to disk.
        self.path = path
        #: Routing :class:`~repro.routing.FingerprintTier` for this
        #: tier's doc range (the memtable's insert-maintained tier, or
        #: ``None`` — callers fall back to a lazily built one).
        self.fingerprints = fingerprints

    @property
    def doc_hi(self) -> int:
        """One past the highest global doc id this tier covers."""
        if self._doc_hi is not None:
            return self._doc_hi
        return self.doc_lo + len(self.rank_docs)

    def __len__(self) -> int:
        return self.doc_hi - self.doc_lo

    def __repr__(self) -> str:
        return (
            f"Tier({self.kind}[{self.doc_lo},{self.doc_hi}), "
            f"gen={self.generation})"
        )


class TieredIntervalIndex:
    """Probe-side fan-out over an ordered tuple of :class:`Tier`\\ s.

    Mutation goes through the store (which installs new views), never
    through this object — ``add_document`` raises like the frozen
    compact index does.
    """

    frozen = False

    def __init__(self, tiers: Sequence[Tier], w: int, tau: int, scheme) -> None:
        starts = [tier.doc_lo for tier in tiers]
        if starts != sorted(starts):
            raise IndexStateError("tiers must be ordered by doc_lo")
        self.tiers = tuple(tiers)
        self.w = w
        self.tau = tau
        self.scheme = scheme

    # -- probe contract -------------------------------------------------
    def probe(self, signature):
        """Scalar probe: concatenated per-tier postings, globally numbered."""
        hits = []
        for tier in self.tiers:
            for hit in tier.index.probe(signature):
                hits.append(type(hit)(hit[0] + tier.doc_lo, hit[1], hit[2]))
        return hits

    def probe_many(self, signatures, signs=None) -> ProbeBatch:
        """Batched probe across all tiers, merged signature-wise.

        Stable-sorting the concatenated entries by probed-signature
        index groups each signature's hits back together while
        preserving tier order (ascending ``doc_lo``) within a group —
        the append order of a serial single-index build.
        """
        batches: list[tuple[int, ProbeBatch]] = []
        for tier in self.tiers:
            batch = tier.index.probe_many(signatures, signs)
            if batch.entries:
                batches.append((tier.doc_lo, batch))
        if not batches:
            return ProbeBatch.empty(probed=len(signatures))
        if len(batches) == 1:
            doc_lo, batch = batches[0]
            if doc_lo == 0:
                return batch
            return ProbeBatch(
                batch.docs + doc_lo, batch.us, batch.vs,
                batch.signs, batch.sig_counts, batch.probed,
            )
        probed = batches[0][1].probed
        owners = np.concatenate(
            [
                np.repeat(np.arange(probed, dtype=np.int64), batch.sig_counts)
                for _lo, batch in batches
            ]
        )
        order = np.argsort(owners, kind="stable")
        docs = np.concatenate([batch.docs + lo for lo, batch in batches])[order]
        us = np.concatenate([batch.us for _lo, batch in batches])[order]
        vs = np.concatenate([batch.vs for _lo, batch in batches])[order]
        signs_column = np.concatenate([batch.signs for _lo, batch in batches])[order]
        sig_counts = batches[0][1].sig_counts.copy()
        for _lo, batch in batches[1:]:
            sig_counts = sig_counts + batch.sig_counts
        return ProbeBatch(docs, us, vs, signs_column, sig_counts, probed)

    def __contains__(self, signature) -> bool:
        return any(signature in tier.index for tier in self.tiers)

    # -- mutation is a store concern ------------------------------------
    def add_document(self, doc_id, ranks) -> None:
        raise IndexStateError(
            "a tiered LSM index is mutated through its IngestStore "
            "(Index.add / Index.remove), never directly"
        )

    index_document = add_document

    def merge(self, other) -> None:
        raise IndexStateError(
            "a tiered LSM index cannot merge; compaction folds tiers instead"
        )

    # -- aggregate introspection ----------------------------------------
    @property
    def num_documents(self) -> int:
        return sum(tier.index.num_documents for tier in self.tiers)

    @property
    def num_windows(self) -> int:
        return sum(tier.index.num_windows for tier in self.tiers)

    @property
    def num_signatures(self) -> int:
        return sum(tier.index.num_signatures for tier in self.tiers)

    @property
    def num_postings(self) -> int:
        return sum(tier.index.num_postings for tier in self.tiers)

    def size_in_entries(self) -> int:
        return self.num_postings

    def __repr__(self) -> str:
        return (
            f"TieredIntervalIndex({len(self.tiers)} tiers, "
            f"postings={self.num_postings})"
        )


class TieredRankDocs(Sequence):
    """Global doc id -> rank sequence, resolved through the owning tier.

    Length is derived from the *last* tier's (possibly live) upper
    bound, so a view over the active memtable sees documents the moment
    they are added.
    """

    __slots__ = ("_tiers", "_starts")

    def __init__(self, tiers: Sequence[Tier]) -> None:
        self._tiers = tuple(tiers)
        self._starts = [tier.doc_lo for tier in tiers]

    def __len__(self) -> int:
        if not self._tiers:
            return 0
        return self._tiers[-1].doc_hi

    @property
    def doc_lo(self) -> int:
        """First global doc id covered (ids below raise ``IndexError``).

        The routing tier's lazy builder starts fingerprinting here, so
        a memtable-only view never decodes frozen documents.
        """
        if not self._tiers:
            return 0
        return self._tiers[0].doc_lo

    def __getitem__(self, doc_id: int):
        if not 0 <= doc_id < len(self):
            raise IndexError(f"no document with id {doc_id}")
        slot = bisect_right(self._starts, doc_id) - 1
        if slot < 0:
            raise IndexError(f"doc id {doc_id} precedes the first tier")
        tier = self._tiers[slot]
        if doc_id >= tier.doc_hi:
            raise IndexError(f"doc id {doc_id} falls in a tier gap")
        return tier.rank_docs[doc_id - tier.doc_lo]

    def __repr__(self) -> str:
        return f"TieredRankDocs({len(self._tiers)} tiers, docs={len(self)})"
