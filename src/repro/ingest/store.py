"""IngestStore: the LSM write path behind the unified mutation API.

One store owns everything mutable about a live corpus:

* the **active memtable** (dict-backed, search-visible immediately),
* the ordered list of frozen tiers — compact **segments** plus any
  sealed memtables a fold has not consumed yet,
* the **tombstone** set and the epoch counters caches key on,
* the **WAL** (durable stores) and the **manifest** snapshot,
* the optional background **compactor** thread.

Writes are strictly write-ahead: the WAL record is appended and flushed
before the memtable or collection mutates, so an acknowledged add or
remove survives any crash.  Tier membership only ever changes through
an *install*: a new :class:`~repro.ingest.searcher.LSMSearcher` view is
built over the post-change tiers and swapped into the attached
:class:`~repro.service.SearchService` inside its writer-preferring lock
(standalone stores just flip the view under their own mutex).  Queries
therefore always run against one consistent tier snapshot — serving
never blocks on a fold, which happens entirely outside the lock.

Durable fold ordering (crash-safe at every point, see
:mod:`repro.ingest.manifest`): segment file → manifest → in-memory flip
→ delete folded WALs / replaced segment files.  The ``ingest.compact``
fault point fires at each phase boundary (``phase`` context:
``"fold"``, ``"segment"``, ``"manifest"``) so tests can kill the
compactor exactly where a real crash would land.

Locking order, everywhere: service write lock (when attached) OUTER,
store mutex INNER; folds additionally serialize on a dedicated fold
lock that is never held while taking the service lock's write side
until the (brief) install commit.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path

from .. import faults
from ..corpus import DocumentCollection
from ..core.pkwise import PKWiseSearcher, default_scheme
from ..errors import ConfigurationError, CorpusError, IndexStateError
from ..index.compact import CompactIntervalIndex, PackedRankDocs
from ..index.interval_index import IntervalIndex
from ..obs import MetricsRegistry
from ..ordering import GlobalOrder
from ..persistence import (
    PersistenceError,
    generation_name,
    load_bundle,
    save_searcher,
)
from ..service.cache import ResultCache
from .manifest import (
    SEGMENT_STEM,
    ManifestState,
    manifest_path,
    read_manifest,
    write_manifest,
)
from .memtable import Memtable
from .searcher import LSMSearcher
from .tiered import Tier
from .wal import WriteAheadLog, read_wal, wal_generations, wal_name

#: Segment-cache capacity (frozen-part results; see LSMSearcher).
DEFAULT_SEGMENT_CACHE = 128


class CompactionPolicy:
    """When to seal the memtable and when to fold segments together."""

    __slots__ = ("memtable_max_docs", "memtable_max_tokens", "max_segments")

    def __init__(
        self,
        *,
        memtable_max_docs: int = 256,
        memtable_max_tokens: int = 1 << 18,
        max_segments: int = 4,
    ) -> None:
        if memtable_max_docs < 1 or memtable_max_tokens < 1 or max_segments < 1:
            raise ConfigurationError("compaction policy thresholds must be >= 1")
        #: Seal the memtable once it holds this many documents ...
        self.memtable_max_docs = memtable_max_docs
        #: ... or this many tokens, whichever trips first.
        self.memtable_max_tokens = memtable_max_tokens
        #: Fold all segments into one when their count exceeds this.
        self.max_segments = max_segments

    def should_flush(self, memtable: Memtable) -> bool:
        return len(memtable) > 0 and (
            len(memtable) >= self.memtable_max_docs
            or memtable.total_tokens >= self.memtable_max_tokens
        )

    def should_compact(self, num_segments: int) -> bool:
        return num_segments > self.max_segments

    def to_dict(self) -> dict:
        return {
            "memtable_max_docs": self.memtable_max_docs,
            "memtable_max_tokens": self.memtable_max_tokens,
            "max_segments": self.max_segments,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompactionPolicy":
        return cls(**data) if data else cls()

    def __repr__(self) -> str:
        return (
            f"CompactionPolicy(docs<={self.memtable_max_docs}, "
            f"tokens<={self.memtable_max_tokens}, "
            f"segments<={self.max_segments})"
        )


class _SealedSnapshot:
    """Immutable copy of the sealed prefix, taken at seal time.

    Manifest writes happen off-lock (during folds), so they must not
    touch live objects that concurrent adds mutate; everything a
    manifest needs is copied here while the writer lock is held.
    """

    __slots__ = ("data", "order", "tombstones", "next_doc_id", "wal_generation")

    def __init__(self, *, data, order, tombstones, next_doc_id, wal_generation):
        self.data = data
        self.order = order
        self.tombstones = tombstones
        self.next_doc_id = next_doc_id
        self.wal_generation = wal_generation


def _copy_collection(data: DocumentCollection) -> DocumentCollection:
    """Point-in-time copy: documents shared (immutable), vocabulary copied."""
    clone = DocumentCollection(
        tokenizer=data.tokenizer, vocabulary=data.vocabulary.copy()
    )
    clone._documents = list(data.documents)
    return clone


class IngestStore:
    """Log-structured write path over memtable + segment tiers.

    Construct with :meth:`create` (fresh store, optionally durable),
    :meth:`open` (recover a durable store: manifest + WAL replay), or
    :meth:`from_searcher` (wrap an existing searcher as the base tier —
    the lazy upgrade behind ``Index.add`` on a static index).
    """

    def __init__(
        self,
        params,
        order,
        scheme,
        data=None,
        *,
        directory=None,
        policy=None,
        fsync: bool = False,
        cache_size: int = DEFAULT_SEGMENT_CACHE,
    ) -> None:
        self.params = params
        self.order = order
        self.scheme = scheme
        self.data = data
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None and data is None:
            raise ConfigurationError(
                "a durable ingest store needs a document collection "
                "(the WAL records token strings)"
            )
        self.policy = policy if policy is not None else CompactionPolicy()
        self.fsync = fsync
        self._segments: list[Tier] = []
        self._active: Memtable | None = None
        self._generation = 0
        #: Live tombstones (shared by reference with every searcher view).
        self.removed: set[int] = set()
        #: Bumped by every add/remove; the service-level cache epoch.
        self.mutation_epoch = 0
        #: Bumped by removes only; leading element of the segment-cache
        #: epoch vector, so adds leave frozen-part results warm.
        self.tombstone_epoch = 0
        self._wal: WriteAheadLog | None = None
        self._seq = 0
        self._snapshot: _SealedSnapshot | None = None
        self.segment_cache = ResultCache(cache_size)
        self.metrics = MetricsRegistry()
        self._mutex = threading.RLock()
        self._fold_lock = threading.Lock()
        self._service = None
        self._view: LSMSearcher | None = None
        self._closed = False
        self._compactor: threading.Thread | None = None
        self._wake = threading.Event()
        self._stop = False
        #: Last exception swallowed by the background compactor.
        self.last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        params,
        *,
        directory=None,
        data=None,
        order=None,
        scheme=None,
        policy=None,
        routing=None,
        background: bool = False,
        fsync: bool = False,
        cache_size: int = DEFAULT_SEGMENT_CACHE,
    ) -> "IngestStore":
        """A fresh store; pre-existing ``data`` documents are bootstrapped
        through the write path (so a durable store's WAL covers them)."""
        if routing is not None:
            params = params.with_routing(routing)
        data = data if data is not None else DocumentCollection()
        if order is None:
            order = GlobalOrder(data, params.w)
        if scheme is None:
            scheme = default_scheme(params, order)
        store = cls(
            params,
            order,
            scheme,
            data,
            directory=directory,
            policy=policy,
            fsync=fsync,
            cache_size=cache_size,
        )
        store._generation = 1
        store._active = Memtable(0, 1, params, scheme)
        if store.directory is not None:
            store.directory.mkdir(parents=True, exist_ok=True)
            if manifest_path(store.directory).exists():
                raise PersistenceError(
                    f"{store.directory} already holds an ingest store; "
                    f"use IngestStore.open to resume it"
                )
            empty = DocumentCollection(tokenizer=data.tokenizer)
            store._snapshot = _SealedSnapshot(
                data=empty,
                order=order.snapshot(empty.vocabulary),
                tombstones=set(),
                next_doc_id=0,
                wal_generation=1,
            )
            store._write_initial_manifest()
            store._wal = WriteAheadLog(
                store.directory / wal_name(1), fsync=fsync
            )
        vocabulary = data.vocabulary
        for document in list(data.documents):
            tokens = [vocabulary.token_of(t) for t in document.tokens]
            store._log({"op": "add", "tokens": tokens, "name": document.name})
            store._index_ranks(store.order.rank_document(document))
        store.mutation_epoch = 0  # bootstrap is construction, not mutation
        store._refresh_view_locked()
        if background:
            store.start_compactor()
        return store

    @classmethod
    def open(
        cls,
        directory,
        *,
        policy=None,
        routing=None,
        background: bool = False,
        fsync: bool = False,
        cache_size: int = DEFAULT_SEGMENT_CACHE,
    ) -> "IngestStore":
        """Recover a durable store: manifest, segments, then WAL replay."""
        directory = Path(directory)
        state = read_manifest(directory)
        if routing is not None:
            # Routing is a query-time policy: overriding it re-keys the
            # store's params (memtables created from here on fingerprint
            # accordingly; frozen tiers fall back to lazy fingerprints).
            state.params = state.params.with_routing(routing)
        if state.data is None:
            raise PersistenceError(
                f"{manifest_path(directory)} carries no document collection"
            )
        store = cls(
            state.params,
            state.order,
            state.scheme,
            state.data,
            directory=directory,
            policy=policy if policy is not None else
            CompactionPolicy.from_dict(state.policy),
            fsync=fsync,
            cache_size=cache_size,
        )
        store.removed = set(state.tombstones)
        # Snapshot the sealed prefix *before* replay mutates the live
        # collection/order (a compact() before the next seal reuses it).
        store._snapshot = _SealedSnapshot(
            data=_copy_collection(state.data),
            order=state.order.snapshot(state.data.vocabulary.copy()),
            tombstones=set(state.tombstones),
            next_doc_id=state.next_doc_id,
            wal_generation=state.wal_generation,
        )
        referenced = set()
        for record in state.segments:
            path = directory / record["file"]
            referenced.add(record["file"])
            bundle = load_bundle(path, fallback=False, mmap=True)
            segment = bundle.searcher
            store._segments.append(
                Tier(
                    record["doc_lo"],
                    record["doc_hi"],
                    record["generation"],
                    segment.index,
                    segment.rank_docs,
                    "segment",
                    path,
                )
            )
        for orphan in directory.glob(f"{SEGMENT_STEM}.g*.idx"):
            if orphan.name not in referenced:
                orphan.unlink()
                store.metrics.counter("ingest.recovered_orphans").inc()
        replay = [
            (gen, path)
            for gen, path in wal_generations(directory)
            if gen >= state.wal_generation
        ]
        highest = replay[-1][0] if replay else None
        store._generation = max(
            [state.generation] + [gen for gen, _ in replay]
        ) + 1
        store._active = Memtable(
            state.next_doc_id, store._generation, state.params, state.scheme
        )
        for gen, path in replay:
            records, torn = read_wal(path)
            if torn:
                if gen != highest:
                    raise PersistenceError(
                        f"WAL {path} has a torn tail but later generations "
                        f"exist — the log sequence is damaged"
                    )
                store.metrics.counter("ingest.torn_wal_tails").inc()
            for record in records:
                store._replay(record)
        store._wal = WriteAheadLog(
            directory / wal_name(store._generation), fsync=fsync
        )
        store._refresh_view_locked()
        if background:
            store.start_compactor()
        return store

    @classmethod
    def from_searcher(
        cls,
        searcher,
        data=None,
        *,
        policy=None,
        cache_size: int = DEFAULT_SEGMENT_CACHE,
    ) -> "IngestStore":
        """Wrap an existing searcher as the base tier of an in-memory store.

        This is the lazy upgrade behind ``Index.add`` /
        ``SearchService.add_document`` on a statically built index —
        including frozen compact snapshots, which gain a mutable
        memtable on top without thawing.  Mutations are not durable;
        create a directory-backed store for that.
        """
        existing = getattr(searcher, "store", None)
        if existing is not None:
            return existing
        store = cls(
            searcher.params,
            searcher.order,
            searcher.scheme,
            data,
            policy=policy,
            cache_size=cache_size,
        )
        num_docs = len(searcher.rank_docs)
        if num_docs:
            kind = (
                "segment" if getattr(searcher.index, "frozen", False)
                else "memtable"
            )
            store._segments.append(
                Tier(0, num_docs, 1, searcher.index, searcher.rank_docs, kind)
            )
            store._generation = 2
        else:
            store._generation = 1
        store._active = Memtable(num_docs, store._generation,
                                 searcher.params, searcher.scheme)
        store.removed = set(getattr(searcher, "removed_documents", ()))
        store.mutation_epoch = getattr(searcher, "index_epoch", 0)
        store._refresh_view_locked()
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def searcher(self) -> LSMSearcher:
        """The current installed view (changes identity on installs)."""
        return self._view

    @property
    def next_doc_id(self) -> int:
        return self._active.doc_hi

    @property
    def num_segments(self) -> int:
        return sum(1 for tier in self._segments if tier.kind == "segment")

    @property
    def memtable_docs(self) -> int:
        return len(self._active)

    def metrics_snapshot(self) -> dict:
        registry = MetricsRegistry().merge(self.metrics)
        registry.gauge("ingest.memtable_docs").set(len(self._active))
        registry.gauge("ingest.segments").set(self.num_segments)
        registry.gauge("ingest.tombstones").set(len(self.removed))
        cache = self.segment_cache
        registry.counter("ingest.segment_cache_hits").inc(cache.hits)
        registry.counter("ingest.segment_cache_misses").inc(cache.misses)
        return registry.snapshot()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @contextmanager
    def _writer(self):
        """Service write lock (when attached) outside, store mutex inside."""
        service = self._service
        if service is not None:
            service._index_lock.acquire_write()
            try:
                with self._mutex:
                    yield
            finally:
                service._index_lock.release_write()
        else:
            with self._mutex:
                yield

    def _check_open(self) -> None:
        if self._closed:
            raise IndexStateError("ingest store is closed")

    def _log(self, record: dict) -> None:
        if self._wal is None:
            return
        record = {"seq": self._seq, **record}
        self._wal.append(record)
        self._seq += 1
        self.metrics.counter("ingest.wal_records").inc()

    def _index_ranks(self, ranks) -> int:
        doc_id = self._active.add(ranks)
        self.mutation_epoch += 1
        self.metrics.counter("ingest.adds").inc()
        return doc_id

    def add_text(self, text: str, name: str | None = None) -> int:
        """Tokenize, log, and index one document; returns its doc id."""
        if self.data is None:
            raise ConfigurationError(
                "this store carries no document collection; ingest "
                "pre-encoded documents via add_document instead"
            )
        return self.add_tokens(self.data.tokenizer.tokenize(text), name=name)

    def add_tokens(self, tokens, name: str | None = None) -> int:
        """Log and index one document given as token strings."""
        if self.data is None:
            raise ConfigurationError(
                "this store carries no document collection; ingest "
                "pre-encoded documents via add_document instead"
            )
        tokens = list(tokens)
        with self._writer():
            self._check_open()
            self._log({"op": "add", "tokens": tokens, "name": name})
            document = self.data.add_tokens(tokens, name=name)
            doc_id = self._index_ranks(self.order.rank_document(document))
            if doc_id != document.doc_id:
                raise IndexStateError(
                    f"collection assigned doc id {document.doc_id} but the "
                    f"memtable is at {doc_id} — collection mutated outside "
                    f"the store"
                )
        self._after_write()
        return doc_id

    def add_document(self, document) -> int:
        """Ingest a pre-encoded :class:`~repro.corpus.Document`.

        Accepts both a document already appended to this store's
        collection (the historical ``data.add_text`` + ``add_document``
        flow) and a free-standing one, which is appended first.
        Query-encoded documents (OOV sentinel ids) are refused.
        """
        if any(token < 0 for token in document.tokens):
            raise CorpusError(
                "query-encoded documents (OOV sentinel ids) cannot be "
                "ingested as data"
            )
        with self._writer():
            self._check_open()
            if self.data is not None:
                documents = self.data.documents
                vocabulary = self.data.vocabulary
                if documents and documents[-1] is document:
                    # Already appended by the caller through the
                    # collection; log it and index in place.
                    tokens = [vocabulary.token_of(t) for t in document.tokens]
                    self._log({"op": "add", "tokens": tokens,
                               "name": document.name})
                    doc_id = self._index_ranks(
                        self.order.rank_document(document)
                    )
                else:
                    try:
                        tokens = [
                            vocabulary.token_of(t) for t in document.tokens
                        ]
                    except IndexError:
                        raise CorpusError(
                            "document is encoded against a different "
                            "vocabulary than this store's collection"
                        ) from None
                    self._log({"op": "add", "tokens": tokens,
                               "name": document.name})
                    appended = self.data.add_tokens(tokens, name=document.name)
                    doc_id = self._index_ranks(
                        self.order.rank_document(appended)
                    )
            else:
                doc_id = self._index_ranks(self.order.rank_document(document))
        self._after_write()
        return doc_id

    def remove(self, doc_id: int) -> None:
        """Tombstone ``doc_id``; space is reclaimed at the next fold."""
        with self._writer():
            self._check_open()
            if not 0 <= doc_id < self.next_doc_id:
                raise IndexError(f"no document with id {doc_id}")
            self._log({"op": "remove", "doc_id": doc_id})
            self.removed.add(doc_id)
            self.tombstone_epoch += 1
            self.mutation_epoch += 1
            self.metrics.counter("ingest.removes").inc()
        self._after_write()

    def _replay(self, record: dict) -> None:
        """Re-apply one WAL record during recovery (no logging, no locks)."""
        op = record.get("op")
        if op == "add":
            document = self.data.add_tokens(
                record["tokens"], name=record.get("name")
            )
            self._active.add(self.order.rank_document(document))
            self.metrics.counter("ingest.wal_replayed").inc()
        elif op == "remove":
            doc_id = record["doc_id"]
            if 0 <= doc_id < self.next_doc_id:
                self.removed.add(doc_id)
            self.metrics.counter("ingest.wal_replayed").inc()
        else:
            raise PersistenceError(f"unknown WAL op {op!r}")
        seq = record.get("seq")
        if seq is not None:
            self._seq = max(self._seq, seq + 1)

    def _after_write(self) -> None:
        """Trigger rolls outside the writer lock."""
        if self._compactor is not None:
            if self.policy.should_flush(self._active) or \
                    self.policy.should_compact(self.num_segments):
                self._wake.set()
            return
        if self.policy.should_flush(self._active):
            self.flush()
        if self.policy.should_compact(self.num_segments):
            self.compact()

    # ------------------------------------------------------------------
    # Installs (view swaps)
    # ------------------------------------------------------------------
    def _refresh_view_locked(self) -> None:
        active = self._active
        active_tier = Tier(
            active.doc_lo, None, active.generation,
            active.index, active.rank_docs, "memtable",
            fingerprints=active.fingerprints,
        )
        self._view = LSMSearcher(self, tuple(self._segments), active_tier)

    def _run_install(self, commit):
        """Run ``commit`` (tier flip + view rebuild) atomically for readers.

        Attached: inside the service's write-lock critical section, via
        the factory form of ``swap_searcher`` — in-flight queries drain,
        the flip happens, and the new view starts serving, all without
        rejecting a single request.  Standalone: under the store mutex
        (``commit`` takes it itself).
        """
        service = self._service
        if service is None:
            return commit()
        outcome = {}

        def factory():
            outcome["result"] = commit()
            if outcome["result"] is None:
                return None
            return self._view

        service.swap_searcher(factory=factory)
        return outcome.get("result")

    def _seal(self):
        """Freeze the active memtable into a sealed tier; rotate the WAL."""
        def commit():
            with self._mutex:
                if self._closed or len(self._active) == 0:
                    return None
                old = self._active
                sealed = Tier(
                    old.doc_lo, old.doc_hi, old.generation,
                    old.index, old.rank_docs, "memtable",
                    fingerprints=old.fingerprints,
                )
                self._segments.append(sealed)
                self._generation += 1
                self._active = Memtable(
                    old.doc_hi, self._generation, self.params, self.scheme
                )
                if self._wal is not None:
                    self._wal.close()
                    self._wal = WriteAheadLog(
                        self.directory / wal_name(self._generation),
                        fsync=self.fsync,
                    )
                if self.directory is not None:
                    self._snapshot = _SealedSnapshot(
                        data=_copy_collection(self.data),
                        order=self.order.snapshot(self.data.vocabulary.copy()),
                        tombstones=set(self.removed),
                        next_doc_id=old.doc_hi,
                        wal_generation=self._generation,
                    )
                self._refresh_view_locked()
                return sealed

        return self._run_install(commit)

    def flush(self):
        """Seal the memtable and fold every sealed tier into a segment.

        Returns the new segment's generation, or None when there was
        nothing to fold.  Safe to call concurrently with writes and
        queries; folds serialize among themselves.
        """
        with self._fold_lock:
            self._seal()
            pending = [t for t in self._segments if t.kind == "memtable"]
            if not pending:
                return None
            generation = self._fold_and_install(pending)
            self.metrics.counter("ingest.flushes").inc()
            return generation

    def compact(self):
        """Fold *all* tiers (after sealing) into one segment covering
        the whole corpus, dropping tombstoned documents for good."""
        with self._fold_lock:
            self._seal()
            pending = list(self._segments)
            if not pending:
                return None
            span_removed = any(
                pending[0].doc_lo <= doc_id < pending[-1].doc_hi
                for doc_id in self.removed
            )
            if len(pending) == 1 and pending[0].kind == "segment" \
                    and not span_removed:
                return None  # already fully compact
            generation = self._fold_and_install(pending)
            self.metrics.counter("ingest.compactions").inc()
            return generation

    def _fold_and_install(self, pending) -> int:
        """Fold contiguous ``pending`` tiers (+tombstones) into one segment.

        Runs off-lock except for two brief critical sections (generation
        bump, install commit); callers hold the fold lock.
        """
        doc_lo = pending[0].doc_lo
        doc_hi = pending[-1].doc_hi
        with self._mutex:
            removed_snapshot = set(self.removed)
        faults.inject(
            "ingest.compact", phase="fold", doc_lo=doc_lo, doc_hi=doc_hi
        )
        with self.metrics.timer("ingest.fold_seconds").time():
            folded = IntervalIndex(
                self.params.w, self.params.tau, self.scheme, hashed=False
            )
            rank_lists = []
            for tier in pending:
                base = tier.doc_lo
                for local in range(tier.doc_hi - base):
                    doc_id = base + local
                    if doc_id in removed_snapshot:
                        ranks = []  # keep the id slot, drop the postings
                    else:
                        ranks = list(tier.rank_docs[local])
                    folded.index_document(doc_id - doc_lo, ranks)
                    rank_lists.append(ranks)
            compact_index = CompactIntervalIndex.from_index(folded)
            packed = PackedRankDocs.from_lists(rank_lists)
        with self._mutex:
            self._generation += 1
            generation = self._generation
        path = None
        snapshot = self._snapshot
        if self.directory is not None:
            segment_searcher = PKWiseSearcher.from_prebuilt(
                self.params, snapshot.order, self.scheme,
                compact_index, packed,
            )
            faults.inject(
                "ingest.compact", phase="segment", generation=generation
            )
            path = self.directory / generation_name(SEGMENT_STEM, generation)
            save_searcher(segment_searcher, path, compact=True)
        new_tier = Tier(
            doc_lo, doc_hi, generation, compact_index, packed, "segment", path
        )
        keep = [t for t in self._segments
                if not any(t is p for p in pending)]
        purged = {d for d in removed_snapshot if doc_lo <= d < doc_hi}
        if self.directory is not None:
            faults.inject(
                "ingest.compact", phase="manifest", generation=generation
            )
            write_manifest(self.directory, ManifestState(
                params=self.params,
                order=snapshot.order,
                scheme=self.scheme,
                data=snapshot.data,
                segments=[
                    {
                        "file": t.path.name,
                        "doc_lo": t.doc_lo,
                        "doc_hi": t.doc_hi,
                        "generation": t.generation,
                    }
                    for t in keep + [new_tier]
                ],
                tombstones=snapshot.tombstones - purged,
                next_doc_id=snapshot.next_doc_id,
                wal_generation=snapshot.wal_generation,
                generation=generation,
                policy=self.policy.to_dict(),
            ))

        def commit():
            with self._mutex:
                self._segments[:] = keep + [new_tier]
                self.removed -= purged
                self._refresh_view_locked()
                return new_tier

        self._run_install(commit)
        if self.directory is not None:
            for gen, wal_path in wal_generations(self.directory):
                if gen < snapshot.wal_generation:
                    wal_path.unlink(missing_ok=True)
            for tier in pending:
                if tier.path is not None and tier.path != path:
                    tier.path.unlink(missing_ok=True)
        return generation

    def _write_initial_manifest(self) -> None:
        snapshot = self._snapshot
        write_manifest(self.directory, ManifestState(
            params=self.params,
            order=snapshot.order,
            scheme=self.scheme,
            data=snapshot.data,
            segments=[],
            tombstones=set(),
            next_doc_id=0,
            wal_generation=1,
            generation=1,
            policy=self.policy.to_dict(),
        ))

    # ------------------------------------------------------------------
    # Snapshot out
    # ------------------------------------------------------------------
    def compacted_searcher(self) -> PKWiseSearcher:
        """A standalone frozen searcher over every document (global ids).

        Tombstones carry over as tombstones (matching
        :meth:`~repro.PKWiseSearcher.compacted` semantics); use
        :meth:`compact` first to drop them physically.
        """
        with self._fold_lock:
            with self._mutex:
                tiers = list(self._segments)
                active = self._active
                active_len = len(active)
                removed = set(self.removed)
                epoch = self.mutation_epoch
            folded = IntervalIndex(
                self.params.w, self.params.tau, self.scheme, hashed=False
            )
            rank_lists = []
            for tier in tiers:
                for local in range(tier.doc_hi - tier.doc_lo):
                    ranks = list(tier.rank_docs[local])
                    folded.index_document(tier.doc_lo + local, ranks)
                    rank_lists.append(ranks)
            for local in range(active_len):
                ranks = list(active.rank_docs[local])
                folded.index_document(active.doc_lo + local, ranks)
                rank_lists.append(ranks)
            return PKWiseSearcher.from_prebuilt(
                self.params,
                self.order,
                self.scheme,
                CompactIntervalIndex.from_index(folded),
                PackedRankDocs.from_lists(rank_lists),
                removed=removed,
                index_epoch=epoch,
            )

    # ------------------------------------------------------------------
    # Background compactor
    # ------------------------------------------------------------------
    def start_compactor(self, poll_seconds: float = 0.05) -> None:
        """Start the background thread that flushes/compacts on policy."""
        with self._mutex:
            if self._compactor is not None or self._closed:
                return
            self._stop = False
            thread = threading.Thread(
                target=self._compactor_loop,
                args=(poll_seconds,),
                name="repro-ingest-compactor",
                daemon=True,
            )
            self._compactor = thread
        thread.start()

    def stop_compactor(self, timeout: float = 10.0) -> None:
        thread = self._compactor
        if thread is None:
            return
        self._stop = True
        self._wake.set()
        thread.join(timeout=timeout)
        self._compactor = None

    def _compactor_loop(self, poll_seconds: float) -> None:
        while True:
            self._wake.wait(poll_seconds)
            self._wake.clear()
            if self._stop:
                return
            try:
                if self.policy.should_flush(self._active):
                    self.flush()
                if self.policy.should_compact(self.num_segments):
                    self.compact()
            except Exception as exc:  # keep serving; surface via metrics
                self.last_error = exc
                self.metrics.counter("ingest.compactor_errors").inc()

    # ------------------------------------------------------------------
    # Service wiring + lifecycle
    # ------------------------------------------------------------------
    def attach(self, service) -> None:
        """Route installs through ``service`` (its write lock becomes the
        writer-side outer lock, and swaps go through swap_searcher)."""
        with self._mutex:
            self._service = service
        if service.searcher is not self._view:
            service.swap_searcher(self._view)

    def detach(self, service) -> None:
        with self._mutex:
            if self._service is service:
                self._service = None

    def close(self) -> None:
        """Stop the compactor and close the WAL; queries on existing
        views keep working (they are in-memory)."""
        self.stop_compactor()
        with self._mutex:
            self._closed = True
            if self._wal is not None:
                self._wal.close()

    def __repr__(self) -> str:
        return (
            f"IngestStore(docs={self.next_doc_id}, "
            f"segments={self.num_segments}, "
            f"memtable={len(self._active)}, "
            f"tombstones={len(self.removed)}, "
            f"{'durable' if self.directory else 'in-memory'})"
        )
