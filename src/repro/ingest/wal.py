"""Write-ahead token log for the streaming ingestion pipeline.

Every mutation (add or remove) is appended here *before* it touches the
memtable, so a crash at any point loses nothing that was acknowledged:
recovery replays the log on top of the last durable manifest and lands
in a state pair-identical to the uncrashed run.

Design notes:

* **One JSON record per line**, each line carrying a BLAKE2b digest of
  its payload.  JSON (not pickle) because the log is append-only — a
  torn final record must be detectable and skippable without giving up
  on the rest of the file, and line framing makes "the rest of the
  file" well defined.
* **Token strings, not ids.**  Ids are an artifact of interning order;
  replaying strings through ``DocumentCollection.add_tokens`` re-interns
  them in the original arrival order, so the rebuilt vocabulary, rank
  sequences, and lazily-admitted negative ranks all come out identical
  to the pre-crash process.
* **Torn tails are tolerated, corruption is not.**  A bad record with
  nothing valid after it is the expected signature of a crash mid-append
  and replay simply stops there; a bad record *followed by* valid ones
  means the file was damaged after the fact and raises a typed
  :class:`~repro.persistence.PersistenceError`.
* **Generations.**  The store opens a fresh ``wal-NNNNNN.log`` at every
  memtable seal (and on every open); the manifest records the first
  generation not yet folded into a segment, and recovery replays every
  generation from there in ascending order.

The ``ingest.wal`` fault point wraps every appended line
(:func:`repro.faults.inject_bytes`), so tests can corrupt, delay, or
kill at exactly the byte that would have been torn by a real crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path

from .. import faults
from ..persistence import PersistenceError

#: Digest width appended to every record line (hex characters = 2x).
_WAL_DIGEST_SIZE = 8

_WAL_NAME_RE = re.compile(r"^wal-(\d{6})\.log$")


def wal_name(generation: int) -> str:
    """Canonical file name of WAL ``generation`` (zero-padded)."""
    if generation < 1:
        raise ValueError(f"WAL generation must be >= 1, got {generation}")
    return f"wal-{generation:06d}.log"


def wal_generations(directory: str | Path) -> list[tuple[int, Path]]:
    """All WAL files under ``directory`` as ``(generation, path)``, ascending."""
    directory = Path(directory)
    found = []
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _WAL_NAME_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
    return sorted(found)


def _record_digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=_WAL_DIGEST_SIZE).hexdigest()


class WriteAheadLog:
    """Appender for one WAL generation file.

    ``fsync=True`` makes every append durable before it returns (the
    safest and slowest mode); the default flushes to the OS, which
    survives process crashes but not power loss — the same trade most
    LSM stores default to.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = open(self.path, "ab")
        self.records_written = 0

    def append(self, record: dict) -> None:
        """Append one mutation record (checksummed, framed, flushed)."""
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        line = payload + b"\t" + _record_digest(payload).encode("ascii") + b"\n"
        line = faults.inject_bytes(
            "ingest.wal",
            line,
            seq=record.get("seq"),
            op=record.get("op"),
            generation=self.path.name,
        )
        self._handle.write(line)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.path.name}, records={self.records_written})"


def read_wal(path: str | Path) -> tuple[list[dict], bool]:
    """Replay one WAL file; returns ``(records, torn_tail)``.

    ``torn_tail`` is True when the file ends in a partial or
    checksum-failed record — the normal residue of a crash mid-append,
    which recovery silently drops.  A damaged record anywhere *before*
    an intact one is disk corruption, not a torn write, and raises
    :class:`~repro.persistence.PersistenceError` naming the line.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise PersistenceError(f"cannot read WAL {path}: {exc}") from exc
    records: list[dict] = []
    bad_line: int | None = None
    for line_no, line in enumerate(raw.split(b"\n"), start=1):
        if not line:
            continue
        payload, sep, digest = line.rpartition(b"\t")
        record = None
        if sep and _record_digest(payload) == digest.decode("ascii", "replace"):
            try:
                record = json.loads(payload)
            except json.JSONDecodeError:
                record = None
        if record is None:
            if bad_line is None:
                bad_line = line_no
            continue
        if bad_line is not None:
            raise PersistenceError(
                f"WAL {path}: record at line {bad_line} is corrupt but "
                f"later records are intact — the file is damaged, not "
                f"torn; restore from a snapshot"
            )
        records.append(record)
    return records, bad_line is not None
