"""Durable segment manifest for the LSM ingest store.

The manifest is the single point of truth for what is on disk: which
compact segment files are live, the sealed prefix of the corpus they
cover, the tombstones accumulated against that prefix, and the first
WAL generation whose records are *not* yet folded into a segment.  The
recovery invariant is::

    manifest state  +  replay of WAL generations >= wal_generation
        ==  pre-crash live state   (pair-identical query results)

It reuses the v2 checksummed-pickle envelope from
:mod:`repro.persistence` (kind ``"ingest-manifest"``), written
atomically, so a crash mid-write leaves the previous manifest intact
and a corrupted file fails loudly with a typed
:class:`~repro.persistence.PersistenceError` instead of resurrecting a
half-written state.

Ordering discipline (write-ahead, like the WAL itself):

1. new segment file hits disk (``segment.g<N>.idx``),
2. the manifest referencing it is atomically replaced,
3. only then are replaced segment files and folded WALs deleted and the
   in-memory tier list flipped.

A crash between 1 and 2 leaves an *orphan* segment file, which recovery
detects (not referenced by the manifest) and deletes.  A crash between
2 and 3 leaves extra WAL files, whose replay is idempotent.
"""

from __future__ import annotations

from pathlib import Path

from ..persistence import PersistenceError, read_envelope, write_envelope

MANIFEST_NAME = "MANIFEST"
MANIFEST_KIND = "ingest-manifest"

#: Stem for segment snapshot files (``segment.g000003.idx``).
SEGMENT_STEM = "segment"


class ManifestState:
    """Decoded contents of one manifest file."""

    __slots__ = (
        "params",
        "order",
        "scheme",
        "data",
        "segments",
        "tombstones",
        "next_doc_id",
        "wal_generation",
        "generation",
        "policy",
    )

    def __init__(
        self,
        *,
        params,
        order,
        scheme,
        data,
        segments,
        tombstones,
        next_doc_id,
        wal_generation,
        generation,
        policy,
    ) -> None:
        self.params = params
        self.order = order
        self.scheme = scheme
        #: Collection snapshot covering exactly ``[0, next_doc_id)``.
        self.data = data
        #: ``[{"file", "doc_lo", "doc_hi", "generation"}, ...]`` ascending.
        self.segments = segments
        #: Tombstoned doc ids within the sealed prefix.
        self.tombstones = tombstones
        self.next_doc_id = next_doc_id
        #: First WAL generation recovery must replay.
        self.wal_generation = wal_generation
        #: Highest tier/WAL generation the store had handed out.
        self.generation = generation
        #: Compaction-policy knobs (plain dict; informational on read).
        self.policy = policy


def manifest_path(directory: str | Path) -> Path:
    return Path(directory) / MANIFEST_NAME


def write_manifest(directory: str | Path, state: ManifestState) -> None:
    """Atomically persist ``state`` as the directory's manifest."""
    header = {
        "next_doc_id": state.next_doc_id,
        "wal_generation": state.wal_generation,
        "generation": state.generation,
        "segments": [dict(segment) for segment in state.segments],
        "policy": dict(state.policy),
    }
    sections = {
        "params": state.params,
        "order": state.order,
        "scheme": state.scheme,
        "data": state.data,
        "tombstones": sorted(state.tombstones),
    }
    write_envelope(manifest_path(directory), MANIFEST_KIND, sections, header)


def read_manifest(directory: str | Path) -> ManifestState:
    """Load and validate the manifest of an ingest directory."""
    path = manifest_path(directory)
    header, sections = read_envelope(path, MANIFEST_KIND)
    segments = list(header.get("segments", []))
    lo = 0
    for segment in segments:
        if segment["doc_lo"] != lo:
            raise PersistenceError(
                f"{path}: segment {segment['file']} starts at doc "
                f"{segment['doc_lo']}, expected {lo} — the segment list "
                f"does not tile the corpus"
            )
        lo = segment["doc_hi"]
    next_doc_id = header["next_doc_id"]
    if lo > next_doc_id:
        raise PersistenceError(
            f"{path}: segments cover {lo} docs but next_doc_id is "
            f"{next_doc_id}"
        )
    data = sections["data"]
    if data is not None and len(data) != next_doc_id:
        raise PersistenceError(
            f"{path}: collection snapshot has {len(data)} docs, "
            f"next_doc_id says {next_doc_id}"
        )
    return ManifestState(
        params=sections["params"],
        order=sections["order"],
        scheme=sections["scheme"],
        data=data,
        segments=segments,
        tombstones=set(sections["tombstones"]),
        next_doc_id=next_doc_id,
        wal_generation=header["wal_generation"],
        generation=header["generation"],
        policy=dict(header.get("policy", {})),
    )
