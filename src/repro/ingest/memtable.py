"""The mutable memtable tier of the ingestion pipeline.

A memtable is a small dict-backed :class:`~repro.index.IntervalIndex`
over the documents that arrived since the last seal, indexed under
*local* ids ``0..n-1`` with a fixed global base (``doc_lo``).  The
tiered probe layer (:mod:`repro.ingest.tiered`) offsets its hits back
into the global doc-id space, exactly like a shard.

Sealing is a pointer swap: the store freezes the current memtable (it
is never mutated again, so the background fold can read it without
locks) and opens an empty successor at the next base.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..index.interval_index import IntervalIndex
from ..params import SearchParams
from ..partition.scheme import PartitionScheme
from ..routing import FingerprintTier


class Memtable:
    """Mutable dict-index tier over documents ``doc_lo .. doc_lo+n-1``."""

    __slots__ = (
        "doc_lo", "generation", "index", "rank_docs", "total_tokens",
        "fingerprints",
    )

    def __init__(
        self,
        doc_lo: int,
        generation: int,
        params: SearchParams,
        scheme: PartitionScheme,
    ) -> None:
        #: First global doc id this memtable covers.
        self.doc_lo = doc_lo
        #: Store-wide tier generation (monotone across memtables and
        #: segments; the per-segment cache epoch vector is built from it).
        self.generation = generation
        self.index = IntervalIndex(params.w, params.tau, scheme, hashed=False)
        #: Local-id rank sequences (``rank_docs[i]`` is global doc
        #: ``doc_lo + i``).
        self.rank_docs: list[list[int]] = []
        self.total_tokens = 0
        #: Routing fingerprints, maintained on insert when the store's
        #: policy enables the tier (``None`` otherwise — a per-request
        #: routed query then falls back to a lazily built tier).
        routing = params.routing
        if routing.enabled:
            self.fingerprints = FingerprintTier(
                block_len=max(routing.block_tokens, params.w),
                bands=routing.bands,
                doc_lo=doc_lo,
            )
        else:
            self.fingerprints = None

    def add(self, ranks: Sequence[int]) -> int:
        """Index one document's rank sequence; returns its *global* id."""
        local_id = len(self.rank_docs)
        self.rank_docs.append(list(ranks))
        self.index.index_document(local_id, ranks)
        self.total_tokens += len(ranks)
        if self.fingerprints is not None:
            self.fingerprints.add(ranks)
        return self.doc_lo + local_id

    @property
    def doc_hi(self) -> int:
        """One past the last global doc id this memtable covers."""
        return self.doc_lo + len(self.rank_docs)

    def __len__(self) -> int:
        return len(self.rank_docs)

    def __repr__(self) -> str:
        return (
            f"Memtable([{self.doc_lo},{self.doc_hi}), "
            f"gen={self.generation}, tokens={self.total_tokens})"
        )
