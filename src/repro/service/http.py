"""Stdlib HTTP front-end for :class:`~repro.service.SearchService`.

A :class:`http.server.ThreadingHTTPServer` (one thread per connection,
all feeding the service's bounded admission queue) with three
endpoints:

``POST /search``
    JSON body ``{"text": "..."}`` or ``{"token_ids": [...]}`` plus an
    optional ``"timeout"`` (seconds) and an optional ``"routing"``
    (``"off"``/``"exact"``/``"approx"`` or a
    :meth:`~repro.RoutingPolicy.to_dict` object) overriding the
    serving index's fingerprint routing policy per request.
    ``GET /search?q=...`` accepts
    the same query as a URL parameter for curl-friendliness.  Replies
    ``{"pairs": [[doc_id, data_start, query_start, overlap], ...],
    "num_pairs": N, "cached": bool, "seconds": s, "index_epoch": e}``.
    When the service is a :class:`~repro.service.shards.ShardRouter`
    and some shards failed, the reply additionally carries
    ``"partial": true`` and ``"failures": [QueryFailure dicts]`` —
    the pairs cover the shards that answered.  Overload maps to ``429``
    with a ``Retry-After`` header; a missed deadline maps to ``504``.
``POST /ingest``
    JSON body ``{"text": "...", "name": "optional"}``: add one document
    through the service's LSM write path (upgrading a read-only
    searcher to a live tiered view on the first call).  Replies
    ``{"doc_id": N, "index_epoch": e}``; the document is searchable as
    soon as the reply is sent.
``POST /remove``
    JSON body ``{"doc_id": N}``: tombstone one document.  Unknown ids
    map to ``404``.
``GET /healthz``
    Liveness and index state (documents, epoch, queue depth, uptime,
    plus an ``ingest`` block — memtable size, segment count,
    tombstones — once the write path is live).
``GET /metrics``
    The service's :class:`~repro.obs.MetricsRegistry` snapshot —
    request-latency timers, queue-depth gauges, cache hit/miss
    counters, and the searcher's accumulated phase stats — in the same
    envelope the CLI's ``--metrics-out`` writes, so
    ``benchmarks/check_regression.py`` can diff two serving runs.

The server binds but does not accept until :py:meth:`serve_forever`
runs; use :func:`serve_http` for the common blocking case or drive the
returned server from your own thread (as the tests do).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..errors import (
    DeadlineExceededError,
    FaultInjectionError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from .service import SearchService

#: Largest accepted /search request body, in bytes (64 MiB): a query
#: document is token text, not a corpus; anything bigger is a mistake.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP verbs/paths onto one :class:`SearchService`."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, status: int, message: str, **extra) -> None:
        headers = extra.pop("headers", None)
        self._reply(status, {"error": message, **extra}, headers=headers)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        url = urlparse(self.path)
        if url.path == "/healthz":
            health = self.server.service.healthz()
            # ``degraded`` means the node is still answering queries
            # (some shards/replicas down, partial results served): it
            # must stay 200 so load balancers do not eject a node that
            # is the last one serving.  503 is reserved for ``down`` /
            # ``closed`` — states where no query can be answered.
            status = 200 if health["status"] in ("ok", "degraded") else 503
            self._reply(status, health)
        elif url.path == "/metrics":
            self._reply(200, self.server.service.metrics_snapshot())
        elif url.path == "/search":
            query = parse_qs(url.query)
            text = query.get("q", [None])[0]
            if text is None:
                self._reply_error(400, "missing query parameter 'q'")
                return
            timeout = query.get("timeout", [None])[0]
            self._search(
                {"text": text, "timeout": float(timeout) if timeout else None}
            )
        else:
            self._reply_error(404, f"unknown path {url.path!r}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        url = urlparse(self.path)
        if url.path not in ("/search", "/ingest", "/remove"):
            self._reply_error(404, f"unknown path {url.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._reply_error(400, "bad Content-Length")
            return
        if length > MAX_BODY_BYTES:
            self._reply_error(413, f"request body over {MAX_BODY_BYTES} bytes")
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            self._reply_error(400, f"invalid JSON body: {exc}")
            return
        if not isinstance(payload, dict):
            self._reply_error(400, "JSON body must be an object")
            return
        if url.path == "/search":
            self._search(payload)
        elif url.path == "/ingest":
            self._ingest(payload)
        else:
            self._remove(payload)

    def _ingest(self, payload: dict) -> None:
        service = self.server.service
        text = payload.get("text")
        if not isinstance(text, str):
            self._reply_error(400, "body needs a string 'text'")
            return
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            self._reply_error(400, "'name' must be a string")
            return
        try:
            doc_id = service.add_text(text, name=name)
        except ServiceClosedError as exc:
            self._reply_error(503, str(exc))
            return
        except ReproError as exc:
            self._reply_error(400, str(exc))
            return
        self._reply(
            200, {"doc_id": doc_id, "index_epoch": service.index_epoch}
        )

    def _remove(self, payload: dict) -> None:
        service = self.server.service
        doc_id = payload.get("doc_id")
        if not isinstance(doc_id, int) or isinstance(doc_id, bool):
            self._reply_error(400, "body needs an integer 'doc_id'")
            return
        try:
            service.remove_document(doc_id)
        except ServiceClosedError as exc:
            self._reply_error(503, str(exc))
            return
        except IndexError as exc:
            self._reply_error(404, str(exc))
            return
        except ReproError as exc:
            self._reply_error(400, str(exc))
            return
        self._reply(
            200, {"removed": doc_id, "index_epoch": service.index_epoch}
        )

    # ------------------------------------------------------------------
    def _search(self, payload: dict) -> None:
        service = self.server.service
        timeout = payload.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            self._reply_error(400, "'timeout' must be a number of seconds")
            return
        routing = payload.get("routing")
        if routing is not None:
            from ..errors import ConfigurationError
            from ..routing import RoutingPolicy

            try:
                routing = RoutingPolicy.from_dict(routing)
            except ConfigurationError as exc:
                self._reply_error(400, str(exc))
                return
        try:
            if payload.get("text") is not None:
                response = service.search_text(
                    str(payload["text"]), timeout=timeout, routing=routing
                )
            elif payload.get("token_ids") is not None:
                from ..corpus import Document

                token_ids = payload["token_ids"]
                if not isinstance(token_ids, list) or not all(
                    isinstance(token, int) for token in token_ids
                ):
                    self._reply_error(400, "'token_ids' must be a list of ints")
                    return
                response = service.search(
                    Document(-1, token_ids, name="http-query"),
                    timeout=timeout,
                    routing=routing,
                )
            else:
                self._reply_error(400, "body needs 'text' or 'token_ids'")
                return
        except ServiceOverloadError as exc:
            self._reply_error(
                429,
                str(exc),
                retry_after=exc.retry_after,
                headers={"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
            return
        except DeadlineExceededError as exc:
            self._reply_error(504, str(exc))
            return
        except ServiceClosedError as exc:
            self._reply_error(503, str(exc))
            return
        except FaultInjectionError as exc:
            # An injected fault models a server-side crash mid-request:
            # surface it as 500 so resilient clients treat it as
            # retryable (unlike the caller-mistake 400s below).
            self._reply_error(500, str(exc))
            return
        except ServiceError as exc:
            # e.g. a shard router with every shard down: the request
            # was fine, the backend tier is not — retryable 503.
            extra = {}
            failures = getattr(exc, "failures", None)
            if failures:
                extra["failures"] = [failure.to_dict() for failure in failures]
            self._reply_error(503, str(exc), **extra)
            return
        except ReproError as exc:
            self._reply_error(400, str(exc))
            return
        reply = {
            "pairs": [list(pair) for pair in response.pairs],
            "num_pairs": len(response.pairs),
            "cached": response.cached,
            "seconds": response.seconds,
            "index_epoch": response.index_epoch,
        }
        failures = getattr(response, "failures", None)
        if failures:
            reply["partial"] = True
            reply["failures"] = [failure.to_dict() for failure in failures]
        self._reply(200, reply)


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`SearchService`.

    Anything duck-typing the service surface (``search`` /
    ``search_text`` / ``healthz`` / ``metrics_snapshot``) works too —
    notably :class:`~repro.service.shards.ShardRouter`, which fronts N
    shard workers behind the exact same three endpoints.

    ``port=0`` binds an OS-assigned ephemeral port; read the final
    address from :attr:`server_address`.
    """

    daemon_threads = True

    def __init__(
        self,
        service: SearchService,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), ServiceRequestHandler)

    @property
    def url(self) -> str:
        """Base URL of the bound address (http://host:port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_http(
    service: SearchService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer`; caller runs ``serve_forever``.

    Returned unstarted so callers control the serving thread (the CLI
    blocks on it; tests run it in a daemon thread).
    """
    return ServiceHTTPServer(service, host=host, port=port, verbose=verbose)
