"""Sharded scatter-gather serving with rolling snapshot swaps.

One :class:`~repro.service.SearchService` caps corpus size at a single
worker's RSS and throughput at a single GIL.  The pkwise algorithm is
exact and embarrassingly partitionable by document: a query's match
pairs against a corpus are exactly the union of its pairs against any
disjoint document partition of that corpus (each pair involves one data
document; per-shard global orders may differ but verification is
order-independent).  This module exploits that:

* :class:`ShardPlan` — partition a collection into N contiguous doc-id
  ranges balanced by token count, build one compact v3 snapshot per
  range, and persist a JSON manifest (``shards.json``) mapping ranges →
  generation-named shard files
  (:func:`~repro.persistence.generation_name`).  The plan also records
  a ``replicas`` dimension: R workers per shard, all mapping the same
  generation-named snapshot.
* Shard backends — :class:`LocalShardBackend` wraps an in-process
  :class:`SearchService` (tests, ``Index.serve(shards=N)``);
  :class:`HTTPShardBackend` wraps a :class:`ResilientClient` to a
  worker process serving one shard snapshot (``repro serve --shards``
  spawns them via :func:`spawn_shard_workers`).  Backends carry a
  ``replica`` index; the router groups backends with the same
  ``shard_id`` into a :class:`ReplicaSet`.
* :class:`ShardRouter` — scatters every query to **one replica per
  shard**, gathers replies, maps shard-local doc ids back to global
  ids, and merges in the existing canonical pair order (shards own
  disjoint ascending id ranges and each reply is already canonically
  ordered, so the merge is an order-preserving concatenation).
  Per-query deadlines bound the gather; one **hedged request** per slow
  shard fires after ``hedge_after`` seconds; a *failed* replica fails
  over to the next replica of the same shard *before* the shard is
  declared dead, so with R >= 2 a single worker death costs zero
  queries (``router.failovers`` counts these).  Only when every replica
  of a shard has failed does the shard become a
  :class:`~repro.eval.harness.QueryFailure` on the response — callers
  get partial results plus an explicit account of what is missing.
* Self-healing — :class:`~repro.service.supervisor.ShardSupervisor`
  owns the worker processes, restarts dead ones from their snapshot,
  and re-admits them via :meth:`ShardRouter.replace_replica` /
  :meth:`ShardRouter.readmit_replica` only after a health *and*
  generation-consistency check.
* Rolling swap — :meth:`ShardRouter.rolling_swap` walks a freshly
  built generation through :meth:`SearchService.swap_searcher` one
  replica at a time: the new snapshot is mapped, the write lock drains
  in-flight readers, the epoch jumps past the old generation (so the
  result cache can never serve stale pairs), and the old mapping is
  dropped.  Serving never stops; each request observes exactly one
  generation per shard.

Fault-injection points: ``shards.scatter`` (per sub-request, context
``shard=<id>, replica=<r>``), ``shards.failover`` (before each
failover sub-request, same context), ``shards.gather`` (per responding
shard, ``shard=<id>``), ``shards.swap`` (per shard swap,
``shard=<id>``).

The router duck-types the service surface (``search`` /
``search_text`` / ``healthz`` / ``metrics_snapshot`` / ``close``), so
:func:`repro.service.http.serve_http` fronts a router exactly as it
fronts a single service; ``/metrics`` merges the per-replica registries
into one deterministic aggregate.  ``/healthz`` reports ``ok`` only
when every replica of every shard is healthy, ``degraded`` while any
shard still has at least one live replica (HTTP 200 — the node is
still answering queries; load balancers must not eject it), and
``down``/``closed`` (HTTP 503) when no query can be answered.
"""

from __future__ import annotations

import json
import os
import selectors
import subprocess
import sys
import tempfile
import threading
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from typing import NamedTuple

from .. import faults
from ..core.base import MatchPair, SearchStats
from ..core.pkwise import PKWiseSearcher
from ..corpus import Document, DocumentCollection
from ..errors import (
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    WorkerStartupError,
)
from ..eval.harness import AggregateRun, QueryFailure
from ..obs import MetricsRegistry
from ..params import SearchParams
from ..persistence import generation_name, load_bundle, save_searcher
from .client import ResilientClient
from .service import SearchService, ServiceResponse

#: Manifest file name inside a shard directory.
MANIFEST_NAME = "shards.json"

#: Manifest format marker (bump on incompatible layout changes).
MANIFEST_FORMAT = "repro-shard-manifest"
MANIFEST_VERSION = 1


def partition_ranges(
    sizes: Sequence[int], num_shards: int
) -> list[tuple[int, int]]:
    """Split ``len(sizes)`` documents into contiguous ``[lo, hi)`` ranges.

    Greedy balance by token count: each shard takes documents while
    adding the next one moves its total closer to the ideal share of
    the remaining tokens, subject to every remaining shard getting at
    least one document.  Deterministic for a given input.
    """
    num_docs = len(sizes)
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > num_docs:
        raise ConfigurationError(
            f"cannot split {num_docs} document(s) into {num_shards} shards"
        )
    remaining_tokens = sum(sizes)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for shard_id in range(num_shards):
        shards_left = num_shards - shard_id
        # Leave at least one document for every shard after this one.
        max_hi = num_docs - (shards_left - 1)
        target = remaining_tokens / shards_left
        hi = lo + 1  # every shard owns at least one document
        taken = sizes[lo]
        while hi < max_hi and abs(taken + sizes[hi] - target) <= abs(taken - target):
            taken += sizes[hi]
            hi += 1
        ranges.append((lo, hi))
        remaining_tokens -= taken
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a plan: a doc-id range and its snapshot file."""

    shard_id: int
    #: Global doc-id range ``[doc_lo, doc_hi)`` this shard owns; shard-
    #: local ids are ``global_id - doc_lo`` (subsets renumber from 0).
    doc_lo: int
    doc_hi: int
    #: Snapshot file name, relative to the manifest directory.
    path: str
    generation: int
    num_tokens: int = 0

    @property
    def num_documents(self) -> int:
        return self.doc_hi - self.doc_lo

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "doc_lo": self.doc_lo,
            "doc_hi": self.doc_hi,
            "path": self.path,
            "generation": self.generation,
            "num_tokens": self.num_tokens,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSpec":
        return cls(
            shard_id=int(payload["shard_id"]),
            doc_lo=int(payload["doc_lo"]),
            doc_hi=int(payload["doc_hi"]),
            path=str(payload["path"]),
            generation=int(payload["generation"]),
            num_tokens=int(payload.get("num_tokens", 0)),
        )


@dataclass(frozen=True)
class ShardPlan:
    """A persisted partition of one corpus into compact shard snapshots.

    ``replicas`` is the serving redundancy: R workers per shard, every
    one mapping the *same* generation-named snapshot file.  Replication
    is a property of the serving topology, not of the on-disk layout —
    a plan built with one replica count can be served with another.
    """

    shards: tuple[ShardSpec, ...]
    num_documents: int
    generation: int
    params: dict
    replicas: int = 1

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def validate(self) -> None:
        """Ranges must tile ``[0, num_documents)`` without gap or overlap."""
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        expected_lo = 0
        for spec in self.shards:
            if spec.doc_lo != expected_lo or spec.doc_hi <= spec.doc_lo:
                raise ConfigurationError(
                    f"shard {spec.shard_id} range [{spec.doc_lo}, "
                    f"{spec.doc_hi}) does not tile the corpus (expected "
                    f"lo={expected_lo})"
                )
            expected_lo = spec.doc_hi
        if expected_lo != self.num_documents:
            raise ConfigurationError(
                f"shard ranges cover {expected_lo} documents, corpus has "
                f"{self.num_documents}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        data: DocumentCollection,
        params: SearchParams,
        directory: str | Path,
        *,
        num_shards: int,
        generation: int = 1,
        replicas: int = 1,
    ) -> "ShardPlan":
        """Build ``num_shards`` compact v3 snapshots + manifest under ``directory``.

        Each shard is built from :meth:`DocumentCollection.subset` of a
        contiguous doc-id range — subsets share the parent vocabulary,
        so every shard file can encode any query identically — and
        written via the v3 envelope so workers mmap it zero-copy.
        Re-building a higher ``generation`` into the same directory
        leaves the previous generation's files in place for the rolling
        swap window.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        sizes = [len(doc) for doc in data]
        ranges = partition_ranges(sizes, num_shards)
        specs = []
        for shard_id, (lo, hi) in enumerate(ranges):
            subset = data.subset(range(lo, hi))
            searcher = PKWiseSearcher(subset, params)
            name = generation_name(f"shard-{shard_id:03d}", generation)
            save_searcher(searcher, directory / name, data=subset, compact=True)
            specs.append(
                ShardSpec(
                    shard_id=shard_id,
                    doc_lo=lo,
                    doc_hi=hi,
                    path=name,
                    generation=generation,
                    num_tokens=sum(sizes[lo:hi]),
                )
            )
        plan = cls(
            shards=tuple(specs),
            num_documents=len(data),
            generation=generation,
            params={
                "w": params.w,
                "tau": params.tau,
                "k_max": params.k_max,
                "m": params.m,
            },
            replicas=replicas,
        )
        plan.validate()
        plan.save(directory)
        return plan

    def save(self, directory: str | Path) -> Path:
        """Atomically write the manifest as ``directory/shards.json``."""
        directory = Path(directory)
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "num_documents": self.num_documents,
            "num_shards": self.num_shards,
            "generation": self.generation,
            "replicas": self.replicas,
            "params": self.params,
            "shards": [spec.to_dict() for spec in self.shards],
        }
        target = directory / MANIFEST_NAME
        scratch = target.with_name(target.name + ".tmp")
        scratch.write_text(json.dumps(payload, indent=2, sort_keys=True))
        scratch.replace(target)
        return target

    @classmethod
    def load(cls, directory: str | Path) -> "ShardPlan":
        """Read and validate ``directory/shards.json``."""
        manifest = Path(directory) / MANIFEST_NAME
        if not manifest.exists():
            raise ConfigurationError(f"no shard manifest at {manifest}")
        try:
            payload = json.loads(manifest.read_text())
        except (json.JSONDecodeError, ValueError) as exc:
            raise ConfigurationError(f"corrupt shard manifest {manifest}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
            raise ConfigurationError(f"{manifest} is not a shard manifest")
        plan = cls(
            shards=tuple(
                ShardSpec.from_dict(entry) for entry in payload["shards"]
            ),
            num_documents=int(payload["num_documents"]),
            generation=int(payload["generation"]),
            params=dict(payload.get("params", {})),
            # Pre-replication manifests carry no key: one worker per shard.
            replicas=int(payload.get("replicas", 1)),
        )
        plan.validate()
        return plan

    @classmethod
    def ensure(
        cls,
        data: DocumentCollection,
        params: SearchParams,
        directory: str | Path,
        *,
        num_shards: int,
        replicas: int = 1,
    ) -> "ShardPlan":
        """Reuse a compatible manifest in ``directory`` or build one.

        A manifest that matches in every way except ``replicas`` is
        reused with the new replica count (snapshot files are shared by
        all replicas of a shard, so changing R is a manifest-only edit).
        """
        directory = Path(directory)
        if (directory / MANIFEST_NAME).exists():
            try:
                plan = cls.load(directory)
            except ConfigurationError:
                plan = None
            if (
                plan is not None
                and plan.num_shards == num_shards
                and plan.num_documents == len(data)
                and plan.params
                == {
                    "w": params.w,
                    "tau": params.tau,
                    "k_max": params.k_max,
                    "m": params.m,
                }
                and all((directory / spec.path).exists() for spec in plan.shards)
            ):
                if plan.replicas != replicas:
                    plan = replace(plan, replicas=replicas)
                    plan.validate()
                    plan.save(directory)
                return plan
        return cls.build(
            data, params, directory, num_shards=num_shards, replicas=replicas
        )


# ----------------------------------------------------------------------
# Shard backends
# ----------------------------------------------------------------------
class _ShardReply(NamedTuple):
    """Normalized per-shard result: shard-local pairs + serving metadata."""

    pairs: tuple
    cached: bool
    index_epoch: int


class LocalShardBackend:
    """One shard served by an in-process :class:`SearchService`."""

    def __init__(
        self,
        service: SearchService,
        *,
        shard_id: int,
        doc_lo: int,
        doc_hi: int,
        replica: int = 0,
    ) -> None:
        self.service = service
        self.shard_id = shard_id
        self.doc_lo = doc_lo
        self.doc_hi = doc_hi
        self.replica = replica

    def search(
        self, query: Document, *, timeout: float | None, routing=None
    ) -> _ShardReply:
        response = self.service.search(query, timeout=timeout, routing=routing)
        return _ShardReply(response.pairs, response.cached, response.index_epoch)

    def healthz(self) -> dict:
        return self.service.healthz()

    def metrics_snapshot(self) -> dict:
        return self.service.metrics_snapshot()

    def swap(self, searcher, data: DocumentCollection | None = None) -> int:
        """Install a new snapshot generation (see ``swap_searcher``)."""
        return self.service.swap_searcher(searcher, data)

    def remove_document(self, local_doc_id: int) -> None:
        self.service.remove_document(local_doc_id)

    def describe(self) -> dict:
        return {"backend": "local", "service": self.service.name}

    def close(self) -> None:
        self.service.close()

    def __repr__(self) -> str:
        return (
            f"LocalShardBackend(shard={self.shard_id}, r{self.replica}, "
            f"docs=[{self.doc_lo},{self.doc_hi}))"
        )


class HTTPShardBackend:
    """One shard served by a worker process over the HTTP front-end.

    Sub-requests go through a :class:`ResilientClient` (its retries
    absorb transient transport faults; the router's hedging absorbs
    tail latency).  The client's per-call deadline is left unbounded —
    the router enforces the per-query deadline at the gather side and
    abandons the shard past it.
    """

    def __init__(
        self,
        base_url: str,
        *,
        shard_id: int,
        doc_lo: int,
        doc_hi: int,
        replica: int = 0,
        retries: int = 2,
        http_timeout: float = 30.0,
        pid: int | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.shard_id = shard_id
        self.doc_lo = doc_lo
        self.doc_hi = doc_hi
        self.replica = replica
        self.pid = pid
        self._client = ResilientClient(
            base_url,
            retries=retries,
            deadline=None,
            http_timeout=http_timeout,
        )

    def search(
        self, query: Document, *, timeout: float | None, routing=None
    ) -> _ShardReply:
        reply = self._client.search(
            token_ids=list(query.tokens), timeout=timeout, routing=routing
        )
        pairs = tuple(MatchPair(*pair) for pair in reply.get("pairs", ()))
        return _ShardReply(
            pairs, bool(reply.get("cached")), int(reply.get("index_epoch", 0))
        )

    def healthz(self) -> dict:
        return self._client.healthz()

    def metrics_snapshot(self) -> dict:
        return self._client.metrics()

    def describe(self) -> dict:
        info = {"backend": "http", "url": self.base_url}
        if self.pid is not None:
            info["pid"] = self.pid
        return info

    def close(self) -> None:
        """The worker process belongs to its supervisor; nothing to do."""

    def __repr__(self) -> str:
        return (
            f"HTTPShardBackend(shard={self.shard_id}, r{self.replica}, "
            f"{self.base_url!r}, docs=[{self.doc_lo},{self.doc_hi}))"
        )


# ----------------------------------------------------------------------
# Replica sets
# ----------------------------------------------------------------------
class ReplicaSet:
    """All replicas of one shard: same doc range, same snapshot.

    The router scatters to one replica per shard and fails over through
    the rest.  ``down`` holds replica indices the router (or the
    supervisor) has marked unhealthy; :meth:`preference_order` lists
    healthy replicas first so a fresh query never starts on a replica
    known to be dead — down replicas stay at the tail as a last resort
    (they may have come back since the marker was set).
    """

    def __init__(self, shard_id: int, backends: Sequence) -> None:
        if not backends:
            raise ConfigurationError(f"shard {shard_id} has no replicas")
        ranges = {(b.doc_lo, b.doc_hi) for b in backends}
        if len(ranges) != 1:
            raise ConfigurationError(
                f"shard {shard_id} replicas disagree on doc range: "
                f"{sorted(ranges)}"
            )
        self.shard_id = shard_id
        self.doc_lo = backends[0].doc_lo
        self.doc_hi = backends[0].doc_hi
        # Stable replica numbering: honor an existing replica attribute,
        # fall back to listing order, then renumber densely 0..R-1 so
        # failover order and metrics labels are deterministic.
        ordered = sorted(
            enumerate(backends),
            key=lambda item: (getattr(item[1], "replica", 0), item[0]),
        )
        self.replicas = [backend for _, backend in ordered]
        for index, backend in enumerate(self.replicas):
            backend.replica = index
        self.down: set[int] = set()

    def __len__(self) -> int:
        return len(self.replicas)

    def backend(self, replica: int):
        for candidate in self.replicas:
            if candidate.replica == replica:
                return candidate
        raise ConfigurationError(
            f"shard {self.shard_id} has no replica {replica} "
            f"(has {[b.replica for b in self.replicas]})"
        )

    def preference_order(self) -> list:
        healthy = [b for b in self.replicas if b.replica not in self.down]
        downed = [b for b in self.replicas if b.replica in self.down]
        return healthy + downed

    def __repr__(self) -> str:
        return (
            f"ReplicaSet(shard={self.shard_id}, replicas={len(self.replicas)}, "
            f"down={sorted(self.down)}, docs=[{self.doc_lo},{self.doc_hi}))"
        )


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class RouterResponse(ServiceResponse):
    """A gathered scatter response: merged pairs + per-shard account.

    ``pairs`` hold *global* doc ids in canonical order.  ``failures``
    lists one :class:`~repro.eval.harness.QueryFailure` per shard that
    failed or missed the deadline (``position`` is the shard id);
    ``partial`` is True when any shard is missing.  ``index_epoch`` is
    the sum of the responding shards' epochs — it changes whenever any
    shard's state does.
    """

    __slots__ = ("failures", "shard_epochs")

    def __init__(
        self,
        pairs: tuple,
        cached: bool,
        seconds: float,
        index_epoch: int,
        failures: Sequence[QueryFailure] = (),
        shard_epochs: dict | None = None,
    ) -> None:
        super().__init__(pairs, cached, seconds, index_epoch)
        self.failures = list(failures)
        self.shard_epochs = dict(shard_epochs or {})

    @property
    def partial(self) -> bool:
        return bool(self.failures)

    def __repr__(self) -> str:
        return (
            f"RouterResponse({len(self.pairs)} pairs, cached={self.cached}, "
            f"shards={len(self.shard_epochs)}, "
            f"failures={len(self.failures)})"
        )


class ShardRouter:
    """Scatter-gather front over N shard backends.

    Duck-types the :class:`SearchService` surface so the HTTP front-end
    (:func:`~repro.service.http.serve_http`) and existing clients work
    unchanged.  See the module docstring for semantics.

    Parameters
    ----------
    backends:
        Shard backends; backends sharing a ``shard_id`` are replicas of
        the same shard (identical doc range).  The per-shard ranges
        must be disjoint, contiguous, and tile ``[0, num_documents)``.
    data:
        Collection used to encode ``search_text`` queries (any shard
        subset works — subsets share the parent vocabulary).
    default_timeout:
        Per-query deadline (seconds) across scatter + gather when the
        caller passes none.  ``None`` = wait for every shard.
    hedge_after:
        Seconds to wait for a shard before sending one hedged duplicate
        sub-request (to the next replica, when there is one); first
        reply wins.  ``None`` disables hedging.
    pool_size:
        Scatter thread-pool size (default ``4 *`` total backend count —
        enough for hedges and failovers plus concurrent callers).
    """

    def __init__(
        self,
        backends: Sequence,
        data: DocumentCollection | None = None,
        *,
        default_timeout: float | None = None,
        hedge_after: float | None = None,
        pool_size: int | None = None,
        name: str = "shard-router",
    ) -> None:
        backends = list(backends)
        if not backends:
            raise ConfigurationError("a ShardRouter needs at least one backend")
        grouped: dict[int, list] = {}
        for backend in backends:
            grouped.setdefault(backend.shard_id, []).append(backend)
        sets = sorted(
            (ReplicaSet(shard_id, group) for shard_id, group in grouped.items()),
            key=lambda rset: rset.doc_lo,
        )
        previous_hi = 0
        for rset in sets:
            if rset.doc_lo != previous_hi:
                raise ConfigurationError(
                    f"shard {rset.shard_id} starts at doc {rset.doc_lo}, "
                    f"expected {previous_hi} (ranges must tile the corpus)"
                )
            previous_hi = rset.doc_hi
        self._sets = sets
        self._by_id = {rset.shard_id: rset for rset in sets}
        self.data = data
        self.name = name
        self.default_timeout = default_timeout
        self.hedge_after = hedge_after
        self.started_at = time.time()
        self._closed = False
        self._supervisor = None
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size or 4 * len(backends),
            thread_name_prefix=f"{name}-scatter",
        )
        self._metrics_lock = threading.Lock()
        self._health_lock = threading.Lock()
        self._registry = MetricsRegistry()
        self._registry.gauge("router.shards").set(len(sets))
        self._registry.gauge("router.replicas").set(len(backends))
        self._last_epochs = {rset.shard_id: 0 for rset in sets}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def local(
        cls,
        data: DocumentCollection,
        params: SearchParams,
        *,
        shards: int,
        replicas: int = 1,
        compact: bool = True,
        default_timeout: float | None = None,
        hedge_after: float | None = None,
        name: str = "shard-router",
        **service_kwargs,
    ) -> "ShardRouter":
        """Build an in-process router: one :class:`SearchService` per replica.

        Every replica of a shard gets its *own* searcher over the same
        document subset, mirroring the process isolation of worker
        replicas — mutations (tombstones, swaps) are applied per
        replica, never shared through one object.
        """
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        sizes = [len(doc) for doc in data]
        ranges = partition_ranges(sizes, shards)
        backends = []
        for shard_id, (lo, hi) in enumerate(ranges):
            subset = data.subset(range(lo, hi))
            for replica in range(replicas):
                searcher = PKWiseSearcher(subset, params)
                if compact:
                    searcher = searcher.compacted()
                service = SearchService(
                    searcher,
                    subset,
                    name=f"{name}-shard-{shard_id:03d}-r{replica}",
                    **service_kwargs,
                )
                backends.append(
                    LocalShardBackend(
                        service,
                        shard_id=shard_id,
                        doc_lo=lo,
                        doc_hi=hi,
                        replica=replica,
                    )
                )
        return cls(
            backends,
            data,
            default_timeout=default_timeout,
            hedge_after=hedge_after,
            name=name,
        )

    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        mmap: bool = True,
        replicas: int | None = None,
        default_timeout: float | None = None,
        hedge_after: float | None = None,
        name: str = "shard-router",
        **service_kwargs,
    ) -> "ShardRouter":
        """Serve an existing :class:`ShardPlan` directory in process.

        Every replica loads its shard snapshot independently
        (``mmap=True`` maps the v3 sections zero-copy — the page cache
        is shared, the searcher state is not) behind its own
        :class:`SearchService`.  ``replicas=None`` uses the plan's
        recorded replica count.
        """
        directory = Path(directory)
        plan = ShardPlan.load(directory)
        if replicas is None:
            replicas = plan.replicas
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        backends = []
        encode_data = None
        for spec in plan.shards:
            for replica in range(replicas):
                bundle = load_bundle(directory / spec.path, mmap=mmap)
                if bundle.data is None:
                    raise ConfigurationError(
                        f"shard snapshot {spec.path} has no document bundle"
                    )
                if encode_data is None:
                    encode_data = bundle.data
                service = SearchService(
                    bundle.searcher,
                    bundle.data,
                    name=f"{name}-shard-{spec.shard_id:03d}-r{replica}",
                    **service_kwargs,
                )
                backends.append(
                    LocalShardBackend(
                        service,
                        shard_id=spec.shard_id,
                        doc_lo=spec.doc_lo,
                        doc_hi=spec.doc_hi,
                        replica=replica,
                    )
                )
        return cls(
            backends,
            encode_data,
            default_timeout=default_timeout,
            hedge_after=hedge_after,
            name=name,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backends(self) -> tuple:
        """Primary (replica-0) backend of every shard, in doc order."""
        return tuple(rset.replicas[0] for rset in self._sets)

    @property
    def replica_sets(self) -> tuple:
        return tuple(self._sets)

    @property
    def all_backends(self) -> tuple:
        """Every backend of every replica set, shard-major order."""
        return tuple(
            backend for rset in self._sets for backend in rset.replicas
        )

    @property
    def num_shards(self) -> int:
        return len(self._sets)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def index_epoch(self) -> int:
        """Sum of the last-observed per-shard epochs (monotone)."""
        return sum(self._last_epochs.values())

    # ------------------------------------------------------------------
    # Replica health (used by the failover path and the supervisor)
    # ------------------------------------------------------------------
    def mark_replica_down(self, shard_id: int, replica: int) -> None:
        """Deprioritize a replica: new queries try it last, not first."""
        rset = self._require_set(shard_id)
        with self._health_lock:
            rset.down.add(replica)
            self._update_down_gauge()

    def readmit_replica(self, shard_id: int, replica: int) -> None:
        """Clear a replica's down marker so it leads rotation again."""
        rset = self._require_set(shard_id)
        with self._health_lock:
            rset.down.discard(replica)
            self._update_down_gauge()

    def replace_replica(self, shard_id: int, replica: int, backend) -> None:
        """Swap in a fresh backend for one replica slot (same doc range).

        Used by the supervisor after restarting a dead worker: the new
        backend points at the restarted process.  The slot keeps its
        down marker until :meth:`readmit_replica` — callers re-admit
        only after the replacement passes its health checks.
        """
        rset = self._require_set(shard_id)
        if (backend.doc_lo, backend.doc_hi) != (rset.doc_lo, rset.doc_hi):
            raise ConfigurationError(
                f"replacement for shard {shard_id} covers "
                f"[{backend.doc_lo},{backend.doc_hi}), replica set owns "
                f"[{rset.doc_lo},{rset.doc_hi})"
            )
        if backend.shard_id != shard_id:
            raise ConfigurationError(
                f"replacement carries shard_id {backend.shard_id}, "
                f"expected {shard_id}"
            )
        backend.replica = replica
        with self._health_lock:
            for position, existing in enumerate(rset.replicas):
                if existing.replica == replica:
                    rset.replicas[position] = backend
                    break
            else:
                raise ConfigurationError(
                    f"shard {shard_id} has no replica {replica} to replace"
                )
        with self._metrics_lock:
            self._registry.counter("router.replica_replacements").inc()

    def attach_supervisor(self, supervisor) -> None:
        """Surface a supervisor's status in healthz/metrics."""
        self._supervisor = supervisor

    def _require_set(self, shard_id: int) -> ReplicaSet:
        rset = self._by_id.get(shard_id)
        if rset is None:
            raise ConfigurationError(f"unknown shard id {shard_id}")
        return rset

    def _update_down_gauge(self) -> None:
        # Caller holds _health_lock.  Gauges merge by max across
        # snapshots, so this records the worst observed outage depth.
        total_down = sum(len(rset.down) for rset in self._sets)
        with self._metrics_lock:
            self._registry.gauge("router.replicas_down").set(total_down)

    def _note_replica_failure(self, backend, error: Exception) -> None:
        with self._health_lock:
            rset = self._by_id[backend.shard_id]
            rset.down.add(backend.replica)
            self._update_down_gauge()
        with self._metrics_lock:
            self._registry.counter("router.replica_failures").inc()
            self._registry.counter(
                f"router.replica_failures.shard{backend.shard_id:03d}"
                f".r{backend.replica}"
            ).inc()

    def _note_replica_success(self, backend) -> None:
        rset = self._by_id[backend.shard_id]
        if backend.replica in rset.down:
            with self._health_lock:
                rset.down.discard(backend.replica)
                self._update_down_gauge()

    def healthz(self) -> dict:
        """Router liveness: aggregate status plus one entry per shard.

        ``status`` is ``ok`` only when *every replica of every shard*
        answers ok; ``degraded`` while at least one shard is reachable
        (queries still get answers — partial at worst, complete
        whenever each shard keeps one live replica).  The HTTP
        front-end maps
        ``ok``/``degraded`` to 200 — a degraded router still answers
        queries, so balancers must not eject it — and reserves 503 for
        ``down`` (no shard reachable) and ``closed``.
        """
        shards = []
        shards_reachable = 0
        shards_fully_ok = 0
        for rset in self._sets:
            replica_entries = []
            replicas_ok = 0
            for backend in rset.replicas:
                entry = {"replica": backend.replica}
                entry.update(backend.describe())
                try:
                    health = backend.healthz()
                except Exception as exc:  # noqa: BLE001 - failure = unreachable
                    entry["status"] = "unreachable"
                    entry["error"] = str(exc)
                else:
                    entry["status"] = health.get("status", "unknown")
                    entry["documents"] = health.get("documents")
                    entry["index_epoch"] = health.get("index_epoch")
                    if entry["status"] == "ok":
                        replicas_ok += 1
                replica_entries.append(entry)
            if replicas_ok == len(rset.replicas):
                shard_status = "ok"
            elif replicas_ok:
                shard_status = "degraded"
            else:
                shard_status = "down"
            if replicas_ok:
                shards_reachable += 1
            if shard_status == "ok":
                shards_fully_ok += 1
            shards.append(
                {
                    "shard_id": rset.shard_id,
                    "doc_lo": rset.doc_lo,
                    "doc_hi": rset.doc_hi,
                    "status": shard_status,
                    "replicas_ok": replicas_ok,
                    "num_replicas": len(rset.replicas),
                    "replicas": replica_entries,
                }
            )
        if self._closed:
            status = "closed"
        elif shards_fully_ok == len(self._sets):
            status = "ok"
        elif shards_reachable:
            status = "degraded"
        else:
            status = "down"
        payload = {
            "status": status,
            "service": self.name,
            "num_shards": len(self._sets),
            "shards_ok": shards_reachable,
            "documents": self._sets[-1].doc_hi,
            "index_epoch": self.index_epoch,
            "uptime_seconds": time.time() - self.started_at,
            "shards": shards,
        }
        if self._supervisor is not None:
            payload["supervisor"] = self._supervisor.status()
        return payload

    def metrics_snapshot(self) -> dict:
        """Router counters + every replica's registry, merged.

        Counters and timers sum across replicas (deterministic for a
        deterministic workload), gauges keep the maximum — the same
        envelope ``check_regression.py`` diffs for a single service.
        A supervisor attached via :meth:`attach_supervisor` contributes
        its restart/readmit/quarantine counters too.
        """
        with self._metrics_lock:
            registry = MetricsRegistry.from_snapshot(self._registry.snapshot())
        for rset in self._sets:
            for backend in rset.replicas:
                try:
                    snapshot = backend.metrics_snapshot()
                except Exception:  # noqa: BLE001 - a dead replica has no metrics
                    registry.counter("router.metrics_unavailable").inc()
                    continue
                registry.merge_snapshot(snapshot.get("metrics", {}))
        if self._supervisor is not None:
            registry.merge_snapshot(self._supervisor.metrics_registry.snapshot())
        return {
            "name": self.name,
            "schema_version": 1,
            "metrics": registry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def search(
        self,
        query: Document,
        *,
        timeout: float | None = None,
        routing=None,
    ) -> RouterResponse:
        """Scatter ``query`` to every shard and gather a merged response.

        Raises only when *no* shard responded (the last shard error is
        chained); otherwise missing shards are reported on
        ``response.failures`` and the merged pairs cover the shards
        that answered.  ``routing`` is forwarded to every shard as its
        per-request fingerprint routing override.
        """
        if self._closed:
            raise ServiceClosedError(f"{self.name} is closed")
        if timeout is None:
            timeout = self.default_timeout
        start = time.monotonic()
        deadline_at = start + timeout if timeout is not None else None
        with self._metrics_lock:
            self._registry.counter("router.requests").inc()
        results, failures, last_error = self._scatter_gather(
            query, deadline_at, routing
        )
        if not results:
            with self._metrics_lock:
                self._registry.counter("router.errors").inc()
            error = ServiceError(
                f"all {len(self._sets)} shard(s) failed for query "
                f"{query.name or query.doc_id}: "
                + "; ".join(f.error_message for f in failures)
            )
            error.failures = failures
            raise error from last_error
        pairs: list[MatchPair] = []
        shard_epochs: dict[int, int] = {}
        cached_votes: list[bool] = []
        for rset in self._sets:
            reply = results.get(rset.shard_id)
            if reply is None:
                continue
            faults.inject("shards.gather", shard=rset.shard_id)
            shard_epochs[rset.shard_id] = reply.index_epoch
            self._last_epochs[rset.shard_id] = max(
                self._last_epochs[rset.shard_id], reply.index_epoch
            )
            cached_votes.append(reply.cached)
            offset = rset.doc_lo
            # Shard-local doc ids renumber from 0 within [doc_lo, doc_hi);
            # adding the offset restores global ids.  Ranges ascend and
            # every reply is canonically ordered, so appending in shard
            # order keeps the merged list canonical without a re-sort.
            pairs.extend(
                MatchPair(pair[0] + offset, pair[1], pair[2], pair[3])
                for pair in reply.pairs
            )
        elapsed = time.monotonic() - start
        with self._metrics_lock:
            self._registry.counter("router.completed").inc()
            self._registry.timer("router.request_seconds").add(elapsed)
            if failures:
                self._registry.counter("router.partial_responses").inc()
                self._registry.counter("router.shard_failures").inc(len(failures))
        return RouterResponse(
            tuple(pairs),
            cached=bool(cached_votes) and all(cached_votes),
            seconds=elapsed,
            index_epoch=sum(shard_epochs.values()),
            failures=failures,
            shard_epochs=shard_epochs,
        )

    def search_text(
        self, text: str, *, timeout: float | None = None, routing=None
    ) -> RouterResponse:
        """Encode ``text`` (any shard vocabulary works) and search it."""
        if self.data is None:
            raise ReproError(
                "router has no document collection to encode text queries; "
                "submit pre-encoded Document queries instead"
            )
        return self.search(
            self.data.encode_query(text), timeout=timeout, routing=routing
        )

    def search_many(
        self,
        queries: Sequence[Document],
        *,
        timeout: float | None = None,
        routing=None,
    ) -> AggregateRun:
        """Serve a batch; shard failures aggregate per query position."""
        start = time.monotonic()
        results_by_query: dict[int, list[MatchPair]] = {}
        failures: list[QueryFailure] = []
        for position, query in enumerate(queries):
            try:
                response = self.search(query, timeout=timeout, routing=routing)
            except ReproError as exc:
                failures.append(
                    QueryFailure(
                        position=position,
                        query_id=query.doc_id,
                        query_name=query.name,
                        error_type=type(exc).__name__,
                        error_message=str(exc),
                        attempts=1,
                    )
                )
                continue
            results_by_query[position] = list(response.pairs)
            failures.extend(
                replace(shard_failure, position=position)
                for shard_failure in response.failures
            )
        return AggregateRun(
            name=self.name,
            num_queries=len(queries),
            total_seconds=time.monotonic() - start,
            stats=SearchStats(),
            results_by_query=results_by_query,
            failures=failures,
        )

    # ------------------------------------------------------------------
    def _shard_call(
        self,
        backend,
        query: Document,
        deadline_at: float | None,
        routing=None,
        *,
        is_failover: bool = False,
    ):
        if is_failover:
            faults.inject(
                "shards.failover",
                shard=backend.shard_id,
                replica=backend.replica,
            )
        faults.inject(
            "shards.scatter", shard=backend.shard_id, replica=backend.replica
        )
        timeout = None
        if deadline_at is not None:
            timeout = max(1e-3, deadline_at - time.monotonic())
        return backend.search(query, timeout=timeout, routing=routing)

    def _shard_failure(
        self, query: Document, shard_id: int, error: Exception, attempts: int
    ) -> QueryFailure:
        return QueryFailure(
            position=shard_id,
            query_id=query.doc_id,
            query_name=f"{query.name or 'query'}@shard-{shard_id:03d}",
            error_type=type(error).__name__,
            error_message=str(error),
            attempts=attempts,
        )

    def _scatter_gather(
        self, query: Document, deadline_at: float | None, routing=None
    ):
        """Fan out one sub-request per shard; fail over, hedge, collect.

        Per shard the replicas form a preference list (healthy first).
        The first replica is tried immediately; every *failed* attempt
        advances to the next untried replica (``router.failovers``)
        before the shard is given up on — a shard fails only once all
        of its replicas have failed or the deadline passes.  Hedging
        races one extra replica per straggling shard after
        ``hedge_after`` seconds; first reply wins.
        """
        # Per-shard scatter state, keyed by shard id.
        order: dict[int, list] = {}  # replica preference order
        cursor: dict[int, int] = {}  # next index in order to try
        in_flight: dict[int, int] = {}  # outstanding attempts
        attempts: dict[int, int] = {}  # total attempts started
        errors: dict[int, Exception] = {}
        outstanding: dict = {}  # future -> (shard_id, backend)
        unresolved: set[int] = set(self._by_id)
        results: dict[int, _ShardReply] = {}
        failures: list[QueryFailure] = []
        last_error: Exception | None = None

        def submit(shard_id: int, *, is_failover: bool) -> None:
            backend = order[shard_id][cursor[shard_id] % len(order[shard_id])]
            cursor[shard_id] += 1
            attempts[shard_id] += 1
            in_flight[shard_id] += 1
            future = self._pool.submit(
                self._shard_call,
                backend,
                query,
                deadline_at,
                routing,
                is_failover=is_failover,
            )
            outstanding[future] = (shard_id, backend)

        with self._health_lock:
            for rset in self._sets:
                order[rset.shard_id] = rset.preference_order()
                cursor[rset.shard_id] = 0
                in_flight[rset.shard_id] = 0
                attempts[rset.shard_id] = 0
        for shard_id in (rset.shard_id for rset in self._sets):
            submit(shard_id, is_failover=False)
        hedge_at = (
            time.monotonic() + self.hedge_after
            if self.hedge_after is not None
            else None
        )
        while outstanding and unresolved:
            now = time.monotonic()
            if deadline_at is not None and now >= deadline_at:
                break
            wait_until = deadline_at
            if hedge_at is not None:
                wait_until = (
                    hedge_at if wait_until is None else min(wait_until, hedge_at)
                )
            wait_timeout = (
                None if wait_until is None else max(0.0, wait_until - now)
            )
            done, _ = wait(
                set(outstanding), timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                shard_id, backend = outstanding.pop(future)
                in_flight[shard_id] -= 1
                if shard_id not in unresolved:
                    continue  # another attempt already answered
                try:
                    results[shard_id] = future.result()
                except Exception as exc:  # noqa: BLE001 - per-replica isolation
                    errors[shard_id] = exc
                    last_error = exc
                    self._note_replica_failure(backend, exc)
                    if cursor[shard_id] < len(order[shard_id]):
                        # Untried replicas remain: fail over before the
                        # shard is declared dead.
                        with self._metrics_lock:
                            self._registry.counter("router.failovers").inc()
                        submit(shard_id, is_failover=True)
                    elif in_flight[shard_id] == 0:
                        # Every replica tried, none still racing.
                        failures.append(
                            self._shard_failure(
                                query, shard_id, exc, attempts[shard_id]
                            )
                        )
                        unresolved.discard(shard_id)
                else:
                    unresolved.discard(shard_id)
                    self._note_replica_success(backend)
            if hedge_at is not None and time.monotonic() >= hedge_at:
                hedge_at = None  # at most one hedge per shard per query
                for shard_id in sorted(unresolved):
                    if in_flight[shard_id] == 0:
                        continue  # failover already racing; nothing to hedge
                    with self._metrics_lock:
                        self._registry.counter("router.hedges").inc()
                    # The hedge goes to the next replica in preference
                    # order (wrapping back to the head when every
                    # replica already has an attempt out).
                    submit(shard_id, is_failover=False)
        for shard_id in sorted(unresolved):
            error = errors.get(shard_id)
            if error is None:
                error = DeadlineExceededError(
                    f"shard {shard_id} did not reply within the per-query "
                    f"deadline"
                )
                last_error = error
            failures.append(
                self._shard_failure(query, shard_id, error, attempts[shard_id])
            )
        for future in outstanding:
            future.cancel()  # best effort; late replies are discarded
        failures.sort(key=lambda failure: failure.position)
        return results, failures, last_error

    # ------------------------------------------------------------------
    # Mutation / swap
    # ------------------------------------------------------------------
    def remove_document(self, doc_id: int) -> None:
        """Tombstone a *global* doc id on every replica of its shard.

        Replicas must stay pair-identical — a tombstone applied to one
        replica only would make results depend on which replica served
        the query — so the removal either reaches all replicas or
        raises before touching any.
        """
        for rset in self._sets:
            if rset.doc_lo <= doc_id < rset.doc_hi:
                removers = []
                for backend in rset.replicas:
                    remover = getattr(backend, "remove_document", None)
                    if remover is None:
                        raise ServiceError(
                            f"shard {rset.shard_id} replica {backend.replica} "
                            f"backend does not support remove_document "
                            f"(rebuild + rolling swap instead)"
                        )
                    removers.append(remover)
                for remover in removers:
                    remover(doc_id - rset.doc_lo)
                return
        raise ConfigurationError(
            f"doc_id {doc_id} outside corpus [0, {self._sets[-1].doc_hi})"
        )

    def swap_shard(
        self,
        shard_id: int,
        searcher,
        data: DocumentCollection | None = None,
        *,
        replica: int | None = None,
    ) -> int:
        """Swap one shard to a new snapshot generation without downtime.

        ``replica=None`` installs ``searcher`` on every replica of the
        shard (fine for frozen snapshots — per-replica mutations need
        per-replica searcher objects: pass an explicit ``replica`` per
        freshly loaded bundle, as :meth:`rolling_swap` does).
        """
        rset = self._require_set(shard_id)
        faults.inject("shards.swap", shard=shard_id)
        targets = (
            rset.replicas if replica is None else [rset.backend(replica)]
        )
        generation = 0
        for backend in targets:
            swap = getattr(backend, "swap", None)
            if swap is None:
                raise ServiceError(
                    f"shard {shard_id} replica {backend.replica} backend "
                    f"({type(backend).__name__}) does not support in-process "
                    f"swap"
                )
            generation = max(generation, swap(searcher, data))
        with self._metrics_lock:
            self._registry.counter("router.swaps").inc()
        return generation

    def rolling_swap(
        self, directory: str | Path, *, mmap: bool = True
    ) -> int:
        """Swap every shard to the generation in ``directory``'s manifest.

        One replica at a time: load a *fresh* copy of the new snapshot
        (so replicas never share mutable searcher state), then
        :meth:`swap_shard` it — each swap drains that replica's
        in-flight readers under the write lock while every other
        replica keeps serving.  Returns the new generation number.
        """
        directory = Path(directory)
        plan = ShardPlan.load(directory)
        if plan.num_shards != len(self._sets):
            raise ConfigurationError(
                f"plan has {plan.num_shards} shards, router has "
                f"{len(self._sets)}"
            )
        for spec in plan.shards:
            rset = self._by_id.get(spec.shard_id)
            if rset is None or (rset.doc_lo, rset.doc_hi) != (
                spec.doc_lo,
                spec.doc_hi,
            ):
                raise ConfigurationError(
                    f"shard {spec.shard_id} range mismatch between plan "
                    f"and router"
                )
        for spec in plan.shards:
            rset = self._by_id[spec.shard_id]
            for backend in list(rset.replicas):
                bundle = load_bundle(directory / spec.path, mmap=mmap)
                self.swap_shard(
                    spec.shard_id,
                    bundle.searcher,
                    bundle.data,
                    replica=backend.replica,
                )
        return plan.generation

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop routing, then close every backend.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        supervisor = self._supervisor
        if supervisor is not None:
            stop = getattr(supervisor, "stop", None)
            if stop is not None:
                stop()
        self._pool.shutdown(wait=True)
        for rset in self._sets:
            for backend in rset.replicas:
                backend.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardRouter({self.name!r}, shards={len(self._sets)}, "
            f"replicas={[len(rset) for rset in self._sets]}, "
            f"hedge_after={self.hedge_after}, closed={self._closed})"
        )


# ----------------------------------------------------------------------
# Worker processes (subprocess shards for the CLI / smoke / bench)
# ----------------------------------------------------------------------
@dataclass
class ShardWorker:
    """A spawned shard worker process and its serving URL."""

    spec: ShardSpec
    process: subprocess.Popen
    url: str
    replica: int = 0
    #: Where the worker's stderr is captured (a temp file, so a chatty
    #: long-running worker can never deadlock on a full pipe); read
    #: back into :class:`WorkerStartupError` when startup fails.
    stderr_path: Path | None = None

    @property
    def pid(self) -> int:
        return self.process.pid


#: How much captured worker stderr a startup error carries.
_STDERR_TAIL_BYTES = 4000


def _stderr_tail(stderr_path: Path | None) -> str:
    if stderr_path is None:
        return ""
    try:
        text = Path(stderr_path).read_text(errors="replace")
    except OSError:
        return ""
    return text[-_STDERR_TAIL_BYTES:]


def _read_serving_line(
    process: subprocess.Popen,
    timeout: float,
    *,
    stderr_path: Path | None = None,
) -> str:
    """Read a worker's stdout until its ``SERVING <url>`` line.

    ``poll()``\\ s the child between reads: a worker that dies before
    serving fails fast with a :class:`~repro.errors.WorkerStartupError`
    carrying the exit code and captured stderr, instead of blocking the
    parent on a ``readline`` that will never return.
    """
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    selector: selectors.DefaultSelector | None = selectors.DefaultSelector()
    try:
        selector.register(process.stdout, selectors.EVENT_READ)
    except (ValueError, OSError, KeyError):
        # Not a selectable stream (e.g. a test double); fall back to
        # short blocking reads guarded by the same poll()/deadline loop.
        selector.close()
        selector = None
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerStartupError(
                    f"shard worker (pid {process.pid}) did not serve within "
                    f"{timeout}s",
                    returncode=process.poll(),
                    stderr=_stderr_tail(stderr_path),
                )
            if selector is not None:
                # Wait for readable stdout first: a worker that printed
                # SERVING and then exited still hands over its URL.
                ready = selector.select(timeout=min(0.1, remaining))
                if not ready:
                    if process.poll() is not None:
                        raise WorkerStartupError(
                            f"shard worker (pid {process.pid}) exited with "
                            f"code {process.returncode} before serving",
                            returncode=process.returncode,
                            stderr=_stderr_tail(stderr_path),
                        )
                    continue
            line = process.stdout.readline()
            if not line:
                # EOF: the worker closed stdout without ever serving.
                returncode = process.poll()
                if returncode is None:
                    if selector is None:
                        if process.poll() is None:
                            time.sleep(0.05)
                            continue
                    try:
                        returncode = process.wait(timeout=1.0)
                    except subprocess.TimeoutExpired:
                        returncode = None
                raise WorkerStartupError(
                    f"shard worker (pid {process.pid}) closed stdout "
                    f"(exit code {returncode}) before serving",
                    returncode=returncode,
                    stderr=_stderr_tail(stderr_path),
                )
            if line.startswith("SERVING "):
                return line.split(None, 1)[1].strip()
    finally:
        if selector is not None:
            selector.close()


def _spawn_worker_process(
    directory: Path,
    spec: ShardSpec,
    *,
    cache_size: int | None,
    workers: int | None,
) -> tuple[subprocess.Popen, Path]:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--index",
        str(directory / spec.path),
        "--port",
        "0",
        "--mmap",
    ]
    if cache_size is not None:
        command += ["--cache-size", str(cache_size)]
    if workers is not None:
        command += ["--workers", str(workers)]
    stderr_fd, stderr_name = tempfile.mkstemp(
        prefix=f"repro-shard-{spec.shard_id:03d}-", suffix=".stderr"
    )
    try:
        process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=stderr_fd, text=True
        )
    except BaseException:
        os.close(stderr_fd)
        Path(stderr_name).unlink(missing_ok=True)
        raise
    os.close(stderr_fd)
    return process, Path(stderr_name)


def spawn_one_worker(
    directory: str | Path,
    spec: ShardSpec,
    *,
    replica: int = 0,
    cache_size: int | None = None,
    workers: int | None = None,
    startup_timeout: float = 60.0,
) -> ShardWorker:
    """Start (and wait for) a single shard worker process.

    Used by :class:`~repro.service.supervisor.ShardSupervisor` to
    restart one dead replica without touching its siblings.  Raises
    :class:`~repro.errors.WorkerStartupError` — with the worker's exit
    code and stderr tail — when the process dies or hangs before its
    ``SERVING`` line; the process is reaped before the error leaves.
    """
    directory = Path(directory)
    process, stderr_path = _spawn_worker_process(
        directory, spec, cache_size=cache_size, workers=workers
    )
    worker = ShardWorker(
        spec=spec,
        process=process,
        url="",
        replica=replica,
        stderr_path=stderr_path,
    )
    try:
        worker.url = _read_serving_line(
            process, startup_timeout, stderr_path=stderr_path
        )
    except BaseException:
        stop_shard_workers([worker])
        raise
    return worker


def spawn_shard_workers(
    directory: str | Path,
    plan: ShardPlan | None = None,
    *,
    cache_size: int | None = None,
    workers: int | None = None,
    startup_timeout: float = 60.0,
    replicas: int | None = None,
) -> list[ShardWorker]:
    """Start ``replicas`` ``repro serve`` processes per shard of ``plan``.

    Each worker maps its shard's compact snapshot (``--mmap``; replicas
    of a shard share the file, and the page cache deduplicates the
    mapping) and binds an ephemeral port; the returned
    :class:`ShardWorker`\\ s carry the parsed URLs, shard-major
    (``[s0r0, s0r1, ..., s1r0, ...]``).  ``replicas=None`` uses the
    plan's recorded count.  All processes launch before any ``SERVING``
    line is awaited, so startup latency is one worker's, not the sum.
    On any startup failure — including a worker that dies before
    serving, which raises :class:`~repro.errors.WorkerStartupError`
    with its stderr — every already-spawned worker is terminated before
    the error propagates.
    """
    directory = Path(directory)
    if plan is None:
        plan = ShardPlan.load(directory)
    if replicas is None:
        replicas = plan.replicas
    if replicas < 1:
        raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
    spawned: list[ShardWorker] = []
    try:
        for spec in plan.shards:
            for replica in range(replicas):
                process, stderr_path = _spawn_worker_process(
                    directory, spec, cache_size=cache_size, workers=workers
                )
                spawned.append(
                    ShardWorker(
                        spec=spec,
                        process=process,
                        url="",
                        replica=replica,
                        stderr_path=stderr_path,
                    )
                )
        for worker in spawned:
            worker.url = _read_serving_line(
                worker.process, startup_timeout,
                stderr_path=worker.stderr_path,
            )
        return spawned
    except BaseException:
        stop_shard_workers(spawned)
        raise


def stop_shard_workers(workers, *, timeout: float = 5.0) -> None:
    """Terminate (then kill) every worker process.  Idempotent."""
    workers = list(workers)
    for worker in workers:
        if worker.process.poll() is None:
            worker.process.terminate()
    deadline = time.monotonic() + timeout
    for worker in workers:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            worker.process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            worker.process.kill()
            worker.process.wait()
        if worker.process.stdout is not None:
            worker.process.stdout.close()
        stderr_path = getattr(worker, "stderr_path", None)
        if stderr_path is not None:
            Path(stderr_path).unlink(missing_ok=True)


def backends_for_workers(
    workers: Sequence[ShardWorker],
    *,
    retries: int = 2,
    http_timeout: float = 30.0,
) -> list[HTTPShardBackend]:
    """HTTP backends pointing at spawned shard workers.

    With replicated workers, prefer ``retries=0``: the router's
    replica failover is both faster and safer than per-replica client
    retries (a retry burns deadline budget on a worker that is already
    dead; a failover moves on to one that is not).
    """
    return [
        HTTPShardBackend(
            worker.url,
            shard_id=worker.spec.shard_id,
            doc_lo=worker.spec.doc_lo,
            doc_hi=worker.spec.doc_hi,
            replica=getattr(worker, "replica", 0),
            retries=retries,
            http_timeout=http_timeout,
            pid=worker.pid,
        )
        for worker in workers
    ]
