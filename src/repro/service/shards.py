"""Sharded scatter-gather serving with rolling snapshot swaps.

One :class:`~repro.service.SearchService` caps corpus size at a single
worker's RSS and throughput at a single GIL.  The pkwise algorithm is
exact and embarrassingly partitionable by document: a query's match
pairs against a corpus are exactly the union of its pairs against any
disjoint document partition of that corpus (each pair involves one data
document; per-shard global orders may differ but verification is
order-independent).  This module exploits that:

* :class:`ShardPlan` — partition a collection into N contiguous doc-id
  ranges balanced by token count, build one compact v3 snapshot per
  range, and persist a JSON manifest (``shards.json``) mapping ranges →
  generation-named shard files
  (:func:`~repro.persistence.generation_name`).
* Shard backends — :class:`LocalShardBackend` wraps an in-process
  :class:`SearchService` (tests, ``Index.serve(shards=N)``);
  :class:`HTTPShardBackend` wraps a :class:`ResilientClient` to a
  worker process serving one shard snapshot (``repro serve --shards``
  spawns them via :func:`spawn_shard_workers`).
* :class:`ShardRouter` — scatters every query to all shards, gathers
  replies, maps shard-local doc ids back to global ids, and merges in
  the existing canonical pair order (shards own disjoint ascending id
  ranges and each reply is already canonically ordered, so the merge is
  an order-preserving concatenation).  Per-query deadlines bound the
  gather; one **hedged request** per slow shard fires after
  ``hedge_after`` seconds; a failed or timed-out shard becomes a
  :class:`~repro.eval.harness.QueryFailure` on the response instead of
  failing the whole query — callers get partial results plus an
  explicit account of what is missing.
* Rolling swap — :meth:`ShardRouter.rolling_swap` walks a freshly
  built generation through :meth:`SearchService.swap_searcher` one
  shard at a time: the new snapshot is mapped, the write lock drains
  in-flight readers, the epoch jumps past the old generation (so the
  result cache can never serve stale pairs), and the old mapping is
  dropped.  Serving never stops; each request observes exactly one
  generation per shard.

Fault-injection points: ``shards.scatter`` (per shard, before each
sub-request), ``shards.gather`` (per responding shard, during merge),
``shards.swap`` (per shard swap) — all carrying ``shard=<id>`` context.

The router duck-types the service surface (``search`` /
``search_text`` / ``healthz`` / ``metrics_snapshot`` / ``close``), so
:func:`repro.service.http.serve_http` fronts a router exactly as it
fronts a single service; ``/metrics`` merges the per-shard registries
into one deterministic aggregate.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from typing import NamedTuple

from .. import faults
from ..core.base import MatchPair, SearchStats
from ..core.pkwise import PKWiseSearcher
from ..corpus import Document, DocumentCollection
from ..errors import (
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from ..eval.harness import AggregateRun, QueryFailure
from ..obs import MetricsRegistry
from ..params import SearchParams
from ..persistence import generation_name, load_bundle, save_searcher
from .client import ResilientClient
from .service import SearchService, ServiceResponse

#: Manifest file name inside a shard directory.
MANIFEST_NAME = "shards.json"

#: Manifest format marker (bump on incompatible layout changes).
MANIFEST_FORMAT = "repro-shard-manifest"
MANIFEST_VERSION = 1


def partition_ranges(
    sizes: Sequence[int], num_shards: int
) -> list[tuple[int, int]]:
    """Split ``len(sizes)`` documents into contiguous ``[lo, hi)`` ranges.

    Greedy balance by token count: each shard takes documents while
    adding the next one moves its total closer to the ideal share of
    the remaining tokens, subject to every remaining shard getting at
    least one document.  Deterministic for a given input.
    """
    num_docs = len(sizes)
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > num_docs:
        raise ConfigurationError(
            f"cannot split {num_docs} document(s) into {num_shards} shards"
        )
    remaining_tokens = sum(sizes)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for shard_id in range(num_shards):
        shards_left = num_shards - shard_id
        # Leave at least one document for every shard after this one.
        max_hi = num_docs - (shards_left - 1)
        target = remaining_tokens / shards_left
        hi = lo + 1  # every shard owns at least one document
        taken = sizes[lo]
        while hi < max_hi and abs(taken + sizes[hi] - target) <= abs(taken - target):
            taken += sizes[hi]
            hi += 1
        ranges.append((lo, hi))
        remaining_tokens -= taken
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a plan: a doc-id range and its snapshot file."""

    shard_id: int
    #: Global doc-id range ``[doc_lo, doc_hi)`` this shard owns; shard-
    #: local ids are ``global_id - doc_lo`` (subsets renumber from 0).
    doc_lo: int
    doc_hi: int
    #: Snapshot file name, relative to the manifest directory.
    path: str
    generation: int
    num_tokens: int = 0

    @property
    def num_documents(self) -> int:
        return self.doc_hi - self.doc_lo

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "doc_lo": self.doc_lo,
            "doc_hi": self.doc_hi,
            "path": self.path,
            "generation": self.generation,
            "num_tokens": self.num_tokens,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSpec":
        return cls(
            shard_id=int(payload["shard_id"]),
            doc_lo=int(payload["doc_lo"]),
            doc_hi=int(payload["doc_hi"]),
            path=str(payload["path"]),
            generation=int(payload["generation"]),
            num_tokens=int(payload.get("num_tokens", 0)),
        )


@dataclass(frozen=True)
class ShardPlan:
    """A persisted partition of one corpus into compact shard snapshots."""

    shards: tuple[ShardSpec, ...]
    num_documents: int
    generation: int
    params: dict

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def validate(self) -> None:
        """Ranges must tile ``[0, num_documents)`` without gap or overlap."""
        expected_lo = 0
        for spec in self.shards:
            if spec.doc_lo != expected_lo or spec.doc_hi <= spec.doc_lo:
                raise ConfigurationError(
                    f"shard {spec.shard_id} range [{spec.doc_lo}, "
                    f"{spec.doc_hi}) does not tile the corpus (expected "
                    f"lo={expected_lo})"
                )
            expected_lo = spec.doc_hi
        if expected_lo != self.num_documents:
            raise ConfigurationError(
                f"shard ranges cover {expected_lo} documents, corpus has "
                f"{self.num_documents}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        data: DocumentCollection,
        params: SearchParams,
        directory: str | Path,
        *,
        num_shards: int,
        generation: int = 1,
    ) -> "ShardPlan":
        """Build ``num_shards`` compact v3 snapshots + manifest under ``directory``.

        Each shard is built from :meth:`DocumentCollection.subset` of a
        contiguous doc-id range — subsets share the parent vocabulary,
        so every shard file can encode any query identically — and
        written via the v3 envelope so workers mmap it zero-copy.
        Re-building a higher ``generation`` into the same directory
        leaves the previous generation's files in place for the rolling
        swap window.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        sizes = [len(doc) for doc in data]
        ranges = partition_ranges(sizes, num_shards)
        specs = []
        for shard_id, (lo, hi) in enumerate(ranges):
            subset = data.subset(range(lo, hi))
            searcher = PKWiseSearcher(subset, params)
            name = generation_name(f"shard-{shard_id:03d}", generation)
            save_searcher(searcher, directory / name, data=subset, compact=True)
            specs.append(
                ShardSpec(
                    shard_id=shard_id,
                    doc_lo=lo,
                    doc_hi=hi,
                    path=name,
                    generation=generation,
                    num_tokens=sum(sizes[lo:hi]),
                )
            )
        plan = cls(
            shards=tuple(specs),
            num_documents=len(data),
            generation=generation,
            params={
                "w": params.w,
                "tau": params.tau,
                "k_max": params.k_max,
                "m": params.m,
            },
        )
        plan.save(directory)
        return plan

    def save(self, directory: str | Path) -> Path:
        """Atomically write the manifest as ``directory/shards.json``."""
        directory = Path(directory)
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "num_documents": self.num_documents,
            "num_shards": self.num_shards,
            "generation": self.generation,
            "params": self.params,
            "shards": [spec.to_dict() for spec in self.shards],
        }
        target = directory / MANIFEST_NAME
        scratch = target.with_name(target.name + ".tmp")
        scratch.write_text(json.dumps(payload, indent=2, sort_keys=True))
        scratch.replace(target)
        return target

    @classmethod
    def load(cls, directory: str | Path) -> "ShardPlan":
        """Read and validate ``directory/shards.json``."""
        manifest = Path(directory) / MANIFEST_NAME
        if not manifest.exists():
            raise ConfigurationError(f"no shard manifest at {manifest}")
        try:
            payload = json.loads(manifest.read_text())
        except (json.JSONDecodeError, ValueError) as exc:
            raise ConfigurationError(f"corrupt shard manifest {manifest}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
            raise ConfigurationError(f"{manifest} is not a shard manifest")
        plan = cls(
            shards=tuple(
                ShardSpec.from_dict(entry) for entry in payload["shards"]
            ),
            num_documents=int(payload["num_documents"]),
            generation=int(payload["generation"]),
            params=dict(payload.get("params", {})),
        )
        plan.validate()
        return plan

    @classmethod
    def ensure(
        cls,
        data: DocumentCollection,
        params: SearchParams,
        directory: str | Path,
        *,
        num_shards: int,
    ) -> "ShardPlan":
        """Reuse a compatible manifest in ``directory`` or build one."""
        directory = Path(directory)
        if (directory / MANIFEST_NAME).exists():
            try:
                plan = cls.load(directory)
            except ConfigurationError:
                plan = None
            if (
                plan is not None
                and plan.num_shards == num_shards
                and plan.num_documents == len(data)
                and plan.params
                == {
                    "w": params.w,
                    "tau": params.tau,
                    "k_max": params.k_max,
                    "m": params.m,
                }
                and all((directory / spec.path).exists() for spec in plan.shards)
            ):
                return plan
        return cls.build(data, params, directory, num_shards=num_shards)


# ----------------------------------------------------------------------
# Shard backends
# ----------------------------------------------------------------------
class _ShardReply(NamedTuple):
    """Normalized per-shard result: shard-local pairs + serving metadata."""

    pairs: tuple
    cached: bool
    index_epoch: int


class LocalShardBackend:
    """One shard served by an in-process :class:`SearchService`."""

    def __init__(
        self,
        service: SearchService,
        *,
        shard_id: int,
        doc_lo: int,
        doc_hi: int,
    ) -> None:
        self.service = service
        self.shard_id = shard_id
        self.doc_lo = doc_lo
        self.doc_hi = doc_hi

    def search(self, query: Document, *, timeout: float | None) -> _ShardReply:
        response = self.service.search(query, timeout=timeout)
        return _ShardReply(response.pairs, response.cached, response.index_epoch)

    def healthz(self) -> dict:
        return self.service.healthz()

    def metrics_snapshot(self) -> dict:
        return self.service.metrics_snapshot()

    def swap(self, searcher, data: DocumentCollection | None = None) -> int:
        """Install a new snapshot generation (see ``swap_searcher``)."""
        return self.service.swap_searcher(searcher, data)

    def remove_document(self, local_doc_id: int) -> None:
        self.service.remove_document(local_doc_id)

    def describe(self) -> dict:
        return {"backend": "local", "service": self.service.name}

    def close(self) -> None:
        self.service.close()

    def __repr__(self) -> str:
        return (
            f"LocalShardBackend(shard={self.shard_id}, "
            f"docs=[{self.doc_lo},{self.doc_hi}))"
        )


class HTTPShardBackend:
    """One shard served by a worker process over the HTTP front-end.

    Sub-requests go through a :class:`ResilientClient` (its retries
    absorb transient transport faults; the router's hedging absorbs
    tail latency).  The client's per-call deadline is left unbounded —
    the router enforces the per-query deadline at the gather side and
    abandons the shard past it.
    """

    def __init__(
        self,
        base_url: str,
        *,
        shard_id: int,
        doc_lo: int,
        doc_hi: int,
        retries: int = 2,
        http_timeout: float = 30.0,
        pid: int | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.shard_id = shard_id
        self.doc_lo = doc_lo
        self.doc_hi = doc_hi
        self.pid = pid
        self._client = ResilientClient(
            base_url,
            retries=retries,
            deadline=None,
            http_timeout=http_timeout,
        )

    def search(self, query: Document, *, timeout: float | None) -> _ShardReply:
        reply = self._client.search(
            token_ids=list(query.tokens), timeout=timeout
        )
        pairs = tuple(MatchPair(*pair) for pair in reply.get("pairs", ()))
        return _ShardReply(
            pairs, bool(reply.get("cached")), int(reply.get("index_epoch", 0))
        )

    def healthz(self) -> dict:
        return self._client.healthz()

    def metrics_snapshot(self) -> dict:
        return self._client.metrics()

    def describe(self) -> dict:
        info = {"backend": "http", "url": self.base_url}
        if self.pid is not None:
            info["pid"] = self.pid
        return info

    def close(self) -> None:
        """The worker process belongs to its supervisor; nothing to do."""

    def __repr__(self) -> str:
        return (
            f"HTTPShardBackend(shard={self.shard_id}, {self.base_url!r}, "
            f"docs=[{self.doc_lo},{self.doc_hi}))"
        )


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class RouterResponse(ServiceResponse):
    """A gathered scatter response: merged pairs + per-shard account.

    ``pairs`` hold *global* doc ids in canonical order.  ``failures``
    lists one :class:`~repro.eval.harness.QueryFailure` per shard that
    failed or missed the deadline (``position`` is the shard id);
    ``partial`` is True when any shard is missing.  ``index_epoch`` is
    the sum of the responding shards' epochs — it changes whenever any
    shard's state does.
    """

    __slots__ = ("failures", "shard_epochs")

    def __init__(
        self,
        pairs: tuple,
        cached: bool,
        seconds: float,
        index_epoch: int,
        failures: Sequence[QueryFailure] = (),
        shard_epochs: dict | None = None,
    ) -> None:
        super().__init__(pairs, cached, seconds, index_epoch)
        self.failures = list(failures)
        self.shard_epochs = dict(shard_epochs or {})

    @property
    def partial(self) -> bool:
        return bool(self.failures)

    def __repr__(self) -> str:
        return (
            f"RouterResponse({len(self.pairs)} pairs, cached={self.cached}, "
            f"shards={len(self.shard_epochs)}, "
            f"failures={len(self.failures)})"
        )


class ShardRouter:
    """Scatter-gather front over N shard backends.

    Duck-types the :class:`SearchService` surface so the HTTP front-end
    (:func:`~repro.service.http.serve_http`) and existing clients work
    unchanged.  See the module docstring for semantics.

    Parameters
    ----------
    backends:
        Shard backends owning disjoint contiguous doc-id ranges that
        tile ``[0, num_documents)``.
    data:
        Collection used to encode ``search_text`` queries (any shard
        subset works — subsets share the parent vocabulary).
    default_timeout:
        Per-query deadline (seconds) across scatter + gather when the
        caller passes none.  ``None`` = wait for every shard.
    hedge_after:
        Seconds to wait for a shard before sending one hedged duplicate
        sub-request; first reply wins.  ``None`` disables hedging.
    pool_size:
        Scatter thread-pool size (default ``4 * num_shards`` — enough
        for hedges plus concurrent callers).
    """

    def __init__(
        self,
        backends: Sequence,
        data: DocumentCollection | None = None,
        *,
        default_timeout: float | None = None,
        hedge_after: float | None = None,
        pool_size: int | None = None,
        name: str = "shard-router",
    ) -> None:
        backends = sorted(backends, key=lambda backend: backend.doc_lo)
        if not backends:
            raise ConfigurationError("a ShardRouter needs at least one backend")
        previous_hi = 0
        for backend in backends:
            if backend.doc_lo != previous_hi:
                raise ConfigurationError(
                    f"shard {backend.shard_id} starts at doc {backend.doc_lo}, "
                    f"expected {previous_hi} (ranges must tile the corpus)"
                )
            previous_hi = backend.doc_hi
        ids = [backend.shard_id for backend in backends]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate shard ids: {sorted(ids)}")
        self._backends = list(backends)
        self._by_id = {backend.shard_id: backend for backend in backends}
        self.data = data
        self.name = name
        self.default_timeout = default_timeout
        self.hedge_after = hedge_after
        self.started_at = time.time()
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size or 4 * len(backends),
            thread_name_prefix=f"{name}-scatter",
        )
        self._metrics_lock = threading.Lock()
        self._registry = MetricsRegistry()
        self._registry.gauge("router.shards").set(len(backends))
        self._last_epochs = {backend.shard_id: 0 for backend in backends}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def local(
        cls,
        data: DocumentCollection,
        params: SearchParams,
        *,
        shards: int,
        compact: bool = True,
        default_timeout: float | None = None,
        hedge_after: float | None = None,
        name: str = "shard-router",
        **service_kwargs,
    ) -> "ShardRouter":
        """Build an in-process router: one :class:`SearchService` per shard."""
        sizes = [len(doc) for doc in data]
        ranges = partition_ranges(sizes, shards)
        backends = []
        for shard_id, (lo, hi) in enumerate(ranges):
            subset = data.subset(range(lo, hi))
            searcher = PKWiseSearcher(subset, params)
            if compact:
                searcher = searcher.compacted()
            service = SearchService(
                searcher,
                subset,
                name=f"{name}-shard-{shard_id:03d}",
                **service_kwargs,
            )
            backends.append(
                LocalShardBackend(
                    service, shard_id=shard_id, doc_lo=lo, doc_hi=hi
                )
            )
        return cls(
            backends,
            data,
            default_timeout=default_timeout,
            hedge_after=hedge_after,
            name=name,
        )

    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        mmap: bool = True,
        default_timeout: float | None = None,
        hedge_after: float | None = None,
        name: str = "shard-router",
        **service_kwargs,
    ) -> "ShardRouter":
        """Serve an existing :class:`ShardPlan` directory in process.

        Every shard snapshot is loaded (``mmap=True`` maps the v3
        sections zero-copy) behind its own :class:`SearchService`.
        """
        directory = Path(directory)
        plan = ShardPlan.load(directory)
        backends = []
        encode_data = None
        for spec in plan.shards:
            bundle = load_bundle(directory / spec.path, mmap=mmap)
            if bundle.data is None:
                raise ConfigurationError(
                    f"shard snapshot {spec.path} has no document bundle"
                )
            if encode_data is None:
                encode_data = bundle.data
            service = SearchService(
                bundle.searcher,
                bundle.data,
                name=f"{name}-shard-{spec.shard_id:03d}",
                **service_kwargs,
            )
            backends.append(
                LocalShardBackend(
                    service,
                    shard_id=spec.shard_id,
                    doc_lo=spec.doc_lo,
                    doc_hi=spec.doc_hi,
                )
            )
        return cls(
            backends,
            encode_data,
            default_timeout=default_timeout,
            hedge_after=hedge_after,
            name=name,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backends(self) -> tuple:
        return tuple(self._backends)

    @property
    def num_shards(self) -> int:
        return len(self._backends)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def index_epoch(self) -> int:
        """Sum of the last-observed per-shard epochs (monotone)."""
        return sum(self._last_epochs.values())

    def healthz(self) -> dict:
        """Router liveness: aggregate status plus one entry per shard.

        ``status`` is ``ok`` only when every shard answers ok —
        ``degraded`` (some shards down, partial results still served)
        and ``down`` (no shard reachable) both surface as 503 through
        the HTTP front-end so balancers can eject the router.
        """
        shards = []
        reachable = 0
        for backend in self._backends:
            entry = {
                "shard_id": backend.shard_id,
                "doc_lo": backend.doc_lo,
                "doc_hi": backend.doc_hi,
            }
            entry.update(backend.describe())
            try:
                health = backend.healthz()
            except Exception as exc:  # noqa: BLE001 - any failure = unreachable
                entry["status"] = "unreachable"
                entry["error"] = str(exc)
            else:
                entry["status"] = health.get("status", "unknown")
                entry["documents"] = health.get("documents")
                entry["index_epoch"] = health.get("index_epoch")
                if entry["status"] == "ok":
                    reachable += 1
            shards.append(entry)
        if self._closed:
            status = "closed"
        elif reachable == len(self._backends):
            status = "ok"
        elif reachable:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "service": self.name,
            "num_shards": len(self._backends),
            "shards_ok": reachable,
            "documents": self._backends[-1].doc_hi,
            "index_epoch": self.index_epoch,
            "uptime_seconds": time.time() - self.started_at,
            "shards": shards,
        }

    def metrics_snapshot(self) -> dict:
        """Router counters + the per-shard registries, merged.

        Counters and timers sum across shards (deterministic for a
        deterministic workload), gauges keep the maximum — the same
        envelope ``check_regression.py`` diffs for a single service.
        """
        with self._metrics_lock:
            registry = MetricsRegistry.from_snapshot(self._registry.snapshot())
        for backend in self._backends:
            try:
                snapshot = backend.metrics_snapshot()
            except Exception:  # noqa: BLE001 - a dead shard has no metrics
                registry.counter("router.metrics_unavailable").inc()
                continue
            registry.merge_snapshot(snapshot.get("metrics", {}))
        return {
            "name": self.name,
            "schema_version": 1,
            "metrics": registry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def search(
        self, query: Document, *, timeout: float | None = None
    ) -> RouterResponse:
        """Scatter ``query`` to every shard and gather a merged response.

        Raises only when *no* shard responded (the last shard error is
        chained); otherwise missing shards are reported on
        ``response.failures`` and the merged pairs cover the shards
        that answered.
        """
        if self._closed:
            raise ServiceClosedError(f"{self.name} is closed")
        if timeout is None:
            timeout = self.default_timeout
        start = time.monotonic()
        deadline_at = start + timeout if timeout is not None else None
        with self._metrics_lock:
            self._registry.counter("router.requests").inc()
        results, failures, last_error = self._scatter_gather(query, deadline_at)
        if not results:
            with self._metrics_lock:
                self._registry.counter("router.errors").inc()
            error = ServiceError(
                f"all {len(self._backends)} shard(s) failed for query "
                f"{query.name or query.doc_id}: "
                + "; ".join(f.error_message for f in failures)
            )
            error.failures = failures
            raise error from last_error
        pairs: list[MatchPair] = []
        shard_epochs: dict[int, int] = {}
        cached_votes: list[bool] = []
        for backend in self._backends:
            reply = results.get(backend.shard_id)
            if reply is None:
                continue
            faults.inject("shards.gather", shard=backend.shard_id)
            shard_epochs[backend.shard_id] = reply.index_epoch
            self._last_epochs[backend.shard_id] = max(
                self._last_epochs[backend.shard_id], reply.index_epoch
            )
            cached_votes.append(reply.cached)
            offset = backend.doc_lo
            # Shard-local doc ids renumber from 0 within [doc_lo, doc_hi);
            # adding the offset restores global ids.  Ranges ascend and
            # every reply is canonically ordered, so appending in shard
            # order keeps the merged list canonical without a re-sort.
            pairs.extend(
                MatchPair(pair[0] + offset, pair[1], pair[2], pair[3])
                for pair in reply.pairs
            )
        elapsed = time.monotonic() - start
        with self._metrics_lock:
            self._registry.counter("router.completed").inc()
            self._registry.timer("router.request_seconds").add(elapsed)
            if failures:
                self._registry.counter("router.partial_responses").inc()
                self._registry.counter("router.shard_failures").inc(len(failures))
        return RouterResponse(
            tuple(pairs),
            cached=bool(cached_votes) and all(cached_votes),
            seconds=elapsed,
            index_epoch=sum(shard_epochs.values()),
            failures=failures,
            shard_epochs=shard_epochs,
        )

    def search_text(
        self, text: str, *, timeout: float | None = None
    ) -> RouterResponse:
        """Encode ``text`` (any shard vocabulary works) and search it."""
        if self.data is None:
            raise ReproError(
                "router has no document collection to encode text queries; "
                "submit pre-encoded Document queries instead"
            )
        return self.search(self.data.encode_query(text), timeout=timeout)

    def search_many(
        self, queries: Sequence[Document], *, timeout: float | None = None
    ) -> AggregateRun:
        """Serve a batch; shard failures aggregate per query position."""
        start = time.monotonic()
        results_by_query: dict[int, list[MatchPair]] = {}
        failures: list[QueryFailure] = []
        for position, query in enumerate(queries):
            try:
                response = self.search(query, timeout=timeout)
            except ReproError as exc:
                failures.append(
                    QueryFailure(
                        position=position,
                        query_id=query.doc_id,
                        query_name=query.name,
                        error_type=type(exc).__name__,
                        error_message=str(exc),
                        attempts=1,
                    )
                )
                continue
            results_by_query[position] = list(response.pairs)
            failures.extend(
                replace(shard_failure, position=position)
                for shard_failure in response.failures
            )
        return AggregateRun(
            name=self.name,
            num_queries=len(queries),
            total_seconds=time.monotonic() - start,
            stats=SearchStats(),
            results_by_query=results_by_query,
            failures=failures,
        )

    # ------------------------------------------------------------------
    def _shard_call(self, backend, query: Document, deadline_at: float | None):
        faults.inject("shards.scatter", shard=backend.shard_id)
        timeout = None
        if deadline_at is not None:
            timeout = max(1e-3, deadline_at - time.monotonic())
        return backend.search(query, timeout=timeout)

    def _shard_failure(
        self, query: Document, shard_id: int, error: Exception, attempts: int
    ) -> QueryFailure:
        return QueryFailure(
            position=shard_id,
            query_id=query.doc_id,
            query_name=f"{query.name or 'query'}@shard-{shard_id:03d}",
            error_type=type(error).__name__,
            error_message=str(error),
            attempts=attempts,
        )

    def _scatter_gather(self, query: Document, deadline_at: float | None):
        """Fan out, hedge stragglers once, and collect per-shard replies."""
        outstanding: dict = {}
        unresolved = dict(self._by_id)
        results: dict[int, _ShardReply] = {}
        errors: dict[int, Exception] = {}
        attempts = {shard_id: 1 for shard_id in self._by_id}
        failures: list[QueryFailure] = []
        last_error: Exception | None = None
        for backend in self._backends:
            future = self._pool.submit(
                self._shard_call, backend, query, deadline_at
            )
            outstanding[future] = backend.shard_id
        hedge_at = (
            time.monotonic() + self.hedge_after
            if self.hedge_after is not None
            else None
        )
        while outstanding and unresolved:
            now = time.monotonic()
            if deadline_at is not None and now >= deadline_at:
                break
            wait_until = deadline_at
            if hedge_at is not None:
                wait_until = (
                    hedge_at if wait_until is None else min(wait_until, hedge_at)
                )
            wait_timeout = (
                None if wait_until is None else max(0.0, wait_until - now)
            )
            done, _ = wait(
                set(outstanding), timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                shard_id = outstanding.pop(future)
                if shard_id not in unresolved:
                    continue  # the other attempt already answered
                try:
                    results[shard_id] = future.result()
                except Exception as exc:  # noqa: BLE001 - per-shard isolation
                    errors[shard_id] = exc
                    last_error = exc
                    still_in_flight = shard_id in outstanding.values()
                    if not still_in_flight:
                        failures.append(
                            self._shard_failure(
                                query, shard_id, exc, attempts[shard_id]
                            )
                        )
                        del unresolved[shard_id]
                else:
                    del unresolved[shard_id]
            if hedge_at is not None and time.monotonic() >= hedge_at:
                hedge_at = None  # at most one hedge per shard per query
                for shard_id in list(unresolved):
                    if shard_id not in outstanding.values():
                        continue  # primary already failed; nothing to race
                    backend = self._by_id[shard_id]
                    future = self._pool.submit(
                        self._shard_call, backend, query, deadline_at
                    )
                    outstanding[future] = shard_id
                    attempts[shard_id] += 1
                    with self._metrics_lock:
                        self._registry.counter("router.hedges").inc()
        for shard_id in sorted(unresolved):
            error = errors.get(shard_id)
            if error is None:
                error = DeadlineExceededError(
                    f"shard {shard_id} did not reply within the per-query "
                    f"deadline"
                )
                last_error = error
            failures.append(
                self._shard_failure(query, shard_id, error, attempts[shard_id])
            )
        for future in outstanding:
            future.cancel()  # best effort; late replies are discarded
        failures.sort(key=lambda failure: failure.position)
        return results, failures, last_error

    # ------------------------------------------------------------------
    # Mutation / swap
    # ------------------------------------------------------------------
    def remove_document(self, doc_id: int) -> None:
        """Tombstone a *global* doc id on the shard that owns it."""
        for backend in self._backends:
            if backend.doc_lo <= doc_id < backend.doc_hi:
                remover = getattr(backend, "remove_document", None)
                if remover is None:
                    raise ServiceError(
                        f"shard {backend.shard_id} backend does not support "
                        f"remove_document (rebuild + rolling swap instead)"
                    )
                remover(doc_id - backend.doc_lo)
                return
        raise ConfigurationError(
            f"doc_id {doc_id} outside corpus [0, {self._backends[-1].doc_hi})"
        )

    def swap_shard(
        self, shard_id: int, searcher, data: DocumentCollection | None = None
    ) -> int:
        """Swap one shard to a new snapshot generation without downtime."""
        backend = self._by_id.get(shard_id)
        if backend is None:
            raise ConfigurationError(f"unknown shard id {shard_id}")
        faults.inject("shards.swap", shard=shard_id)
        swap = getattr(backend, "swap", None)
        if swap is None:
            raise ServiceError(
                f"shard {shard_id} backend ({type(backend).__name__}) does "
                f"not support in-process swap"
            )
        generation = swap(searcher, data)
        with self._metrics_lock:
            self._registry.counter("router.swaps").inc()
        return generation

    def rolling_swap(
        self, directory: str | Path, *, mmap: bool = True
    ) -> int:
        """Swap every shard to the generation in ``directory``'s manifest.

        One shard at a time: build/load the new snapshot, then
        :meth:`swap_shard` it — each swap drains that shard's in-flight
        readers under the write lock while all other shards keep
        serving.  Returns the new generation number.
        """
        directory = Path(directory)
        plan = ShardPlan.load(directory)
        if plan.num_shards != len(self._backends):
            raise ConfigurationError(
                f"plan has {plan.num_shards} shards, router has "
                f"{len(self._backends)}"
            )
        for spec in plan.shards:
            backend = self._by_id.get(spec.shard_id)
            if backend is None or (backend.doc_lo, backend.doc_hi) != (
                spec.doc_lo,
                spec.doc_hi,
            ):
                raise ConfigurationError(
                    f"shard {spec.shard_id} range mismatch between plan "
                    f"and router"
                )
        for spec in plan.shards:
            bundle = load_bundle(directory / spec.path, mmap=mmap)
            self.swap_shard(spec.shard_id, bundle.searcher, bundle.data)
        return plan.generation

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop routing, then close every backend.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        for backend in self._backends:
            backend.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardRouter({self.name!r}, shards={len(self._backends)}, "
            f"hedge_after={self.hedge_after}, closed={self._closed})"
        )


# ----------------------------------------------------------------------
# Worker supervision (subprocess shards for the CLI / smoke / bench)
# ----------------------------------------------------------------------
@dataclass
class ShardWorker:
    """A spawned shard worker process and its serving URL."""

    spec: ShardSpec
    process: subprocess.Popen
    url: str

    @property
    def pid(self) -> int:
        return self.process.pid


def _read_serving_line(process: subprocess.Popen, timeout: float) -> str:
    """Read a worker's stdout until its ``SERVING <url>`` line."""
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                raise ServiceError(
                    f"shard worker exited with code {process.returncode} "
                    f"before serving"
                )
            time.sleep(0.05)
            continue
        if line.startswith("SERVING "):
            return line.split(None, 1)[1].strip()
    raise ServiceError(f"shard worker did not serve within {timeout}s")


def spawn_shard_workers(
    directory: str | Path,
    plan: ShardPlan | None = None,
    *,
    cache_size: int | None = None,
    workers: int | None = None,
    startup_timeout: float = 60.0,
) -> list[ShardWorker]:
    """Start one ``repro serve`` process per shard of ``plan``.

    Each worker maps its own compact snapshot (``--mmap``) and binds an
    ephemeral port; the returned :class:`ShardWorker`\\ s carry the
    parsed URLs.  On any startup failure every already-spawned worker
    is terminated before the error propagates.
    """
    directory = Path(directory)
    if plan is None:
        plan = ShardPlan.load(directory)
    spawned: list[tuple[ShardSpec, subprocess.Popen]] = []
    try:
        for spec in plan.shards:
            command = [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--index",
                str(directory / spec.path),
                "--port",
                "0",
                "--mmap",
            ]
            if cache_size is not None:
                command += ["--cache-size", str(cache_size)]
            if workers is not None:
                command += ["--workers", str(workers)]
            process = subprocess.Popen(
                command, stdout=subprocess.PIPE, text=True
            )
            spawned.append((spec, process))
        return [
            ShardWorker(spec=spec, process=process,
                        url=_read_serving_line(process, startup_timeout))
            for spec, process in spawned
        ]
    except BaseException:
        stop_shard_workers(
            ShardWorker(spec=spec, process=process, url="")
            for spec, process in spawned
        )
        raise


def stop_shard_workers(workers, *, timeout: float = 5.0) -> None:
    """Terminate (then kill) every worker process.  Idempotent."""
    workers = list(workers)
    for worker in workers:
        if worker.process.poll() is None:
            worker.process.terminate()
    deadline = time.monotonic() + timeout
    for worker in workers:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            worker.process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            worker.process.kill()
            worker.process.wait()
        if worker.process.stdout is not None:
            worker.process.stdout.close()


def backends_for_workers(
    workers: Sequence[ShardWorker],
    *,
    retries: int = 2,
    http_timeout: float = 30.0,
) -> list[HTTPShardBackend]:
    """HTTP backends pointing at spawned shard workers."""
    return [
        HTTPShardBackend(
            worker.url,
            shard_id=worker.spec.shard_id,
            doc_lo=worker.spec.doc_lo,
            doc_hi=worker.spec.doc_hi,
            retries=retries,
            http_timeout=http_timeout,
            pid=worker.pid,
        )
        for worker in workers
    ]
