"""Concurrent query serving: :class:`SearchService` plus an HTTP front-end.

The serving layer turns a loaded searcher bundle into a long-running,
thread-safe query service:

* :class:`SearchService` — bounded worker pool with admission control
  (typed :class:`~repro.errors.ServiceOverloadError` carrying a
  retry-after estimate), per-request deadlines with cooperative
  cancellation inside the slide loop, and an epoch-invalidated LRU
  result cache (:class:`ResultCache`) that keeps cached and fresh
  results pair-for-pair identical across index mutations.
* :func:`serve_http` / :class:`ServiceHTTPServer` — a stdlib
  ``ThreadingHTTPServer`` exposing ``/search``, ``/healthz`` and
  ``/metrics``.
* :func:`remote_search` / :func:`remote_healthz` / :func:`remote_metrics`
  — a tiny ``urllib`` client for scripts and the ``repro query
  --server`` CLI path — plus :class:`ResilientClient`, the production
  wrapper with jittered retries, a deadline budget, and a circuit
  breaker (``repro query --retries/--timeout``).
* :mod:`~repro.service.shards` — sharded scatter-gather serving:
  :class:`ShardPlan` partitions a corpus into compact snapshot shards
  (times ``replicas`` workers per shard) with a persisted manifest;
  :class:`ShardRouter` fans every query out to one replica per shard
  (in-process services or HTTP workers), fails over to sibling
  replicas before declaring a shard dead, merges pairs in canonical
  order, hedges slow shards, reports dead shards as partial results,
  and swaps in new snapshot generations without stopping serving
  (``repro serve --shards N --replicas R``).
* :class:`~repro.service.supervisor.ShardSupervisor` — self-healing
  supervision of the spawned worker processes: detects death, restarts
  from the snapshot, re-admits after health + generation checks, and
  quarantines crash-loopers with exponential backoff.
"""

from .cache import CacheKey, ResultCache, query_token_hash
from .client import (
    CircuitBreaker,
    ResilientClient,
    remote_healthz,
    remote_metrics,
    remote_search,
)
from .http import ServiceHTTPServer, ServiceRequestHandler, serve_http
from .service import SearchService, ServiceFuture, ServiceResponse
from .shards import (
    HTTPShardBackend,
    LocalShardBackend,
    ReplicaSet,
    RouterResponse,
    ShardPlan,
    ShardRouter,
    ShardSpec,
    ShardWorker,
    backends_for_workers,
    partition_ranges,
    spawn_one_worker,
    spawn_shard_workers,
    stop_shard_workers,
)
from .supervisor import ShardSupervisor

__all__ = [
    "SearchService",
    "ServiceFuture",
    "ServiceResponse",
    "ResultCache",
    "CacheKey",
    "query_token_hash",
    "ServiceHTTPServer",
    "ServiceRequestHandler",
    "serve_http",
    "remote_search",
    "remote_healthz",
    "remote_metrics",
    "ResilientClient",
    "CircuitBreaker",
    "ShardPlan",
    "ShardSpec",
    "ShardRouter",
    "ShardSupervisor",
    "ReplicaSet",
    "RouterResponse",
    "LocalShardBackend",
    "HTTPShardBackend",
    "ShardWorker",
    "partition_ranges",
    "spawn_one_worker",
    "spawn_shard_workers",
    "stop_shard_workers",
    "backends_for_workers",
]
