"""Epoch-invalidated LRU result cache for the search service.

Repeated and near-duplicate queries dominate serving workloads
(plagiarism screening re-checks the same suspicious passages over and
over), and an exact searcher is deterministic: the same query tokens
against the same index state always produce the same match pairs.  The
cache exploits exactly that and nothing more:

* Keys are ``(canonical query-token hash, params fingerprint, index
  epoch)``.  The token hash is content-based (BLAKE2b over the packed
  token-id sequence), so two :class:`~repro.corpus.Document` objects
  with the same tokens share an entry regardless of name or identity.
* The index epoch is the searcher's mutation counter
  (:attr:`~repro.PKWiseSearcher.index_epoch`); any add / remove bumps
  it, which makes every prior entry unreachable — cached and fresh
  results are pair-for-pair identical by construction.  Stale-epoch
  entries are also actively purged on insert so a mutation burst
  cannot pin dead entries in the LRU.
* The epoch component may also be a *segment-generation vector* — the
  LSM ingest layer caches frozen-segment partial results under
  ``(tombstone_epoch, gen_1, ..., gen_k)`` tuples, so memtable inserts
  (which move only the service-level scalar epoch) leave
  frozen-segment hits warm.  Tuples compare lexicographically and the
  ingest layer only ever moves them upward (removes bump element 0,
  seals append a higher generation, folds replace tiers with a higher
  generation), so the same ``<`` purge logic applies unchanged; one
  cache instance only ever sees one epoch shape.
* Values are canonically ordered pair lists, stored as immutable
  tuples so a caller mutating its response list cannot corrupt the
  cache.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from collections.abc import Sequence

#: Cache keys: (query token hash, params fingerprint, index epoch).
#: The epoch component is a scalar mutation counter at the service
#: level, or a segment-generation vector ``tuple[int, ...]`` in the
#: ingest layer's frozen-segment cache — anything totally ordered and
#: monotonically increasing works.
CacheKey = tuple[str, str, "int | tuple[int, ...]"]


def query_token_hash(tokens: Sequence[int]) -> str:
    """Canonical content hash of a query's token-id sequence.

    Token ids are packed as little-endian signed 64-bit integers
    (query-only tokens have negative ranks upstream, and ids are dense
    ints), so the hash is stable across processes and runs — unlike
    builtin ``hash``, which is salted per process.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(struct.pack(f"<{len(tokens)}q", *tokens))
    return digest.hexdigest()


class ResultCache:
    """A thread-safe LRU mapping cache keys to match-pair tuples.

    ``capacity <= 0`` disables the cache entirely (every ``get`` misses,
    ``put`` is a no-op) — the configuration the serving benchmark uses
    as its uncached baseline.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, tuple] = OrderedDict()
        self._lock = threading.Lock()
        #: Highest epoch component seen by :meth:`put`.  Stale-entry
        #: purges only run when an insert advances past it, so a burst
        #: of same-epoch inserts costs one O(capacity) scan per epoch
        #: instead of one per insert.
        self._max_epoch: int | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: CacheKey) -> tuple | None:
        """The cached pair tuple for ``key``, or None; refreshes LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: CacheKey, pairs: Sequence) -> None:
        """Insert ``pairs`` under ``key``, evicting LRU entries beyond capacity.

        Entries whose epoch component predates ``key``'s are purged:
        they can never be read again (epochs only grow), so keeping
        them would waste capacity on dead results.  The purge scan only
        runs when ``key`` carries a higher epoch than any insert before
        it — repeated inserts at a steady epoch never rescan.
        """
        if self.capacity <= 0:
            return
        epoch = key[2]
        with self._lock:
            if self._max_epoch is None or epoch > self._max_epoch:
                stale = [
                    entry_key
                    for entry_key in self._entries
                    if entry_key[2] < epoch
                ]
                for entry_key in stale:
                    del self._entries[entry_key]
                    self.invalidations += 1
                self._max_epoch = epoch
            self._entries[key] = tuple(pairs)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
