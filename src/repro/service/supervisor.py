"""Self-healing supervision for shard worker processes.

:class:`ShardSupervisor` owns the ``repro serve`` worker processes
behind a :class:`~repro.service.shards.ShardRouter` and closes the last
operator-in-the-loop gap in the serving stack: a SIGKILLed worker is
detected, restarted from its snapshot, and re-admitted to routing —
``/healthz`` returns to ``ok`` with no human action.  The router's
replica failover absorbs the death in the meantime, so with R >= 2 the
whole incident costs zero queries.

Each replica walks a small state machine::

    ok ──(process dead / health probe fails)──▶ dead
    dead ──(crash streak ≤ max)──▶ restarting ──▶ ok (readmitted)
    dead ──(crash streak > max)──▶ quarantined ──(backoff expires)──▶ restarting

* **Detection** — every ``check_interval`` seconds each worker is
  ``poll()``\\ ed (a reaped process is dead, no RPC needed) and, when
  alive, probed over ``/healthz``; either failing marks the replica
  dead and immediately deprioritizes it in the router
  (:meth:`~repro.service.shards.ShardRouter.mark_replica_down`).
* **Restart** — the replica's shard spec is re-read from the plan
  manifest when a plan directory is known, so a restart that races a
  rolling swap spawns the *current* generation, then the worker is
  respawned via :func:`~repro.service.shards.spawn_one_worker`.
* **Re-admission** — the restarted worker rejoins routing
  (:meth:`~repro.service.shards.ShardRouter.replace_replica` +
  :meth:`~repro.service.shards.ShardRouter.readmit_replica`) only after
  it passes a health check **and** a generation-consistency check
  against the manifest.  A worker serving a stale generation — the
  manifest moved while it was starting — is killed and retried rather
  than re-admitted: one stale replica would silently answer queries
  from the old corpus generation.
* **Quarantine** — a replica whose crash streak exceeds
  ``max_crash_streak`` is parked for an exponentially growing backoff
  (``backoff_base * 2^excess``, capped at ``backoff_cap``) instead of
  burning CPU on a restart loop; the condition is surfaced in
  ``/healthz`` as a :class:`~repro.errors.ReplicaQuarantinedError`
  message with its ``retry_after``.

Fault-injection points: ``supervisor.restart`` (before each respawn)
and ``supervisor.readmit`` (before each re-admission attempt), both
carrying ``shard=<id>, replica=<r>`` context.

The metrics registry records only *event* counters (deaths, restarts,
readmits, quarantines) — never per-check-tick counters — so a chaos
run that kills K workers produces the same snapshot every time and
``check_regression.py --strict`` can diff two runs.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from .. import faults
from ..errors import ReplicaQuarantinedError, WorkerStartupError
from ..obs import MetricsRegistry
from .client import remote_healthz
from .shards import (
    HTTPShardBackend,
    ShardPlan,
    ShardWorker,
    spawn_one_worker,
    stop_shard_workers,
)

#: Replica states (see the module docstring's state machine).
STATE_OK = "ok"
STATE_DEAD = "dead"
STATE_RESTARTING = "restarting"
STATE_QUARANTINED = "quarantined"


class _ReplicaRecord:
    """Mutable supervision state for one (shard, replica) slot."""

    __slots__ = (
        "worker",
        "state",
        "crash_streak",
        "restarts",
        "quarantined_until",
        "last_error",
    )

    def __init__(self, worker: ShardWorker) -> None:
        self.worker = worker
        self.state = STATE_OK
        self.crash_streak = 0
        self.restarts = 0
        self.quarantined_until = 0.0
        self.last_error = ""


class ShardSupervisor:
    """Monitor, restart, and re-admit shard worker replicas.

    Parameters
    ----------
    router:
        The :class:`~repro.service.shards.ShardRouter` whose replica
        slots this supervisor heals.
    workers:
        The :class:`~repro.service.shards.ShardWorker`\\ s backing the
        router's backends, as returned by
        :func:`~repro.service.shards.spawn_shard_workers`.
    directory:
        The shard-plan directory.  When given, restarts re-read the
        manifest so they always spawn the current generation; when
        ``None`` the original spec is reused (fine without rolling
        swaps).
    check_interval:
        Seconds between liveness sweeps of the monitor thread.
    health_timeout:
        Socket timeout for each ``/healthz`` probe.
    max_crash_streak:
        Consecutive failures (death, failed restart, failed readmit)
        tolerated before the replica is quarantined.
    backoff_base / backoff_cap:
        Quarantine backoff: ``backoff_base * 2^(streak - max - 1)``
        seconds, capped at ``backoff_cap``.
    spawn_worker / make_backend / probe / clock:
        Injection points for tests: respawn a worker from a spec,
        wrap a worker in a router backend, probe a worker's health
        (return its healthz dict or raise), and read monotonic time.
    """

    def __init__(
        self,
        router,
        workers,
        *,
        directory: str | Path | None = None,
        check_interval: float = 1.0,
        health_timeout: float = 2.0,
        max_crash_streak: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        startup_timeout: float = 60.0,
        cache_size: int | None = None,
        http_workers: int | None = None,
        spawn_worker=None,
        make_backend=None,
        probe=None,
        clock=time.monotonic,
        name: str = "shard-supervisor",
    ) -> None:
        self.router = router
        self.directory = Path(directory) if directory is not None else None
        self.check_interval = check_interval
        self.health_timeout = health_timeout
        self.max_crash_streak = max_crash_streak
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.startup_timeout = startup_timeout
        self.cache_size = cache_size
        self.http_workers = http_workers
        self.name = name
        self._spawn_worker = spawn_worker or self._default_spawn
        self._make_backend = make_backend or self._default_backend
        self._probe = probe or self._default_probe
        self._clock = clock
        self._lock = threading.RLock()
        self._records: dict[tuple[int, int], _ReplicaRecord] = {}
        for worker in workers:
            key = (worker.spec.shard_id, worker.replica)
            if key in self._records:
                raise ValueError(
                    f"duplicate worker for shard {key[0]} replica {key[1]}"
                )
            self._records[key] = _ReplicaRecord(worker)
        self.metrics_registry = MetricsRegistry()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        router.attach_supervisor(self)

    # ------------------------------------------------------------------
    # Default collaborators (real subprocess workers over HTTP)
    # ------------------------------------------------------------------
    def _default_spawn(self, spec, replica: int) -> ShardWorker:
        if self.directory is None:
            raise WorkerStartupError(
                "supervisor has no plan directory to respawn workers from"
            )
        return spawn_one_worker(
            self.directory,
            spec,
            replica=replica,
            cache_size=self.cache_size,
            workers=self.http_workers,
            startup_timeout=self.startup_timeout,
        )

    def _default_backend(self, worker: ShardWorker) -> HTTPShardBackend:
        # retries=0: the router's failover handles a flaky replacement
        # better than client-side retries against it would.
        return HTTPShardBackend(
            worker.url,
            shard_id=worker.spec.shard_id,
            doc_lo=worker.spec.doc_lo,
            doc_hi=worker.spec.doc_hi,
            replica=worker.replica,
            retries=0,
            pid=worker.pid,
        )

    def _default_probe(self, worker: ShardWorker) -> dict:
        return remote_healthz(worker.url, http_timeout=self.health_timeout)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        """Run the monitor loop in a daemon thread.  Idempotent."""
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._run, name=self.name, daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        """Stop monitoring (worker processes are left as they are)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=10.0)

    def _run(self) -> None:
        while not self._stop.wait(self.check_interval):
            try:
                self.check_once()
            except Exception:  # noqa: BLE001 - the monitor must survive
                # A failed sweep (e.g. a transient manifest read error)
                # must not kill supervision; the next tick retries.
                continue

    @property
    def workers(self) -> list[ShardWorker]:
        """Current worker handles (restarts replace entries in place)."""
        with self._lock:
            return [record.worker for record in self._records.values()]

    # ------------------------------------------------------------------
    # One supervision sweep
    # ------------------------------------------------------------------
    def check_once(self) -> None:
        """Probe every replica once; restart/readmit/quarantine as needed."""
        with self._lock:
            items = sorted(self._records.items())
        for key, record in items:
            if self._stop.is_set():
                return
            with self._lock:
                state = record.state
                if state == STATE_QUARANTINED:
                    if self._clock() < record.quarantined_until:
                        continue
                    # Backoff expired: one more restart attempt.
                    record.state = STATE_DEAD
            if record.state == STATE_DEAD:
                self._restart_and_readmit(key, record)
                continue
            # state == ok: liveness + health probe.
            if record.worker.process.poll() is not None:
                self._on_death(
                    key,
                    record,
                    f"worker pid {record.worker.pid} exited with code "
                    f"{record.worker.process.returncode}",
                )
                self._restart_if_allowed(key, record)
                continue
            try:
                health = self._probe(record.worker)
            except Exception as exc:  # noqa: BLE001 - probe failure = dead
                self._on_death(key, record, f"health probe failed: {exc}")
                self._restart_if_allowed(key, record)
                continue
            if health.get("status") not in ("ok", "degraded"):
                self._on_death(
                    key, record, f"worker reported status {health.get('status')!r}"
                )
                self._restart_if_allowed(key, record)
                continue
            # Healthy: a full clean sweep clears the crash streak, so
            # only rapid die-restart-die cycles count toward quarantine.
            with self._lock:
                record.crash_streak = 0
                record.last_error = ""

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _on_death(
        self, key: tuple[int, int], record: _ReplicaRecord, reason: str
    ) -> None:
        shard_id, replica = key
        with self._lock:
            record.state = STATE_DEAD
            record.crash_streak += 1
            record.last_error = reason
        self.metrics_registry.counter("supervisor.deaths").inc()
        self.router.mark_replica_down(shard_id, replica)

    def _quarantine(self, key: tuple[int, int], record: _ReplicaRecord) -> None:
        shard_id, replica = key
        excess = record.crash_streak - self.max_crash_streak
        backoff = min(self.backoff_cap, self.backoff_base * (2 ** (excess - 1)))
        error = ReplicaQuarantinedError(
            f"shard {shard_id} replica {replica} crash-looped "
            f"{record.crash_streak} times; quarantined for {backoff:.1f}s "
            f"(last error: {record.last_error})",
            shard_id=shard_id,
            replica=replica,
            retry_after=backoff,
        )
        with self._lock:
            record.state = STATE_QUARANTINED
            record.quarantined_until = self._clock() + backoff
            record.last_error = str(error)
        self.metrics_registry.counter("supervisor.quarantines").inc()

    def _restart_if_allowed(
        self, key: tuple[int, int], record: _ReplicaRecord
    ) -> None:
        if record.crash_streak > self.max_crash_streak:
            self._quarantine(key, record)
        else:
            self._restart_and_readmit(key, record)

    def _current_spec(self, shard_id: int, fallback):
        """The shard's spec as of *now* — manifest wins over memory."""
        if self.directory is not None:
            plan = ShardPlan.load(self.directory)
            for spec in plan.shards:
                if spec.shard_id == shard_id:
                    return spec
        return fallback

    def _restart_and_readmit(
        self, key: tuple[int, int], record: _ReplicaRecord
    ) -> None:
        shard_id, replica = key
        with self._lock:
            record.state = STATE_RESTARTING
            old_worker = record.worker
        try:
            faults.inject("supervisor.restart", shard=shard_id, replica=replica)
            spec = self._current_spec(shard_id, old_worker.spec)
            new_worker = self._spawn_worker(spec, replica)
        except Exception as exc:  # noqa: BLE001 - a failed restart is a crash
            self.metrics_registry.counter("supervisor.restart_failures").inc()
            with self._lock:
                record.state = STATE_DEAD
                record.crash_streak += 1
                record.last_error = f"restart failed: {exc}"
            if record.crash_streak > self.max_crash_streak:
                self._quarantine(key, record)
            return
        self.metrics_registry.counter("supervisor.restarts").inc()
        # Reap the corpse (and its captured stderr) now that the slot
        # has a successor.
        stop_shard_workers([old_worker])
        if not self._readmit(key, record, new_worker):
            return
        with self._lock:
            record.worker = new_worker
            record.state = STATE_OK
            record.restarts += 1
            record.last_error = ""
        self.metrics_registry.counter("supervisor.readmits").inc()

    def _readmit(
        self,
        key: tuple[int, int],
        record: _ReplicaRecord,
        new_worker: ShardWorker,
    ) -> bool:
        """Health + generation gate; only then rejoin routing."""
        shard_id, replica = key
        try:
            faults.inject("supervisor.readmit", shard=shard_id, replica=replica)
            health = self._probe(new_worker)
            if health.get("status") != "ok":
                raise WorkerStartupError(
                    f"restarted worker reports status "
                    f"{health.get('status')!r}, not ok"
                )
            # Generation-consistency rule: never re-admit a replica
            # serving an older generation than the manifest — a rolling
            # swap that landed while the worker was starting would
            # otherwise leave one replica silently answering from the
            # old corpus.
            current = self._current_spec(shard_id, new_worker.spec)
            if new_worker.spec.generation != current.generation:
                raise WorkerStartupError(
                    f"restarted worker serves generation "
                    f"{new_worker.spec.generation}, manifest moved to "
                    f"{current.generation} (mid-rolling-swap); not re-admitting"
                )
            backend = self._make_backend(new_worker)
            self.router.replace_replica(shard_id, replica, backend)
            self.router.readmit_replica(shard_id, replica)
        except Exception as exc:  # noqa: BLE001 - a failed readmit is a crash
            self.metrics_registry.counter("supervisor.readmit_failures").inc()
            stop_shard_workers([new_worker])
            with self._lock:
                record.state = STATE_DEAD
                record.crash_streak += 1
                record.last_error = f"readmit failed: {exc}"
            if record.crash_streak > self.max_crash_streak:
                self._quarantine(key, record)
            return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Deterministically ordered snapshot for ``/healthz``."""
        now = self._clock()
        replicas = []
        with self._lock:
            items = sorted(self._records.items())
            for (shard_id, replica), record in items:
                entry = {
                    "shard_id": shard_id,
                    "replica": replica,
                    "state": record.state,
                    "pid": record.worker.pid,
                    "url": record.worker.url,
                    "restarts": record.restarts,
                    "crash_streak": record.crash_streak,
                }
                if record.last_error:
                    entry["last_error"] = record.last_error
                if record.state == STATE_QUARANTINED:
                    entry["retry_after"] = max(
                        0.0, record.quarantined_until - now
                    )
                replicas.append(entry)
        return {
            "name": self.name,
            "check_interval": self.check_interval,
            "replicas": replicas,
        }

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        with self._lock:
            states = sorted(
                (key, record.state) for key, record in self._records.items()
            )
        return f"ShardSupervisor({self.name!r}, {states})"
