"""A thread-safe, long-running search service over a loaded searcher.

Every prior entry point of the library is batch-shaped: load, run,
exit.  :class:`SearchService` is the resident layer for serving a
*stream* of queries:

* **Bounded worker pool.**  ``max_workers`` daemon threads drain a
  bounded admission queue.  Searches are pure Python, so threads do not
  add CPU parallelism under the GIL — what they add is *concurrency*:
  requests overlap with I/O-bound callers (the HTTP front-end), slow
  searches don't block admission, and deadlines fire on time.  For CPU
  scaling, front several service processes with any HTTP balancer, or
  use :class:`~repro.parallel.ParallelExecutor` for batch workloads.
* **Admission control.**  When the queue is full, ``submit`` fails
  *immediately* with :class:`~repro.errors.ServiceOverloadError`
  carrying a retry-after estimate, instead of queueing unboundedly.
  Rejecting early keeps memory bounded and tail latency honest.
* **Deadlines and cooperative cancellation.**  A per-request timeout
  becomes a monotonic deadline; the worker checks it before starting
  and the searcher checks it *between query windows in the slide loop*
  (the ``cancel`` hook of :meth:`~repro.PKWiseSearcher.search`), so a
  doomed request stops consuming CPU mid-query instead of running to
  completion.
* **Result caching.**  An epoch-invalidated LRU
  (:class:`~repro.service.cache.ResultCache`) keyed by canonical query
  token hash + params fingerprint + index epoch.  Mutations
  (:meth:`add_document` / :meth:`remove_document`) bump the searcher's
  epoch, so cached and fresh results are always pair-for-pair
  identical.
* **Observability.**  All of it reports through a
  :class:`~repro.obs.MetricsRegistry`: request/latency timers,
  queue-depth gauges, cache hit/miss counters, plus the searchers' own
  phase stats — served verbatim by the HTTP front-end's ``/metrics``.
"""

from __future__ import annotations

import inspect
import threading
import time
from collections import deque
from collections.abc import Sequence

from .. import faults
from ..corpus import Document, DocumentCollection
from ..errors import (
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    SearchCancelled,
    ServiceClosedError,
    ServiceOverloadError,
)
from ..eval.harness import canonical_pair_order
from ..obs import MetricsRegistry
from ..routing import RoutingPolicy
from .cache import CacheKey, ResultCache, query_token_hash

#: Floor for retry-after estimates so clients never busy-spin.
MIN_RETRY_AFTER = 0.05

#: Fallback per-request latency estimate before any request completed.
DEFAULT_LATENCY_ESTIMATE = 0.1


class _ReadWriteLock:
    """Writer-preferring readers-writer lock.

    Searches share the index (readers); ``add_document`` /
    ``remove_document`` mutate postings dicts that a concurrent probe
    may be iterating (writers).  Writer preference keeps mutations from
    starving under a steady query stream.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()


class ServiceResponse:
    """One served request: canonical pairs plus serving metadata."""

    __slots__ = ("pairs", "cached", "seconds", "index_epoch")

    def __init__(
        self, pairs: tuple, cached: bool, seconds: float, index_epoch: int
    ) -> None:
        #: Match pairs in canonical (doc_id, data_start, query_start)
        #: order, as an immutable tuple (shared with the cache).
        self.pairs = pairs
        #: True when served from the result cache.
        self.cached = cached
        #: End-to-end seconds inside the service (admission to reply).
        self.seconds = seconds
        #: The index epoch the result reflects.
        self.index_epoch = index_epoch

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __repr__(self) -> str:
        return (
            f"ServiceResponse({len(self.pairs)} pairs, cached={self.cached}, "
            f"{self.seconds * 1e3:.2f}ms)"
        )


class ServiceFuture:
    """Handle for an admitted request; resolves to a ServiceResponse."""

    __slots__ = ("_event", "_response", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: ServiceResponse | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """True once a response or error is set."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServiceResponse:
        """Block until resolved; raises the request's error if it failed."""
        if not self._event.wait(timeout):
            raise DeadlineExceededError(
                f"no response within {timeout}s (request still queued or running)"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response

    # Internal: called by the service worker exactly once.
    def _resolve(self, response: ServiceResponse) -> None:
        self._response = response
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _Request:
    """Internal queue entry."""

    __slots__ = (
        "query", "deadline", "future", "enqueued_at", "cache_key", "routing",
    )

    def __init__(
        self,
        query: Document,
        deadline: float | None,
        future: ServiceFuture,
        cache_key: CacheKey | None,
        routing=None,
    ) -> None:
        self.query = query
        self.deadline = deadline
        self.future = future
        self.enqueued_at = time.monotonic()
        self.cache_key = cache_key
        self.routing = routing


#: Sentinel that tells a worker thread to exit.
_SHUTDOWN = object()


class SearchService:
    """Serve concurrent queries from a bounded worker pool.

    Parameters
    ----------
    searcher:
        Any object satisfying the :class:`repro.api.Searcher` protocol
        whose ``search(query)`` returns an object with ``pairs``; the
        deadline hook additionally requires ``search`` to accept a
        ``cancel`` keyword (as :class:`~repro.PKWiseSearcher` does —
        for searchers without it the service still enforces deadlines
        at dequeue and reply time, just not mid-query).
    data:
        Optional :class:`~repro.DocumentCollection` bundled with the
        searcher; required only by :meth:`search_text` (and hence the
        HTTP front-end's ``text`` queries).
    max_workers:
        Worker threads draining the admission queue.
    max_queue:
        Bound of the admission queue.  ``submit`` beyond it raises
        :class:`~repro.errors.ServiceOverloadError`.
    cache_size:
        LRU result-cache capacity in entries; ``0`` disables caching.
    default_timeout:
        Per-request timeout (seconds) applied when ``submit`` is not
        given one; ``None`` means no deadline.
    """

    def __init__(
        self,
        searcher,
        data: DocumentCollection | None = None,
        *,
        max_workers: int = 4,
        max_queue: int = 64,
        cache_size: int = 256,
        default_timeout: float | None = None,
        name: str = "search-service",
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        if max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {max_queue}")
        if cache_size < 0:
            raise ConfigurationError(f"cache_size must be >= 0, got {cache_size}")
        self.searcher = searcher
        self.data = data
        self.name = name
        self.default_timeout = default_timeout
        self.cache = ResultCache(cache_size)
        self.started_at = time.time()
        self._params_key = repr(getattr(searcher, "params", None))
        #: Epoch offset accumulated across :meth:`swap_searcher` calls so
        #: the service-level epoch stays monotonic even when a freshly
        #: built replacement searcher restarts its own counter at 0.
        self._epoch_base = 0
        #: Snapshot generation currently serving (bumped per swap).
        self.generation = 0
        self._index_lock = _ReadWriteLock()
        self._metrics_lock = threading.Lock()
        self._registry = MetricsRegistry()
        self._registry.gauge("service.workers").set(max_workers)
        self._registry.gauge("service.queue_capacity").set(max_queue)
        self._completed_seconds = 0.0
        self._completed_count = 0
        self._closed = False
        self._abort = False
        try:
            signature = inspect.signature(searcher.search)
            self._supports_cancel = "cancel" in signature.parameters
            self._supports_routing = "routing" in signature.parameters
        except (TypeError, ValueError):  # builtins without signatures
            self._supports_cancel = False
            self._supports_routing = False
        self._queue: deque[_Request] = deque()
        self._queue_capacity = max_queue
        self._queue_lock = threading.Lock()
        self._queue_ready = threading.Condition(self._queue_lock)
        self._upgrade_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(max_workers)
        ]
        for thread in self._workers:
            thread.start()
        store = getattr(searcher, "store", None)
        if store is not None:
            store.attach(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def index_epoch(self) -> int:
        """The service-level index epoch.

        The wrapped searcher's mutation counter plus the offset
        accumulated across :meth:`swap_searcher` calls — monotone over
        the service's lifetime, so cache keys from before a snapshot
        swap can never collide with keys minted after it.
        """
        return self._epoch_base + getattr(self.searcher, "index_epoch", 0)

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a worker."""
        return len(self._queue)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        return self._closed

    def healthz(self) -> dict:
        """Liveness summary served by the HTTP front-end's ``/healthz``."""
        info = {
            "status": "closed" if self._closed else "ok",
            "service": self.name,
            "documents": len(getattr(self.searcher, "rank_docs", ())),
            "index_epoch": self.index_epoch,
            "queue_depth": self.queue_depth,
            "queue_capacity": self._queue_capacity,
            "workers": len(self._workers),
            "cache_entries": len(self.cache),
            "uptime_seconds": time.time() - self.started_at,
        }
        store = getattr(self.searcher, "store", None)
        if store is not None:
            info["ingest"] = {
                "memtable_docs": store.memtable_docs,
                "segments": store.num_segments,
                "tombstones": len(store.removed),
            }
        return info

    def metrics_snapshot(self) -> dict:
        """Canonical metrics record (service + cache + search counters).

        Same envelope as the CLI's ``--metrics-out`` records, so
        ``benchmarks/check_regression.py`` can diff two serving runs.
        """
        with self._metrics_lock:
            registry = MetricsRegistry.from_snapshot(self._registry.snapshot())
        registry.counter("service.cache_hits").inc(self.cache.hits)
        registry.counter("service.cache_misses").inc(self.cache.misses)
        registry.counter("service.cache_evictions").inc(self.cache.evictions)
        registry.counter("service.cache_invalidations").inc(self.cache.invalidations)
        registry.gauge("service.cache_entries").set(len(self.cache))
        registry.gauge("service.queue_depth_now").set(self.queue_depth)
        registry.gauge("service.index_epoch").set(self.index_epoch)
        store = getattr(self.searcher, "store", None)
        if store is not None:
            registry.merge_snapshot(store.metrics_snapshot())
        return {
            "name": self.name,
            "schema_version": 1,
            "metrics": registry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _retry_after(self) -> float:
        """Estimated seconds until the queue has room again."""
        if self._completed_count:
            latency = self._completed_seconds / self._completed_count
        else:
            latency = DEFAULT_LATENCY_ESTIMATE
        backlog = self.queue_depth + len(self._workers)
        return max(MIN_RETRY_AFTER, backlog * latency / len(self._workers))

    def _cache_key(self, query: Document, routing=None) -> CacheKey:
        params_key = (
            self._params_key if routing is None
            else (self._params_key, repr(routing))
        )
        return (query_token_hash(query.tokens), params_key, self.index_epoch)

    def submit(
        self,
        query: Document,
        *,
        timeout: float | None = None,
        routing=None,
    ) -> ServiceFuture:
        """Admit one query; returns a future resolving to its response.

        Fast path: a cache hit resolves the future immediately without
        touching the queue.  Otherwise the request joins the admission
        queue — or is rejected with
        :class:`~repro.errors.ServiceOverloadError` when the queue is
        at capacity.

        ``routing`` overrides the searcher's
        :class:`~repro.RoutingPolicy` for this request only; cached
        entries are keyed per policy, so routed and unrouted results
        never mix.
        """
        if self._closed:
            raise ServiceClosedError(f"{self.name} is closed")
        if routing is not None:
            routing = RoutingPolicy.from_dict(routing)
            if not self._supports_routing:
                raise ConfigurationError(
                    f"{type(self.searcher).__name__} does not support "
                    f"fingerprint routing; serve a pkwise interval engine "
                    f"or drop the routing override"
                )
        if timeout is None:
            timeout = self.default_timeout
        with self._metrics_lock:
            self._registry.counter("service.requests").inc()
        future = ServiceFuture()
        key = self._cache_key(query, routing)
        cached = self.cache.get(key)
        if cached is not None:
            with self._metrics_lock:
                self._registry.counter("service.completed").inc()
                self._registry.timer("service.request_seconds").add(0.0)
            future._resolve(
                ServiceResponse(cached, cached=True, seconds=0.0, index_epoch=key[2])
            )
            return future
        deadline = time.monotonic() + timeout if timeout is not None else None
        request = _Request(query, deadline, future, key, routing)
        with self._queue_lock:
            if self._closed:
                raise ServiceClosedError(f"{self.name} is closed")
            if len(self._queue) >= self._queue_capacity:
                retry_after = self._retry_after()
                with self._metrics_lock:
                    self._registry.counter("service.rejected").inc()
                raise ServiceOverloadError(
                    f"{self.name} admission queue full "
                    f"({self._queue_capacity} waiting); retry in "
                    f"{retry_after:.2f}s",
                    retry_after=retry_after,
                )
            self._queue.append(request)
            depth = len(self._queue)
            self._queue_ready.notify()
        with self._metrics_lock:
            gauge = self._registry.gauge("service.queue_depth")
            gauge.set(max(gauge.value, depth))
        return future

    def search(
        self,
        query: Document,
        *,
        timeout: float | None = None,
        routing=None,
    ) -> ServiceResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(query, timeout=timeout, routing=routing).result()

    def search_text(
        self,
        text: str,
        *,
        timeout: float | None = None,
        routing=None,
    ) -> ServiceResponse:
        """Encode ``text`` against the bundled collection and search it."""
        if self.data is None:
            raise ReproError(
                "service has no document collection; reload the index with "
                "its data bundle (repro index saves it by default) or "
                "submit pre-encoded Document queries"
            )
        return self.search(
            self.data.encode_query(text), timeout=timeout, routing=routing
        )

    # ------------------------------------------------------------------
    # Index mutation (write side)
    # ------------------------------------------------------------------
    def _live_store(self):
        """The ingest store backing mutations, upgrading lazily.

        Every write on a :class:`SearchService` flows through a
        :class:`~repro.ingest.IngestStore` (the LSM write path).  If the
        current searcher does not carry one yet — including a frozen
        compact searcher, which is read-only on its own — the existing
        index becomes the base segment of a fresh in-memory store and
        the tiered LSM view is swapped in, so the first write upgrades
        the service to live ingestion transparently.
        """
        store = getattr(self.searcher, "store", None)
        if store is not None:
            return store
        with self._upgrade_lock:
            store = getattr(self.searcher, "store", None)
            if store is None:
                from ..ingest import IngestStore

                store = IngestStore.from_searcher(self.searcher, self.data)
                store.attach(self)
        return store

    def add_document(self, document: Document) -> int:
        """Index one more document; invalidates cached results via epoch.

        Routed through the LSM ingest write path: the document lands in
        the store's mutable memtable (upgrading a plain or frozen
        compact searcher to a tiered live view on first write) and
        becomes visible to the next search atomically.  Frozen-segment
        cache entries stay warm — only the epoch component covering the
        memtable moves.
        """
        store = self._live_store()
        doc_id = store.add_document(document)
        with self._metrics_lock:
            self._registry.counter("service.mutations").inc()
        return doc_id

    def add_text(self, text: str, name: str | None = None) -> int:
        """Tokenize ``text`` into the bundled collection and index it."""
        if self.data is None:
            raise ReproError("service has no document collection to tokenize into")
        store = self._live_store()
        if store.data is self.data:
            doc_id = store.add_text(text, name=name)
        else:
            doc_id = store.add_document(self.data.add_text(text, name=name))
        with self._metrics_lock:
            self._registry.counter("service.mutations").inc()
        return doc_id

    def remove_document(self, doc_id: int) -> None:
        """Tombstone ``doc_id``; invalidates cached results via epoch."""
        store = self._live_store()
        store.remove(doc_id)
        with self._metrics_lock:
            self._registry.counter("service.mutations").inc()

    def swap_searcher(
        self,
        searcher=None,
        data: DocumentCollection | None = None,
        *,
        factory=None,
    ) -> int:
        """Atomically replace the serving searcher (rolling snapshot swap).

        The replacement — typically a freshly built compact snapshot
        mapped with ``mmap=True`` — is installed under the write side of
        the index lock, which by construction waits for every in-flight
        search (reader) to drain and admits no new one until the swap
        completes.  Each request therefore runs entirely against exactly
        one generation; a query stream across a swap can observe the old
        result set or the new one, never a mix.  The service epoch jumps
        strictly past everything the old searcher served, so every
        cached result from the old generation becomes unreachable (and
        is purged in one scan on the next insert).  Dropping the old
        searcher releases its snapshot mapping.

        Pass ``factory`` (a zero-argument callable) instead of
        ``searcher`` to run the final commit of a prepared swap inside
        the write-lock critical section itself — the ingest compactor
        uses this so flipping its tier list and installing the new view
        are one atomic step against concurrent searches.  A factory
        returning ``None`` aborts: nothing is swapped and the current
        generation is returned unchanged.

        Returns the new serving generation number.
        """
        if self._closed:
            raise ServiceClosedError(f"{self.name} is closed")
        if (searcher is None) == (factory is None):
            raise ConfigurationError(
                "swap_searcher takes exactly one of searcher or factory"
            )
        self._index_lock.acquire_write()
        try:
            if factory is not None:
                searcher = factory()
                if searcher is None:
                    return self.generation
            new_contrib = getattr(searcher, "index_epoch", 0)
            old_searcher = self.searcher
            old_epoch = self.index_epoch
            self.searcher = searcher
            if data is not None:
                self.data = data
            self._epoch_base = old_epoch + 1 - new_contrib
            self._params_key = repr(getattr(searcher, "params", None))
            try:
                signature = inspect.signature(searcher.search)
                self._supports_cancel = "cancel" in signature.parameters
                self._supports_routing = "routing" in signature.parameters
            except (TypeError, ValueError):
                self._supports_cancel = False
                self._supports_routing = False
            self.generation += 1
            generation = self.generation
        finally:
            self._index_lock.release_write()
        with self._metrics_lock:
            self._registry.counter("service.swaps").inc()
        close = getattr(old_searcher, "close", None)
        if close is not None and old_searcher is not searcher:
            close()
        return generation

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._queue_lock:
                while not self._queue and not self._closed:
                    self._queue_ready.wait()
                if self._queue:
                    request = self._queue.popleft()
                elif self._closed:
                    return
                else:  # pragma: no cover - spurious wakeup
                    continue
            self._process(request)

    def _process(self, request: _Request) -> None:
        now = time.monotonic()
        waited = now - request.enqueued_at
        deadline = request.deadline
        if deadline is not None and now > deadline:
            with self._metrics_lock:
                self._registry.counter("service.deadline_exceeded").inc()
                self._registry.timer("service.queue_wait_seconds").add(waited)
            request.future._fail(
                DeadlineExceededError(
                    f"deadline passed after {waited * 1e3:.1f}ms in queue, "
                    f"before the search started"
                )
            )
            return

        def cancelled() -> bool:
            return self._abort or (
                deadline is not None and time.monotonic() > deadline
            )

        self._index_lock.acquire_read()
        try:
            # Fault-injection site for the request path: an injected
            # raise surfaces through the future like any searcher error
            # (and through the HTTP front-end as a 500), which is what
            # the client-resilience tests exercise.
            faults.inject(
                "service.request", query_name=request.query.name
            )
            # Key under the read lock: mutations cannot interleave here,
            # so the epoch is exactly the one the search observes.
            key = (
                request.cache_key[0],
                request.cache_key[1],
                self.index_epoch,
            )
            cached = self.cache.get(key)
            if cached is not None:
                pairs: tuple | None = cached
                was_cached = True
            else:
                was_cached = False
                kwargs = {}
                if self._supports_cancel:
                    # Searcher without a cancel hook: deadlines are still
                    # enforced at dequeue time, just not mid-query.
                    kwargs["cancel"] = cancelled
                if request.routing is not None and self._supports_routing:
                    kwargs["routing"] = request.routing
                result = self.searcher.search(request.query, **kwargs)
                pairs = tuple(canonical_pair_order(list(result.pairs)))
                self.cache.put(key, pairs)
        except SearchCancelled as exc:
            self._finish_cancelled(request, waited, exc)
            return
        except BaseException as exc:  # searcher bugs surface to the caller
            with self._metrics_lock:
                self._registry.counter("service.errors").inc()
            request.future._fail(exc)
            return
        finally:
            self._index_lock.release_read()

        elapsed = time.monotonic() - request.enqueued_at
        stats = None if was_cached else getattr(result, "stats", None)
        with self._metrics_lock:
            self._registry.counter("service.completed").inc()
            self._registry.timer("service.request_seconds").add(elapsed)
            self._registry.timer("service.queue_wait_seconds").add(waited)
            if stats is not None:
                stats.to_registry(self._registry)
            self._completed_seconds += elapsed
            self._completed_count += 1
        request.future._resolve(
            ServiceResponse(
                pairs, cached=was_cached, seconds=elapsed, index_epoch=key[2]
            )
        )

    def _finish_cancelled(
        self, request: _Request, waited: float, exc: SearchCancelled
    ) -> None:
        with self._metrics_lock:
            self._registry.timer("service.queue_wait_seconds").add(waited)
        if self._abort and (
            request.deadline is None or time.monotonic() <= request.deadline
        ):
            with self._metrics_lock:
                self._registry.counter("service.cancelled").inc()
            request.future._fail(
                ServiceClosedError(f"{self.name} closed mid-search ({exc})")
            )
        else:
            with self._metrics_lock:
                self._registry.counter("service.deadline_exceeded").inc()
            request.future._fail(
                DeadlineExceededError(
                    f"deadline passed after {exc.windows_processed} query "
                    f"windows; partial work discarded"
                )
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` (default) lets queued requests finish; with
        ``drain=False`` queued requests fail with
        :class:`~repro.errors.ServiceClosedError` and running searches
        are cancelled at their next slide-loop check.  Idempotent.
        """
        with self._queue_lock:
            if self._closed:
                return
            self._closed = True
            abandoned: list[_Request] = []
            if not drain:
                self._abort = True
                abandoned = list(self._queue)
                self._queue.clear()
            self._queue_ready.notify_all()
        for request in abandoned:
            request.future._fail(ServiceClosedError(f"{self.name} is closed"))
        for thread in self._workers:
            thread.join()
        store = getattr(self.searcher, "store", None)
        if store is not None:
            store.detach(self)

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SearchService({self.name!r}, workers={len(self._workers)}, "
            f"queue={self.queue_depth}/{self._queue_capacity}, "
            f"cache={self.cache!r}, closed={self._closed})"
        )
