"""Stdlib client for a running :mod:`repro.service` HTTP server.

Deliberately minimal — ``urllib`` only, blocking — so scripts, the CI
smoke job, and ``repro query --server`` need no HTTP dependency.
Server-side errors surface as the same typed exceptions the in-process
service raises (429 → :class:`~repro.errors.ServiceOverloadError`,
504 → :class:`~repro.errors.DeadlineExceededError`), so callers can
share retry logic between local and remote use.

Two layers:

* The one-shot functions (:func:`remote_search`, :func:`remote_healthz`,
  :func:`remote_metrics`) — one HTTP round trip, no retries.
* :class:`ResilientClient` — the production wrapper: retries with
  capped exponential backoff and **full jitter**, honoring the server's
  ``retry_after`` hint; a **deadline budget** bounding the total time
  spent across attempts; and a small **circuit breaker** that fails
  fast (:class:`~repro.errors.CircuitOpenError`) after a run of
  consecutive connect/5xx failures, re-probing the server with a single
  half-open request once a cooldown passes.  Mirrored on the command
  line by ``repro query --retries/--timeout``.
"""

from __future__ import annotations

import math
import random
import threading
import time
import urllib.error
import urllib.request
from collections.abc import Sequence

import json

from .. import faults
from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)

#: Floor for server-supplied ``retry_after`` hints: a malformed,
#: negative, or zero value must never turn the retry loop into a
#: busy-wait hammering an overloaded server.
MIN_RETRY_AFTER = 0.05

#: Smallest deadline budget (seconds) worth spending on one more
#: attempt.  A backoff sleep is clamped so at least this much budget
#: survives it; when even that much is gone — or the server's
#: ``retry_after`` hint cannot fit inside the remaining budget — the
#: retry loop raises *before* sleeping instead of burning the tail of
#: the budget on a nap it can never wake up from usefully.
MIN_ATTEMPT_BUDGET = 0.01


def _parse_retry_after(value, default: float = 1.0) -> float:
    """A sane ``retry_after`` from an untrusted response body.

    Non-numeric values fall back to ``default`` (the error path must
    never raise ``ValueError`` itself); numeric ones clamp to at least
    :data:`MIN_RETRY_AFTER`.
    """
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        return default
    if not math.isfinite(parsed):
        return default
    return max(MIN_RETRY_AFTER, parsed)


def _typed_http_error(code: int, message: str, body: dict) -> ReproError:
    """Map an HTTP status to this library's exception family.

    The original status travels on the ``status`` attribute so retry
    policies can distinguish server faults (5xx) from caller mistakes
    (4xx) without re-parsing messages.
    """
    error: ReproError
    if code == 429:
        error = ServiceOverloadError(
            message, retry_after=_parse_retry_after(body.get("retry_after"))
        )
    elif code == 504:
        error = DeadlineExceededError(message)
    elif code == 503:
        error = ServiceClosedError(message)
    else:
        error = ReproError(message)
    error.status = code
    return error


def _request(url: str, payload: dict | None = None, timeout: float = 30.0) -> dict:
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read())
        except (json.JSONDecodeError, ValueError):
            body = {}
        if not isinstance(body, dict):
            body = {}
        message = body.get("error", f"HTTP {exc.code}")
        raise _typed_http_error(exc.code, message, body) from exc
    # A 200 whose body is not a JSON object is a transport-level fault
    # (truncated proxy response, wrong endpoint, mid-restart garbage) —
    # surface it typed with a 5xx status so retry policies treat it like
    # any other server fault instead of leaking json.JSONDecodeError.
    try:
        parsed = json.loads(raw)
    except (json.JSONDecodeError, ValueError) as exc:
        error = ServiceError(f"malformed JSON body from {url}: {exc}")
        error.status = 502
        raise error from exc
    if not isinstance(parsed, dict):
        error = ServiceError(
            f"expected a JSON object from {url}, "
            f"got {type(parsed).__name__}"
        )
        error.status = 502
        raise error
    return parsed


def remote_search(
    base_url: str,
    text: str | None = None,
    *,
    token_ids: Sequence[int] | None = None,
    timeout: float | None = None,
    routing=None,
    http_timeout: float = 30.0,
) -> dict:
    """POST one query to ``{base_url}/search`` and return the reply dict.

    Exactly one of ``text`` / ``token_ids`` must be given.  ``timeout``
    is the *service-side* deadline forwarded in the request body;
    ``http_timeout`` bounds the socket.  ``routing`` (a
    :class:`~repro.RoutingPolicy`, dict, or mode string) is forwarded
    as the per-request fingerprint routing override.
    """
    if (text is None) == (token_ids is None):
        raise ValueError("pass exactly one of text= or token_ids=")
    payload: dict = {"timeout": timeout}
    if text is not None:
        payload["text"] = text
    else:
        payload["token_ids"] = list(token_ids)
    if routing is not None:
        payload["routing"] = (
            routing.to_dict() if hasattr(routing, "to_dict") else routing
        )
    return _request(f"{base_url.rstrip('/')}/search", payload, timeout=http_timeout)


def remote_healthz(base_url: str, http_timeout: float = 10.0) -> dict:
    """GET ``{base_url}/healthz``."""
    return _request(f"{base_url.rstrip('/')}/healthz", timeout=http_timeout)


def remote_metrics(base_url: str, http_timeout: float = 10.0) -> dict:
    """GET ``{base_url}/metrics`` (a MetricsRegistry snapshot envelope)."""
    return _request(f"{base_url.rstrip('/')}/metrics", timeout=http_timeout)


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    *Closed* passes every request through, counting consecutive
    failures; at ``failure_threshold`` it *opens* and
    :meth:`allow` fails fast with
    :class:`~repro.errors.CircuitOpenError` for ``reset_after``
    seconds.  The first request after the cooldown runs as the
    *half-open* probe — its success closes the circuit, its failure
    re-opens it (and restarts the cooldown); concurrent requests keep
    failing fast while the probe is in flight.  Thread-safe.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        with self._lock:
            return self._state

    def allow(self) -> None:
        """Admit one request or raise :class:`CircuitOpenError`."""
        with self._lock:
            if self._state == "closed":
                return
            if self._state == "open":
                elapsed = self._clock() - self._opened_at
                if elapsed >= self.reset_after:
                    self._state = "half-open"
                    return  # this caller is the probe
                raise CircuitOpenError(
                    f"circuit breaker open after {self._failures} consecutive "
                    f"failures; next probe in "
                    f"{self.reset_after - elapsed:.2f}s",
                    retry_after=max(MIN_RETRY_AFTER, self.reset_after - elapsed),
                )
            # half-open: one probe is already in flight
            raise CircuitOpenError(
                "circuit breaker half-open; waiting on the probe request",
                retry_after=MIN_RETRY_AFTER,
            )

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()


class ResilientClient:
    """Retrying, deadline-bounded, circuit-broken HTTP client.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``"http://127.0.0.1:8080"``.
    retries:
        Re-attempts after the first try (``3`` = at most four round
        trips per call).
    backoff / backoff_cap:
        Exponential delay envelope (seconds): attempt *n* sleeps a
        uniform draw from ``[0, min(cap, backoff * 2**(n-1))]`` — full
        jitter — but never less than the server's clamped
        ``retry_after`` hint when one came back.
    deadline:
        Total wall-clock budget (seconds) per call across every attempt
        and backoff sleep; exceeding it raises
        :class:`~repro.errors.DeadlineExceededError` chaining the last
        transport error.  ``None`` = unbounded.  The budget is enforced
        *per attempt*, not just between them: each attempt's socket
        timeout is clamped to ``min(http_timeout, remaining budget)``,
        so a single hung connection can overrun the deadline by at most
        one socket-timeout resolution — never by ``http_timeout``
        multiples — and an attempt whose budget is already spent raises
        before sending rather than firing a doomed request.  Backoff
        sleeps are clamped the same way: a sleep never eats the budget
        slice (:data:`MIN_ATTEMPT_BUDGET`) reserved for the attempt
        after it, and when the remaining budget cannot cover another
        attempt at all — or the server's ``retry_after`` hint does not
        fit inside it — the loop raises *before* sleeping instead of
        discovering the exhausted budget on wake-up.
    http_timeout:
        Socket timeout per individual attempt (upper bound; see
        ``deadline`` for the per-attempt clamp).
    failure_threshold / breaker_reset:
        Circuit-breaker tuning (see :class:`CircuitBreaker`).
    rng / clock / sleep:
        Injection points for deterministic tests.

    What retries: connection-level failures (``URLError``), 5xx
    responses, and 429 overload (honoring ``retry_after``).  What does
    not: other 4xx responses (the request itself is wrong) and
    :class:`CircuitOpenError` (the point of the breaker is *not*
    sending).  Only connect/5xx failures count toward the breaker; an
    overloaded-but-responsive server (429) neither trips nor resets it.
    """

    def __init__(
        self,
        base_url: str,
        *,
        retries: int = 3,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
        deadline: float | None = 30.0,
        http_timeout: float = 30.0,
        failure_threshold: int = 5,
        breaker_reset: float = 30.0,
        rng: random.Random | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0 or backoff_cap < 0:
            raise ValueError("backoff values must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.deadline = deadline
        self.http_timeout = http_timeout
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            reset_after=breaker_reset,
            clock=clock,
        )
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._sleep = sleep

    # ------------------------------------------------------------------
    def _delay(self, attempt: int, hint: float | None) -> float:
        """Full-jitter exponential backoff, floored by the server hint."""
        envelope = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        delay = self._rng.uniform(0.0, envelope)
        if hint is not None:
            delay = max(delay, hint)
        return delay

    def _call(self, send):
        """Run ``send(http_timeout)`` under the retry policy and breaker.

        ``send`` receives the per-attempt socket timeout: the configured
        ``http_timeout`` clamped to whatever remains of the deadline
        budget, so no single attempt can sleep past the deadline.
        """
        deadline_at = (
            None if self.deadline is None else self._clock() + self.deadline
        )
        attempt = 0
        last_error: Exception | None = None
        while True:
            self.breaker.allow()
            http_timeout = self.http_timeout
            if deadline_at is not None:
                remaining = deadline_at - self._clock()
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"client deadline ({self.deadline}s) exhausted "
                        f"after {attempt} attempt(s): "
                        f"{last_error or 'no attempt sent'}"
                    ) from last_error
                http_timeout = min(http_timeout, remaining)
            faults.inject("client.request", attempt=attempt)
            hint: float | None = None
            try:
                result = send(http_timeout)
            except ServiceOverloadError as exc:
                # The server is alive, just busy: retry after its hint,
                # without moving the breaker either way.
                last_error = exc
                hint = _parse_retry_after(exc.retry_after)
            except ReproError as exc:
                status = getattr(exc, "status", None)
                if status is not None and status >= 500:
                    self.breaker.record_failure()
                    last_error = exc
                else:
                    raise  # a 4xx: retrying the same bad request is futile
            except urllib.error.URLError as exc:
                self.breaker.record_failure()
                last_error = ServiceError(
                    f"cannot reach {self.base_url}: {exc.reason}"
                )
                last_error.__cause__ = exc
            else:
                self.breaker.record_success()
                return result

            attempt += 1
            if attempt > self.retries:
                raise last_error
            delay = self._delay(attempt, hint)
            if deadline_at is not None:
                # Clamp the sleep so the budget left after it can still
                # fund an attempt; if even a clamped sleep cannot leave
                # that much — or honoring the server's retry_after hint
                # would overrun the budget — fail now, before sleeping.
                sleep_budget = (
                    deadline_at - self._clock() - MIN_ATTEMPT_BUDGET
                )
                if sleep_budget <= 0 or (
                    hint is not None and hint > sleep_budget
                ):
                    raise DeadlineExceededError(
                        f"client deadline ({self.deadline}s) cannot cover "
                        f"another attempt after {attempt} attempt(s): "
                        f"{last_error}"
                    ) from last_error
                delay = min(delay, sleep_budget)
            if delay > 0:
                self._sleep(delay)

    # ------------------------------------------------------------------
    def search(
        self,
        text: str | None = None,
        *,
        token_ids: Sequence[int] | None = None,
        timeout: float | None = None,
        routing=None,
    ) -> dict:
        """Resilient :func:`remote_search`."""
        return self._call(
            lambda http_timeout: remote_search(
                self.base_url,
                text,
                token_ids=token_ids,
                timeout=timeout,
                routing=routing,
                http_timeout=http_timeout,
            )
        )

    def healthz(self) -> dict:
        """Resilient :func:`remote_healthz`."""
        return self._call(
            lambda http_timeout: remote_healthz(
                self.base_url, http_timeout=http_timeout
            )
        )

    def metrics(self) -> dict:
        """Resilient :func:`remote_metrics`."""
        return self._call(
            lambda http_timeout: remote_metrics(
                self.base_url, http_timeout=http_timeout
            )
        )

    def __repr__(self) -> str:
        return (
            f"ResilientClient({self.base_url!r}, retries={self.retries}, "
            f"deadline={self.deadline}, breaker={self.breaker.state})"
        )
