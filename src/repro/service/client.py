"""Tiny stdlib client for a running :mod:`repro.service` HTTP server.

Deliberately minimal — ``urllib`` only, blocking, one function per
endpoint — so scripts, the CI smoke job, and ``repro query --server``
need no HTTP dependency.  Server-side errors surface as the same typed
exceptions the in-process service raises (429 →
:class:`~repro.errors.ServiceOverloadError`, 504 →
:class:`~repro.errors.DeadlineExceededError`), so callers can share
retry logic between local and remote use.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from collections.abc import Sequence

from ..errors import (
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadError,
)


def _request(url: str, payload: dict | None = None, timeout: float = 30.0) -> dict:
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read())
        except (json.JSONDecodeError, ValueError):
            body = {}
        message = body.get("error", f"HTTP {exc.code}")
        if exc.code == 429:
            raise ServiceOverloadError(
                message, retry_after=float(body.get("retry_after", 1.0))
            ) from exc
        if exc.code == 504:
            raise DeadlineExceededError(message) from exc
        if exc.code == 503:
            raise ServiceClosedError(message) from exc
        raise ReproError(message) from exc


def remote_search(
    base_url: str,
    text: str | None = None,
    *,
    token_ids: Sequence[int] | None = None,
    timeout: float | None = None,
    http_timeout: float = 30.0,
) -> dict:
    """POST one query to ``{base_url}/search`` and return the reply dict.

    Exactly one of ``text`` / ``token_ids`` must be given.  ``timeout``
    is the *service-side* deadline forwarded in the request body;
    ``http_timeout`` bounds the socket.
    """
    if (text is None) == (token_ids is None):
        raise ValueError("pass exactly one of text= or token_ids=")
    payload: dict = {"timeout": timeout}
    if text is not None:
        payload["text"] = text
    else:
        payload["token_ids"] = list(token_ids)
    return _request(f"{base_url.rstrip('/')}/search", payload, timeout=http_timeout)


def remote_healthz(base_url: str, http_timeout: float = 10.0) -> dict:
    """GET ``{base_url}/healthz``."""
    return _request(f"{base_url.rstrip('/')}/healthz", timeout=http_timeout)


def remote_metrics(base_url: str, http_timeout: float = 10.0) -> dict:
    """GET ``{base_url}/metrics`` (a MetricsRegistry snapshot envelope)."""
    return _request(f"{base_url.rstrip('/')}/metrics", timeout=http_timeout)
