"""repro: local similarity search for unstructured text.

A faithful open-source reproduction of *Local Similarity Search for
Unstructured Text* (Wang, Xiao, Wang, Qin, Zhang, Ishikawa — SIGMOD
2016).  Given a collection of data documents and a query document, the
library finds every pair of sliding windows (one from each side) of size
``w`` that differ by at most ``tau`` tokens — the paper's **pkwise**
algorithm plus all of its evaluated baselines.

Quickstart::

    from repro import (
        DocumentCollection, PKWiseSearcher, SearchParams
    )

    data = DocumentCollection()
    data.add_text("the lord of the rings is a famous novel ...")
    query = data.encode_query("the lord and the kings ...")

    params = SearchParams(w=8, tau=2, k_max=2)
    searcher = PKWiseSearcher(data, params)
    for match in searcher.search(query):
        print(match.doc_id, match.data_start, match.query_start, match.overlap)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduction of every table and figure of the paper.
"""

from .core import (
    MatchPair,
    PKWiseNonIntervalSearcher,
    PKWiseSearcher,
    SearchResult,
    SearchStats,
    SelfJoinPair,
    WeightedMatchPair,
    WeightedPKWiseSearcher,
    local_similarity_self_join,
)
from .corpus import (
    CollectionStats,
    Document,
    DocumentCollection,
    GroundTruthPair,
    ObfuscationLevel,
    collection_from_directory,
    collection_from_texts,
    make_profile_collection,
)
from .errors import (
    ConfigurationError,
    CorpusError,
    IndexStateError,
    PartitioningError,
    ReproError,
    TokenizationError,
)
from .obs import (
    MetricsRegistry,
    ObservabilityError,
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
)
from .ordering import GlobalOrder
from .parallel import ParallelExecutor
from .params import SearchParams, suggested_subpartitions
from .persistence import PersistenceError, load_bundle, load_searcher, save_searcher
from .postprocess import Passage, filter_passages, merge_passages
from .similarity import (
    jaccard_to_overlap,
    jaccard_to_tau,
    overlap_to_jaccard,
    tau_to_jaccard,
)
from .partition import (
    CostWeights,
    GreedyPartitioner,
    PartitionScheme,
    equi_width_scheme,
    workload_cost,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core search
    "PKWiseSearcher",
    "PKWiseNonIntervalSearcher",
    "WeightedPKWiseSearcher",
    "MatchPair",
    "WeightedMatchPair",
    "SearchResult",
    "SearchStats",
    "SearchParams",
    "suggested_subpartitions",
    "SelfJoinPair",
    "local_similarity_self_join",
    # Parallel execution
    "ParallelExecutor",
    # Observability
    "MetricsRegistry",
    "Tracer",
    "get_tracer",
    "configure_tracing",
    "disable_tracing",
    "ObservabilityError",
    # Post-processing
    "Passage",
    "merge_passages",
    "filter_passages",
    # Threshold conversions
    "jaccard_to_overlap",
    "overlap_to_jaccard",
    "jaccard_to_tau",
    "tau_to_jaccard",
    # Persistence
    "save_searcher",
    "load_searcher",
    "load_bundle",
    "PersistenceError",
    # Corpus
    "Document",
    "DocumentCollection",
    "CollectionStats",
    "collection_from_directory",
    "collection_from_texts",
    "make_profile_collection",
    "GroundTruthPair",
    "ObfuscationLevel",
    # Ordering and partitioning
    "GlobalOrder",
    "PartitionScheme",
    "GreedyPartitioner",
    "CostWeights",
    "workload_cost",
    "equi_width_scheme",
    # Errors
    "ReproError",
    "ConfigurationError",
    "TokenizationError",
    "CorpusError",
    "PartitioningError",
    "IndexStateError",
]
