"""repro: local similarity search for unstructured text.

A faithful open-source reproduction of *Local Similarity Search for
Unstructured Text* (Wang, Xiao, Wang, Qin, Zhang, Ishikawa — SIGMOD
2016).  Given a collection of data documents and a query document, the
library finds every pair of sliding windows (one from each side) of size
``w`` that differ by at most ``tau`` tokens — the paper's **pkwise**
algorithm plus all of its evaluated baselines.

Quickstart — the :class:`Index` facade is the documented entry point::

    from repro import Index

    index = Index.build(
        ["the lord of the rings is a famous novel ..."], w=8, tau=2, k_max=2
    )
    for match in index.search_text("the lord and the kings ..."):
        print(match.doc_id, match.data_start, match.query_start, match.overlap)

    # Persist (compact, mmap-able) and reopen without copying:
    index.save("corpus.idx", compact=True)
    index = Index.open("corpus.idx", mmap=True)

    # Serve concurrently (see repro.service / `repro serve`):
    with index.serve(max_workers=4) as service:
        response = service.search_text("the lord and the kings ...")

    # Mutate through the unified write path (LSM ingest; see
    # repro.ingest / `repro ingest`) — new documents are searchable
    # immediately, flush/compact fold them into frozen segments:
    doc_id = index.add("another document streaming in ...")
    index.remove(doc_id)
    index.compact()

The individual layers (:class:`DocumentCollection`,
:class:`PKWiseSearcher`, :class:`SearchParams`, ...) remain importable
directly for fine-grained control.  See DESIGN.md for the full system
inventory and EXPERIMENTS.md for the reproduction of every table and
figure of the paper.
"""

import warnings as _warnings

from . import api
from .api import Index, ProbeHit, Searcher
from .core import (
    MatchPair,
    PKWiseNonIntervalSearcher,
    PKWiseSearcher,
    SearchResult,
    SearchStats,
    SelfJoinPair,
    WeightedMatchPair,
    WeightedPKWiseSearcher,
    WeightedSearchResult,
    local_similarity_self_join,
)
from .corpus import (
    CollectionStats,
    Document,
    DocumentCollection,
    GroundTruthPair,
    ObfuscationLevel,
    collection_from_directory,
    collection_from_texts,
    make_profile_collection,
)
from .errors import (
    CircuitOpenError,
    ConfigurationError,
    CorpusError,
    DeadlineExceededError,
    FaultInjectionError,
    IndexStateError,
    PartitioningError,
    ReplicaQuarantinedError,
    ReproError,
    RoutingUnavailableError,
    SearchCancelled,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    TokenizationError,
    UnknownTokenError,
    WorkerCrashError,
    WorkerStartupError,
)
from .index import CompactIntervalIndex, IntervalIndex, PackedRankDocs
from .ingest import CompactionPolicy, IngestStore, LSMSearcher
from .faults import FaultPlan, FaultSpec
from .obs import (
    MetricsRegistry,
    ObservabilityError,
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
)
from .ordering import GlobalOrder
from .parallel import ParallelExecutor
from .params import SearchParams, suggested_subpartitions
from .persistence import PersistenceError, SearcherBundle, save_searcher
from .postprocess import Passage, filter_passages, merge_passages
from .routing import RoutingPolicy
from .service import (
    ResilientClient,
    RouterResponse,
    SearchService,
    ServiceResponse,
    ShardPlan,
    ShardRouter,
    ShardSupervisor,
)
from .similarity import (
    jaccard_to_overlap,
    jaccard_to_tau,
    overlap_to_jaccard,
    tau_to_jaccard,
)
from .partition import (
    CostWeights,
    GreedyPartitioner,
    PartitionScheme,
    equi_width_scheme,
    workload_cost,
)

__version__ = "1.3.0"

#: Legacy top-level loaders, kept importable behind a DeprecationWarning.
_DEPRECATED_ALIASES = {
    "load_searcher": "repro.Index.open(path).searcher()",
    "load_bundle": "repro.Index.open",
}


def __getattr__(name: str):
    """Deprecated aliases: ``repro.load_searcher`` / ``repro.load_bundle``.

    Both now live behind :meth:`repro.Index.open`; the old names keep
    working (they forward to :mod:`repro.persistence`) but warn.
    """
    if name in _DEPRECATED_ALIASES:
        _warnings.warn(
            f"repro.{name} is deprecated; use {_DEPRECATED_ALIASES[name]}",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import persistence

        return getattr(persistence, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "__version__",
    # Facade (the documented entry point)
    "api",
    "Index",
    "Searcher",
    # Serving
    "SearchService",
    "ServiceResponse",
    "ResilientClient",
    "ShardPlan",
    "ShardRouter",
    "ShardSupervisor",
    "RouterResponse",
    # Fault injection (robustness testing)
    "FaultPlan",
    "FaultSpec",
    # Core search
    "PKWiseSearcher",
    "PKWiseNonIntervalSearcher",
    "WeightedPKWiseSearcher",
    "IntervalIndex",
    "CompactIntervalIndex",
    "PackedRankDocs",
    "ProbeHit",
    "MatchPair",
    "WeightedMatchPair",
    "WeightedSearchResult",
    "SearchResult",
    "SearchStats",
    "SearchParams",
    "RoutingPolicy",
    "suggested_subpartitions",
    "SelfJoinPair",
    "local_similarity_self_join",
    # Streaming ingestion (LSM write path)
    "IngestStore",
    "CompactionPolicy",
    "LSMSearcher",
    # Parallel execution
    "ParallelExecutor",
    # Observability
    "MetricsRegistry",
    "Tracer",
    "get_tracer",
    "configure_tracing",
    "disable_tracing",
    "ObservabilityError",
    # Post-processing
    "Passage",
    "merge_passages",
    "filter_passages",
    # Threshold conversions
    "jaccard_to_overlap",
    "overlap_to_jaccard",
    "jaccard_to_tau",
    "tau_to_jaccard",
    # Persistence
    "save_searcher",
    "load_searcher",
    "load_bundle",
    "SearcherBundle",
    "PersistenceError",
    # Corpus
    "Document",
    "DocumentCollection",
    "CollectionStats",
    "collection_from_directory",
    "collection_from_texts",
    "make_profile_collection",
    "GroundTruthPair",
    "ObfuscationLevel",
    # Ordering and partitioning
    "GlobalOrder",
    "PartitionScheme",
    "GreedyPartitioner",
    "CostWeights",
    "workload_cost",
    "equi_width_scheme",
    # Errors
    "ReproError",
    "ConfigurationError",
    "TokenizationError",
    "CorpusError",
    "PartitioningError",
    "IndexStateError",
    "RoutingUnavailableError",
    "SearchCancelled",
    "UnknownTokenError",
    "ServiceError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "ReplicaQuarantinedError",
    "WorkerStartupError",
    "CircuitOpenError",
    "FaultInjectionError",
    "WorkerCrashError",
]
