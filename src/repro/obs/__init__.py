"""repro.obs: the observability layer (phase tracing + metrics registry).

Two orthogonal primitives:

* :class:`MetricsRegistry` — typed counters / timers / gauges with
  deterministic merge semantics.  :class:`~repro.core.SearchStats` sits
  on top of it: searchers accumulate plain attributes on the hot path
  and convert to registries at reporting boundaries; parallel workers
  ship registry snapshots back with each chunk and the executor merges
  them, so serial and ``--jobs N`` runs of one workload produce
  identical merged counters.
* :class:`Tracer` / :func:`span` — hierarchical span timing emitting
  JSON-lines events; disabled by default at near-zero cost.  Enabled by
  the CLI's ``--trace FILE`` flag or :func:`configure_tracing`.

See ``docs/architecture.md`` (span model, merge semantics) and
``docs/tuning.md`` (reading trace output) for the operator view.
"""

from .registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    ObservabilityError,
    Timer,
)
from .trace import (
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "ObservabilityError",
    "Tracer",
    "get_tracer",
    "span",
    "configure_tracing",
    "disable_tracing",
]
