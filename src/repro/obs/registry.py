"""Typed metrics registry: counters, timers, and gauges.

The registry is the single aggregation surface for every execution path
in the library.  Searchers accumulate into :class:`~repro.core.SearchStats`
on the hot path (plain attribute adds), and that dataclass converts
losslessly to and from a registry; parallel workers ship registry
*snapshots* (plain nested dicts) back to the executor, which merges them
deterministically.  Three metric types with fixed merge semantics:

``Counter``
    Monotone integer count of abstract operations (postings entries,
    hash operations, results).  Merges by summation — a parallel run's
    merged counters are field-for-field identical to the serial run's.
``Timer``
    Accumulated wall-clock seconds of a phase.  Merges by summation;
    in a parallel run this is *busy* time summed over workers, which is
    why timers (unlike counters) legitimately differ from serial runs.
``Gauge``
    A point-in-time level (worker skew, pool size).  Merges by maximum,
    the only order-independent choice that keeps "worst observed"
    meaningful across workers.

Snapshots are canonical: keys are emitted in sorted order so two equal
registries serialize to identical JSON, making ``BENCH_*.json`` records
diffable across PRs (see ``benchmarks/check_regression.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..errors import ReproError


class ObservabilityError(ReproError):
    """A metric was redefined with a different type, or a snapshot is malformed."""


class Counter:
    """Monotone integer counter; merges by sum."""

    __slots__ = ("name", "value")
    kind = "counters"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Timer:
    """Accumulated wall-clock seconds; merges by sum (busy time)."""

    __slots__ = ("name", "seconds")
    kind = "timers"

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0

    def add(self, seconds: float) -> None:
        """Accumulate ``seconds`` of busy time."""
        self.seconds += seconds

    @contextmanager
    def time(self):
        """Context manager: accumulate the elapsed wall clock of the block."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.seconds += time.perf_counter() - started

    def __repr__(self) -> str:
        return f"Timer({self.name}={self.seconds:.6f}s)"


class Gauge:
    """Point-in-time level; merges by max (worst observed)."""

    __slots__ = ("name", "value")
    kind = "gauges"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


_KINDS = {cls.kind: cls for cls in (Counter, Timer, Gauge)}


class MetricsRegistry:
    """A named collection of typed metrics with deterministic merge.

    Metrics are created on first access (``registry.counter("hash_ops")``)
    and type-checked on every subsequent access: reusing a name with a
    different type raises :class:`ObservabilityError` instead of silently
    aliasing a timer onto a counter.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Timer | Gauge] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ObservabilityError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def timer(self, name: str) -> Timer:
        """Get or create the timer ``name``."""
        return self._get(name, Timer)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Canonical JSON-ready snapshot: ``{kind: {name: value}}``.

        Keys are sorted, so equal registries produce byte-identical
        JSON — the property the regression guard diffs against.
        """
        out: dict[str, dict] = {"counters": {}, "timers": {}, "gauges": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Timer):
                out["timers"][name] = metric.seconds
            else:
                out["gauges"][name] = metric.value
        return out

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict."""
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (in place); returns self."""
        return self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snapshot: dict) -> "MetricsRegistry":
        """Fold a snapshot dict into this registry (in place); returns self.

        Counters and timers add; gauges keep the maximum.  Unknown kinds
        or non-dict sections raise :class:`ObservabilityError`.
        """
        if not isinstance(snapshot, dict):
            raise ObservabilityError(
                f"snapshot must be a dict, got {type(snapshot).__name__}"
            )
        for kind, values in snapshot.items():
            if kind not in _KINDS:
                raise ObservabilityError(f"unknown metric kind {kind!r} in snapshot")
            if not isinstance(values, dict):
                raise ObservabilityError(f"snapshot section {kind!r} is not a dict")
            for name in sorted(values):
                value = values[name]
                if kind == "counters":
                    self.counter(name).inc(int(value))
                elif kind == "timers":
                    self.timer(name).add(float(value))
                else:
                    gauge = self.gauge(name)
                    gauge.set(max(gauge.value, float(value)))
        return self

    # ------------------------------------------------------------------
    def as_flat_dict(self) -> dict:
        """``{name: value}`` across all kinds (for table-style reports)."""
        return {name: metric.value if not isinstance(metric, Timer) else metric.seconds
                for name, metric in sorted(self._metrics.items())}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
