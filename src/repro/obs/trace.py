"""Hierarchical span tracing with JSON-lines output.

A *span* is one timed region of the pipeline (``index_build``,
``search``, ``parallel.run_workload`` ...).  Spans nest: entering a span
pushes it on the tracer's stack, so events record their parent and depth
and a trace viewer (or ``jq``) can reconstruct the tree.  One JSON
object per line::

    {"name": "pkwise.search", "span_id": 3, "parent_id": 2, "depth": 1,
     "start": 1754400000.123, "duration": 0.0042, "attrs": {"results": 17}}

Design constraints, in priority order:

1. **Near-zero disabled cost.**  The default tracer is disabled;
   ``span()`` then performs one attribute check and returns a shared
   no-op context manager — no allocation, no clock read.  Hot inner
   loops must never call ``span()`` per window regardless; spans sit at
   query/phase/chunk granularity.
2. **Fork safety.**  Worker processes inherit the parent's tracer under
   the ``fork`` start method.  Events are only written by the process
   that opened the sink (the pid is recorded at open), so workers never
   interleave partial lines into the parent's file; parallel workers
   report through their metrics registries instead.
3. **Crash legibility.**  A span closed by an exception still emits its
   event, with an ``error`` field naming the exception type.
"""

from __future__ import annotations

import json
import os
import time


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> "_NullSpan":
        """No-op; matches :meth:`Span.annotate`."""
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One timed region; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "depth",
                 "_started", "_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0

    def annotate(self, **attrs) -> "Span":
        """Attach result attributes to the span (emitted on close)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._next_id += 1
        self.span_id = tracer._next_id
        stack = tracer._stack
        self.parent_id = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self.span_id)
        self._wall = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._started
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        tracer._emit(self, duration, exc_type)
        return False


class Tracer:
    """Span factory bound to one JSON-lines sink (or disabled)."""

    def __init__(self, path: str | None = None) -> None:
        self._path: str | None = None
        self._handle = None
        self._owner_pid: int | None = None
        self._next_id = 0
        self._stack: list[int] = []
        if path is not None:
            self.configure(path)

    @property
    def enabled(self) -> bool:
        """True when spans are being recorded to a sink."""
        return self._path is not None

    # ------------------------------------------------------------------
    def configure(self, path: str) -> None:
        """Start (or redirect) tracing to ``path`` (append, line-buffered)."""
        self.disable()
        self._path = str(path)
        self._handle = open(self._path, "a", encoding="utf-8")
        self._owner_pid = os.getpid()

    def disable(self) -> None:
        """Stop tracing and close the sink; ``span()`` becomes a no-op."""
        handle, self._handle = self._handle, None
        self._path = None
        self._owner_pid = None
        if handle is not None and not handle.closed:
            handle.close()

    def flush(self) -> None:
        """Flush buffered events to the sink."""
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()

    close = disable

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span | _NullSpan:
        """A context-managed span named ``name`` with static attributes."""
        if self._path is None:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def _emit(self, span: Span, duration: float, exc_type) -> None:
        handle = self._handle
        if handle is None or handle.closed or os.getpid() != self._owner_pid:
            return
        event = {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
            "pid": self._owner_pid,
            "start": span._wall,
            "duration": duration,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if span.attrs:
            event["attrs"] = span.attrs
        handle.write(json.dumps(event, default=str) + "\n")


#: Process-wide default tracer; disabled until :func:`configure_tracing`.
_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer used by the library's spans."""
    return _DEFAULT_TRACER


def span(name: str, **attrs) -> Span | _NullSpan:
    """Open a span on the default tracer (no-op while disabled)."""
    return _DEFAULT_TRACER.span(name, **attrs)


def configure_tracing(path: str) -> Tracer:
    """Route the default tracer's events to ``path`` (JSON lines)."""
    _DEFAULT_TRACER.configure(path)
    return _DEFAULT_TRACER


def disable_tracing() -> None:
    """Turn the default tracer off and close its sink."""
    _DEFAULT_TRACER.disable()
