"""Weighted local similarity search (Appendix C).

Each token carries a weight; a pair of windows matches when the
accumulated weight of their multiset intersection reaches a threshold:
``wt(O(x, y)) >= theta``.  The prefix of a window becomes the shortest
head whose *weighted coverage* exceeds ``wt(x) - theta``: the cheapest
way for an adversary to affect every signature of a class-``i`` group is
to delete its lightest tokens, and it must delete all but ``i - 1``.

The searcher mirrors Algorithm 2 (no interval sharing — window weights
differ between adjacent windows, so the budget and hence the prefix
length shift every slide, eroding the sharing the unweighted algorithm
exploits; the paper also presents the weighted case without intervals).
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Callable, Sequence
from typing import NamedTuple

from ..corpus import Document, DocumentCollection
from ..errors import ConfigurationError
from ..ordering import GlobalOrder
from ..partition.scheme import PartitionScheme
from ..signatures.generate import Signature, signatures_from_prefix
from ..signatures.prefix import weighted_prefix_length
from ..windows.slider import WindowSlider
from .base import SearchStats


class WeightedMatchPair(NamedTuple):
    """A weighted result: intersection weight instead of overlap count."""

    doc_id: int
    data_start: int
    query_start: int
    intersection_weight: float


class WeightedSearchResult(NamedTuple):
    """Weighted matches plus the stats of producing them.

    A named tuple so existing ``pairs, stats = searcher.search(query)``
    unpacking keeps working while the attribute access
    (``result.pairs`` / ``result.stats``) matches
    :class:`~repro.core.SearchResult`, letting the weighted searcher
    satisfy the :class:`repro.api.Searcher` protocol and run through
    the shared workload harness.
    """

    pairs: list[WeightedMatchPair]
    stats: SearchStats


#: Sentinel signature for windows whose full weighted coverage cannot
#: exceed their error budget (possible when k_max > 1: the combination
#: "waste" of heavy tokens may exceed theta).  Such windows cannot be
#: filtered safely, so data windows are indexed under this signature
#: (probed by every query window) and query windows in this state verify
#: against all data windows.  With the default single-class scheme the
#: sentinel never triggers: coverage equals wt(x) > wt(x) - theta.
UNIVERSAL_SIGNATURE: Signature = (-(2**60),)


def weighted_overlap(
    x: Sequence[int], y: Sequence[int], weight_of: Callable[[int], float]
) -> float:
    """``wt(x ∩ y)`` = sum over tokens of min-multiplicity * weight."""
    counts_x = Counter(x)
    counts_y = Counter(y)
    if len(counts_x) > len(counts_y):
        counts_x, counts_y = counts_y, counts_x
    total = 0.0
    for rank, count in counts_x.items():
        other = counts_y.get(rank)
        if other:
            total += min(count, other) * weight_of(rank)
    return total


class WeightedPKWiseSearcher:
    """Partitioned k-wise signatures under token weights.

    Parameters
    ----------
    data:
        Data collection.
    w:
        Window size.
    theta_weight:
        Minimum intersection weight for a match.
    weight_of_token:
        Maps *token ids* to positive weights.  Internally converted to a
        by-rank table; tokens first seen in queries get
        ``default_weight``.
    scheme:
        Partition scheme over ranks; defaults to a single class
        (standard weighted prefix filtering).  Because the weighted
        budget ``wt(x) - theta`` varies per window, Theorem 2's fixed
        prefix-length bound does not apply; instead the prefix simply
        stops at the window end when the budget cannot be covered, which
        keeps the filter correct (the whole window is the prefix).
    """

    name = "pkwise-weighted"

    def __init__(
        self,
        data: DocumentCollection,
        w: int,
        theta_weight: float,
        weight_of_token: Callable[[int], float],
        scheme: PartitionScheme | None = None,
        order: GlobalOrder | None = None,
        default_weight: float = 1.0,
    ) -> None:
        if theta_weight <= 0:
            raise ConfigurationError(
                f"theta_weight must be positive, got {theta_weight}"
            )
        if default_weight <= 0:
            raise ConfigurationError(
                f"default_weight must be positive, got {default_weight}"
            )
        self.w = w
        self.theta_weight = theta_weight
        self.default_weight = default_weight
        self.order = order if order is not None else GlobalOrder(data, w)
        self.scheme = (
            scheme
            if scheme is not None
            else PartitionScheme.single(self.order.universe_size)
        )
        # Weight table indexed by rank; negative ranks use the default.
        self._rank_weight: list[float] = [
            float(weight_of_token(self.order.token_of_rank(rank)))
            for rank in range(self.order.universe_size)
        ]
        for rank, weight in enumerate(self._rank_weight):
            if weight <= 0:
                raise ConfigurationError(
                    f"token weights must be positive; rank {rank} has {weight}"
                )
        self.rank_docs: list[list[int]] = [
            self.order.rank_document(document) for document in data
        ]
        build_start = time.perf_counter()
        self._postings: dict[Signature, list[tuple[int, int]]] = {}
        for doc_id, ranks in enumerate(self.rank_docs):
            self._index_document(doc_id, ranks)
        self.index_build_seconds = time.perf_counter() - build_start

    # ------------------------------------------------------------------
    def weight_of_rank(self, rank: int) -> float:
        """Weight of the token at ``rank`` (default for query-only)."""
        if rank < 0:
            return self.default_weight
        return self._rank_weight[rank]

    def _window_signatures(
        self, sorted_ranks: Sequence[int]
    ) -> tuple[list[Signature], bool]:
        """Signatures of a window plus whether it is unfilterable.

        Returns ``(signatures, fallback)``; ``fallback`` is True when
        the window's total weighted coverage cannot exceed its error
        budget, in which case prefix filtering gives no guarantee for it
        (see :data:`UNIVERSAL_SIGNATURE`).
        """
        window_weight = sum(self.weight_of_rank(rank) for rank in sorted_ranks)
        budget = window_weight - self.theta_weight
        if budget < 0:
            # Window too light to ever reach theta; it can never match.
            return [], False
        length = weighted_prefix_length(
            sorted_ranks, self.weight_of_rank, budget, self.scheme
        )
        signatures = signatures_from_prefix(list(sorted_ranks[:length]), self.scheme)
        if length == len(sorted_ranks):
            # Whole window is the prefix; check the budget was actually
            # exceeded, otherwise filtering is unsound for this window.
            if self._weighted_coverage(sorted_ranks) <= budget:
                return signatures, True
        return signatures, False

    def _weighted_coverage(self, sorted_ranks: Sequence[int]) -> float:
        """Total weighted coverage of a token multiset (Appendix C)."""
        groups: dict[int, list[float]] = {}
        for rank in sorted_ranks:
            groups.setdefault(self.scheme.group_key(rank), []).append(
                self.weight_of_rank(rank)
            )
        total = 0.0
        for key, weights in groups.items():
            class_index = key // self.scheme.m
            if len(weights) >= class_index:
                weights.sort()
                total += sum(weights[: len(weights) - class_index + 1])
        return total

    def _index_document(self, doc_id: int, ranks: Sequence[int]) -> None:
        slider = WindowSlider(ranks, self.w)
        for start, _outgoing, _incoming in slider.slides():
            signatures, fallback = self._window_signatures(slider.multiset.raw)
            keys = set(signatures)
            if fallback:
                keys.add(UNIVERSAL_SIGNATURE)
            for signature in keys:
                self._postings.setdefault(signature, []).append((doc_id, start))

    # ------------------------------------------------------------------
    def search(self, query: Document) -> WeightedSearchResult:
        """All weighted matches of ``query`` against the data."""
        stats = SearchStats()
        w = self.w
        query_ranks = self.order.rank_document(query)
        if len(query_ranks) < w:
            return WeightedSearchResult([], stats)

        pairs: list[WeightedMatchPair] = []
        weight_of = self.weight_of_rank
        slider = WindowSlider(query_ranks, w)
        for start, _outgoing, _incoming in slider.slides():
            t0 = time.perf_counter()
            signatures, fallback = self._window_signatures(slider.multiset.raw)
            stats.signatures_generated += len(signatures)
            stats.signature_tokens += sum(len(s) for s in signatures)
            t1 = time.perf_counter()
            stats.signature_time += t1 - t0

            candidates: set[tuple[int, int]] = set()
            if fallback:
                # Unfilterable query window: every data window is a
                # candidate (rare; impossible under the default scheme).
                for doc_id, ranks in enumerate(self.rank_docs):
                    for data_start in range(max(0, len(ranks) - w + 1)):
                        candidates.add((doc_id, data_start))
            else:
                probe_keys = set(signatures)
                probe_keys.add(UNIVERSAL_SIGNATURE)
                for signature in probe_keys:
                    postings = self._postings.get(signature, ())
                    stats.postings_entries += len(postings)
                    candidates.update(postings)
            t2 = time.perf_counter()
            stats.candidate_time += t2 - t1

            query_window = query_ranks[start : start + w]
            for doc_id, data_start in candidates:
                stats.candidate_windows += 1
                weight = weighted_overlap(
                    self.rank_docs[doc_id][data_start : data_start + w],
                    query_window,
                    weight_of,
                )
                if weight >= self.theta_weight:
                    pairs.append(
                        WeightedMatchPair(doc_id, data_start, start, weight)
                    )
            stats.verify_time += time.perf_counter() - t2

        stats.num_results = len(pairs)
        return WeightedSearchResult(pairs, stats)

    def search_many(self, queries: list[Document], *, jobs: int = 1):
        """Search every query; returns an :class:`~repro.eval.AggregateRun`."""
        from ..eval.harness import run_searcher

        return run_searcher(self, queries, jobs=jobs)

    def close(self) -> None:
        """Release resources (no-op; in-memory postings). Idempotent."""
