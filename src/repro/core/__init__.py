"""Core algorithms: the paper's contribution.

* :class:`PKWiseSearcher` — Algorithm 4: partitioned k-wise signatures
  with interval sharing (the paper's **pkwise**).
* :class:`PKWiseNonIntervalSearcher` — Algorithm 2: same signatures,
  windows processed individually (**pkwise-nonint** in Figure 8).
* :class:`WeightedPKWiseSearcher` — the Appendix C weighted extension.

All searchers share the :class:`MatchPair` result type and the
:class:`SearchStats` phase accounting consumed by the cost model and the
benchmarks.
"""

from .base import MatchPair, SearchResult, SearchStats
from .pkwise import PKWiseSearcher
from .pkwise_nonint import PKWiseNonIntervalSearcher
from .selfjoin import SelfJoinPair, document_join_pairs, local_similarity_self_join
from .verify import IntervalVerifier
from .weighted import WeightedMatchPair, WeightedPKWiseSearcher, WeightedSearchResult

__all__ = [
    "MatchPair",
    "SearchResult",
    "SearchStats",
    "PKWiseSearcher",
    "PKWiseNonIntervalSearcher",
    "WeightedPKWiseSearcher",
    "WeightedMatchPair",
    "WeightedSearchResult",
    "IntervalVerifier",
    "SelfJoinPair",
    "document_join_pairs",
    "local_similarity_self_join",
]
