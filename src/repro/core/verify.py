"""Rolling verification of candidate intervals (Section 4.3).

:class:`IntervalVerifier` owns the *query-side* multiplicity table,
updated in two hash operations as the query window slides, and verifies
candidate intervals by filling a data-side table once per interval and
rolling it across the interval in four operations per step.  It applies
the paper's early-termination rule: when window ``W(d, j)`` misses the
threshold by ``delta`` (``w - O = tau + delta``), the next possible
result is ``W(d, j + delta)``; if that exceeds the interval end, the
rest of the interval is abandoned without rolling through it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from ..errors import ReproError
from .base import MatchPair


class IntervalVerifier:
    """Verifies query windows against data window intervals.

    Parameters
    ----------
    query_ranks:
        The query document as a rank sequence.
    w, tau:
        Search parameters.

    The verifier is positional: :meth:`advance_to` moves the query-side
    table to a given query window (normally one slide at a time), then
    :meth:`verify_interval` checks one candidate interval of one data
    document against the current query window.
    """

    def __init__(self, query_ranks: Sequence[int], w: int, tau: int) -> None:
        self.query_ranks = query_ranks
        self.w = w
        self.tau = tau
        self.query_start = 0
        self._query_counts: Counter[int] = Counter(query_ranks[:w])
        self.hash_ops = min(w, len(query_ranks))  # initial fill operations
        self.candidate_windows = 0

    # ------------------------------------------------------------------
    def advance_to(self, query_start: int) -> None:
        """Slide the query-side table forward to ``query_start``.

        ``query_start`` must be a valid window start: at most
        ``len(query_ranks) - w`` (the last full window).  Advancing past
        that would read beyond the query; it raises
        :class:`~repro.errors.ReproError` naming the offending positions
        instead of an opaque ``IndexError`` from deep in the slide loop.
        """
        if query_start < self.query_start:
            raise ValueError(
                f"cannot slide query backwards ({self.query_start} -> {query_start})"
            )
        last_start = len(self.query_ranks) - self.w
        if query_start > last_start:
            raise ReproError(
                f"cannot advance verifier to query window {query_start}: "
                f"last valid window start is {last_start} "
                f"(query length {len(self.query_ranks)}, w={self.w})"
            )
        counts = self._query_counts
        ranks = self.query_ranks
        w = self.w
        while self.query_start < query_start:
            start = self.query_start
            outgoing = ranks[start]
            incoming = ranks[start + w]
            if outgoing != incoming:
                old = counts[outgoing]
                if old == 1:
                    del counts[outgoing]
                else:
                    counts[outgoing] = old - 1
                counts[incoming] += 1
                self.hash_ops += 2
            self.query_start = start + 1

    # ------------------------------------------------------------------
    def verify_interval(
        self, doc_id: int, doc_ranks: Sequence[int], u: int, v: int
    ) -> list[MatchPair]:
        """All matches of the current query window in ``d[u, v]``."""
        w = self.w
        tau = self.tau
        query_counts = self._query_counts
        window = doc_ranks[u : u + w]
        data_counts: Counter[int] = Counter(window)
        # Initial overlap: fill (w ops) + lookups (w ops) = 2w, per paper.
        self.hash_ops += 2 * w
        overlap = 0
        for rank, count in data_counts.items():
            other = query_counts.get(rank)
            if other:
                overlap += min(count, other)

        matches: list[MatchPair] = []
        query_start = self.query_start
        j = u
        while True:
            self.candidate_windows += 1
            deficit = (w - overlap) - tau
            if deficit <= 0:
                matches.append(MatchPair(doc_id, j, query_start, overlap))
                step = 1
            else:
                # Windows j+1 .. j+deficit-1 cannot match (overlap grows
                # by at most 1 per slide); jump to j+deficit.
                step = deficit
            if j + step > v:
                break
            # Roll `step` slides, 4 hash ops each.
            for slide in range(step):
                outgoing = doc_ranks[j + slide]
                incoming = doc_ranks[j + slide + w]
                if outgoing == incoming:
                    continue
                self.hash_ops += 4
                old = data_counts[outgoing]
                if query_counts.get(outgoing, 0) >= old:
                    overlap -= 1
                if old == 1:
                    del data_counts[outgoing]
                else:
                    data_counts[outgoing] = old - 1
                new = data_counts.get(incoming, 0) + 1
                data_counts[incoming] = new
                if query_counts.get(incoming, 0) >= new:
                    overlap += 1
            j += step
        return matches

    # ------------------------------------------------------------------
    def verify_single(
        self, doc_id: int, doc_ranks: Sequence[int], start: int
    ) -> MatchPair | None:
        """Verify one data window against the current query window."""
        pairs = self.verify_interval(doc_id, doc_ranks, start, start)
        return pairs[0] if pairs else None
