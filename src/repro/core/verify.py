"""Rolling verification of candidate intervals (Section 4.3).

:class:`IntervalVerifier` owns the *query-side* multiplicity table,
updated in two hash operations as the query window slides, and verifies
candidate intervals by filling a data-side table once per interval and
rolling it across the interval in four operations per step.  It applies
the paper's early-termination rule: when window ``W(d, j)`` misses the
threshold by ``delta`` (``w - O = tau + delta``), the next possible
result is ``W(d, j + delta)``; if that exceeds the interval end, the
rest of the interval is abandoned without rolling through it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from ..errors import ReproError
from .base import MatchPair


class IntervalVerifier:
    """Verifies query windows against data window intervals.

    Parameters
    ----------
    query_ranks:
        The query document as a rank sequence.
    w, tau:
        Search parameters.

    The verifier is positional: :meth:`advance_to` moves the query-side
    table to a given query window (normally one slide at a time), then
    :meth:`verify_interval` checks one candidate interval of one data
    document against the current query window.
    """

    def __init__(self, query_ranks: Sequence[int], w: int, tau: int) -> None:
        self.query_ranks = query_ranks
        self.w = w
        self.tau = tau
        self.query_start = 0
        self._query_counts: Counter[int] = Counter(query_ranks[:w])
        self.hash_ops = min(w, len(query_ranks))  # initial fill operations
        self.candidate_windows = 0
        # Slide positions where the query window's content actually
        # changes (ranks[p] != ranks[p + w]), found with one vectorized
        # comparison up front; advance_to then touches only these
        # instead of testing every slide in Python.
        if len(query_ranks) > w:
            column = np.asarray(query_ranks, dtype=np.int64)
            self._query_changes = np.flatnonzero(column[:-w] != column[w:])
        else:
            self._query_changes = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def advance_to(self, query_start: int) -> None:
        """Slide the query-side table forward to ``query_start``.

        ``query_start`` must be a valid window start: at most
        ``len(query_ranks) - w`` (the last full window).  Advancing past
        that would read beyond the query; it raises
        :class:`~repro.errors.ReproError` naming the offending positions
        instead of an opaque ``IndexError`` from deep in the slide loop.
        """
        if query_start < self.query_start:
            raise ValueError(
                f"cannot slide query backwards ({self.query_start} -> {query_start})"
            )
        last_start = len(self.query_ranks) - self.w
        if query_start > last_start:
            raise ReproError(
                f"cannot advance verifier to query window {query_start}: "
                f"last valid window start is {last_start} "
                f"(query length {len(self.query_ranks)}, w={self.w})"
            )
        counts = self._query_counts
        ranks = self.query_ranks
        w = self.w
        changes = self._query_changes
        lo, hi = np.searchsorted(changes, (self.query_start, query_start))
        for position in changes[lo:hi].tolist():
            outgoing = ranks[position]
            incoming = ranks[position + w]
            old = counts[outgoing]
            if old == 1:
                del counts[outgoing]
            else:
                counts[outgoing] = old - 1
            counts[incoming] += 1
            self.hash_ops += 2
        self.query_start = query_start

    # ------------------------------------------------------------------
    def verify_interval(
        self, doc_id: int, doc_ranks: Sequence[int], u: int, v: int
    ) -> list[MatchPair]:
        """All matches of the current query window in ``d[u, v]``.

        The rolling overlap deltas are vectorized across the interval:
        one numpy comparison finds every slide position in ``[u, v)``
        whose outgoing and incoming tokens differ, and the roll then
        visits only those — content-sharing text makes most slides
        no-ops, which the scalar loop still paid a Python iteration
        (and two list indexings) to discover.  Early-termination jumps
        skip changed positions wholesale by advancing the cursor.
        """
        w = self.w
        tau = self.tau
        query_counts = self._query_counts
        window = doc_ranks[u : u + w]
        data_counts: Counter[int] = Counter(window)
        # Initial overlap: fill (w ops) + lookups (w ops) = 2w, per paper.
        self.hash_ops += 2 * w
        overlap = 0
        for rank, count in data_counts.items():
            other = query_counts.get(rank)
            if other:
                overlap += min(count, other)

        if v > u:
            outgoing_run = np.asarray(doc_ranks[u:v], dtype=np.int64)
            incoming_run = np.asarray(doc_ranks[u + w : v + w], dtype=np.int64)
            changes = (np.flatnonzero(outgoing_run != incoming_run) + u).tolist()
        else:
            changes = []
        num_changes = len(changes)
        cursor = 0

        matches: list[MatchPair] = []
        query_start = self.query_start
        j = u
        while True:
            self.candidate_windows += 1
            deficit = (w - overlap) - tau
            if deficit <= 0:
                matches.append(MatchPair(doc_id, j, query_start, overlap))
                step = 1
            else:
                # Windows j+1 .. j+deficit-1 cannot match (overlap grows
                # by at most 1 per slide); jump to j+deficit.
                step = deficit
            if j + step > v:
                break
            # Roll `step` slides; only content-changing positions touch
            # the table, 4 hash ops each.
            j += step
            while cursor < num_changes and changes[cursor] < j:
                position = changes[cursor]
                cursor += 1
                outgoing = doc_ranks[position]
                incoming = doc_ranks[position + w]
                self.hash_ops += 4
                old = data_counts[outgoing]
                if query_counts.get(outgoing, 0) >= old:
                    overlap -= 1
                if old == 1:
                    del data_counts[outgoing]
                else:
                    data_counts[outgoing] = old - 1
                new = data_counts.get(incoming, 0) + 1
                data_counts[incoming] = new
                if query_counts.get(incoming, 0) >= new:
                    overlap += 1
        return matches

    # ------------------------------------------------------------------
    def verify_single(
        self, doc_id: int, doc_ranks: Sequence[int], start: int
    ) -> MatchPair | None:
        """Verify one data window against the current query window."""
        pairs = self.verify_interval(doc_id, doc_ranks, start, start)
        return pairs[0] if pairs else None
