"""pkwise without interval sharing (Algorithm 2; "pkwise-nonint").

Every window — data and query — is processed individually: signatures
are generated from scratch per window, the index stores individual
windows, candidates are deduplicated per query window and each is
verified with a fresh overlap computation.  This is the paper's
Figure 6/8 comparison point isolating the benefit of interval sharing
from the benefit of partitioned k-wise signatures.
"""

from __future__ import annotations

import time

from ..corpus import Document, DocumentCollection
from ..errors import ConfigurationError
from ..index.inverted import WindowInvertedIndex
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..partition.scheme import PartitionScheme
from ..signatures.generate import generate_signatures
from ..windows.rolling import window_overlap
from ..windows.slider import WindowSlider
from .base import MatchPair, SearchResult, SearchStats
from .pkwise import default_scheme


class PKWiseNonIntervalSearcher:
    """Partitioned k-wise signatures, windows processed individually."""

    name = "pkwise-nonint"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        scheme: PartitionScheme | None = None,
        order: GlobalOrder | None = None,
        hashed: bool = False,
    ) -> None:
        self.params = params
        self.order = order if order is not None else GlobalOrder(data, params.w)
        if scheme is None:
            scheme = default_scheme(params, self.order)
        if scheme.m != params.m:
            raise ConfigurationError(
                f"scheme.m ({scheme.m}) disagrees with params.m ({params.m})"
            )
        self.scheme = scheme
        self.rank_docs: list[list[int]] = [
            self.order.rank_document(document) for document in data
        ]
        build_start = time.perf_counter()
        self.index = WindowInvertedIndex(params.w, params.tau, scheme, hashed=hashed)
        for doc_id, ranks in enumerate(self.rank_docs):
            self.index.index_document(doc_id, ranks)
        self.index_build_seconds = time.perf_counter() - build_start

    # ------------------------------------------------------------------
    def search(self, query: Document) -> SearchResult:
        """All matching window pairs between ``query`` and the data."""
        stats = SearchStats()
        w, tau = self.params.w, self.params.tau
        query_ranks = self.order.rank_document(query)
        if len(query_ranks) < w:
            return SearchResult(pairs=[], stats=stats)

        index = self.index
        rank_docs = self.rank_docs
        pairs: list[MatchPair] = []
        slider = WindowSlider(query_ranks, w)
        clock = time.perf_counter
        last = clock()
        for start, _outgoing, _incoming in slider.slides():
            signatures = generate_signatures(slider.multiset.raw, tau, self.scheme)
            stats.signatures_generated += len(signatures)
            stats.signature_tokens += sum(len(s) for s in signatures)
            now = clock()
            stats.signature_time += now - last
            last = now

            # One batched probe per query window over the deduplicated
            # signature set; dedup order does not matter — candidates
            # are a set and the entry counter is order-independent.
            batch = index.probe_many(tuple(set(signatures)))
            stats.probe_batches += 1
            stats.probe_signatures += batch.probed
            stats.postings_entries += batch.entries
            candidates = set(zip(batch.docs.tolist(), batch.us.tolist()))
            now = clock()
            stats.candidate_time += now - last
            last = now

            query_window = query_ranks[start : start + w]
            for doc_id, data_start in candidates:
                stats.candidate_windows += 1
                stats.hash_ops += 2 * w
                overlap = window_overlap(
                    rank_docs[doc_id][data_start : data_start + w], query_window
                )
                if w - overlap <= tau:
                    pairs.append(MatchPair(doc_id, data_start, start, overlap))
            now = clock()
            stats.verify_time += now - last
            last = now

        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)

    def search_many(self, queries: list[Document], *, jobs: int = 1):
        """Search every query; returns an :class:`~repro.eval.AggregateRun`."""
        from ..eval.harness import run_searcher

        return run_searcher(self, queries, jobs=jobs)

    def close(self) -> None:
        """Release resources (no-op; in-memory index). Idempotent."""

    def __repr__(self) -> str:
        return (
            f"PKWiseNonIntervalSearcher(w={self.params.w}, "
            f"tau={self.params.tau}, k_max={self.scheme.k_max})"
        )


def non_partitioned_scheme(order: GlobalOrder, k: int, m: int = 1) -> PartitionScheme:
    """All tokens in class ``k`` (the "Non-P" variant of Figure 6)."""
    return PartitionScheme.all_k(order.universe_size, k, m=m)


def standard_prefix_scheme(order: GlobalOrder) -> PartitionScheme:
    """k_max = 1: standard prefix filtering as a pkwise special case."""
    return PartitionScheme.single(order.universe_size)
