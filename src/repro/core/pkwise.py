"""pkwise: partitioned k-wise signatures with interval sharing (Alg. 4).

This is the paper's proposed algorithm.  Indexing streams signature
open/close events over every data document into an
:class:`~repro.index.IntervalIndex`.  Query processing streams the same
events over the query document; the candidate interval multiset ``A`` is
carried from window to window and only updated when the signature set
changes (Lines 12-16 of Algorithm 4), merged (with the Section 4.3
gap rule), and verified with rolling hash tables and early-termination
skips.
"""

from __future__ import annotations

import heapq
import time
from collections import Counter
from collections.abc import Callable

from ..corpus import Document, DocumentCollection
from ..errors import (
    ConfigurationError,
    IndexStateError,
    RoutingUnavailableError,
    SearchCancelled,
)
from ..index.interval_index import IntervalIndex
from ..obs import get_tracer
from ..index.intervals import WindowInterval, merge_intervals
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..partition.scheme import PartitionScheme
from ..routing import FingerprintTier, RoutingPolicy
from ..signatures.maintain import SignatureStream
from .base import SearchResult, SearchStats
from .verify import IntervalVerifier


#: Relative window-frequency span used by :func:`default_scheme`:
#: tokens appearing in fewer than FREQ_LOW of all data windows stay
#: 1-wise; the thresholds for classes 2..k_max are log-spaced up to
#: FREQ_HIGH.  These defaults follow the paper's observation that only
#: the (relatively) frequent head of the universe needs combining.
DEFAULT_FREQ_LOW = 0.002
DEFAULT_FREQ_HIGH = 0.05


def default_scheme(
    params: SearchParams,
    order: GlobalOrder,
    freq_low: float = DEFAULT_FREQ_LOW,
    freq_high: float = DEFAULT_FREQ_HIGH,
) -> PartitionScheme:
    """A frequency-threshold scheme when no cost-optimized one is given.

    Tokens are assigned to classes by their relative window frequency:
    rare tokens (below ``freq_low``) are selective enough as single
    tokens; increasingly frequent tokens move into higher classes, with
    the class thresholds log-spaced between ``freq_low`` and
    ``freq_high``.  This mirrors where the greedy cost-based partitioner
    (:mod:`repro.partition.greedy`) typically lands while costing
    nothing to compute; use the partitioner for the tuned result.
    """
    size = order.universe_size
    k_max = params.k_max
    if k_max == 1 or size == 0:
        return PartitionScheme(universe_size=size, borders=(), m=params.m)
    thresholds = []
    for class_index in range(2, k_max + 1):
        if k_max == 2:
            fraction = 0.0
        else:
            fraction = (class_index - 2) / (k_max - 2)
        thresholds.append(freq_low * (freq_high / freq_low) ** fraction)
    borders = []
    rank = 0
    for threshold in thresholds:
        while (
            rank < size and order.relative_frequency_of_rank(rank) < threshold
        ):
            rank += 1
        borders.append(rank)
    return PartitionScheme(universe_size=size, borders=tuple(borders), m=params.m)


class PKWiseSearcher:
    """Local similarity search with partitioned k-wise signatures.

    Parameters
    ----------
    data:
        The data document collection (indexed at construction).
    params:
        Validated search parameters (w, tau, k_max, m).
    scheme:
        Partition scheme; defaults to :func:`default_scheme`.  Use
        :class:`~repro.partition.GreedyPartitioner` to obtain a
        cost-optimized scheme first.
    order:
        Global token order; built from ``data`` if omitted.  Pass a
        shared order when comparing multiple algorithms so they agree on
        ranks.
    hashed:
        Key the index by 64-bit signature hashes (paper's Section 7.1
        hashing) instead of rank tuples.
    """

    name = "pkwise"

    def __init__(
        self,
        data: DocumentCollection,
        params: SearchParams,
        scheme: PartitionScheme | None = None,
        order: GlobalOrder | None = None,
        hashed: bool = False,
    ) -> None:
        self.params = params
        self.order = order if order is not None else GlobalOrder(data, params.w)
        if scheme is None:
            scheme = default_scheme(params, self.order)
        if scheme.m != params.m:
            raise ConfigurationError(
                f"scheme.m ({scheme.m}) disagrees with params.m ({params.m})"
            )
        self.scheme = scheme
        self.rank_docs: list[list[int]] = [
            self.order.rank_document(document) for document in data
        ]
        self._removed: set[int] = set()
        build_start = time.perf_counter()
        with get_tracer().span(
            "pkwise.index_build", documents=len(self.rank_docs)
        ) as build_span:
            self.index = IntervalIndex(params.w, params.tau, scheme, hashed=hashed)
            for doc_id, ranks in enumerate(self.rank_docs):
                self.index.index_document(doc_id, ranks)
            build_span.annotate(
                windows=self.index.num_windows, postings=self.index.num_postings
            )
        self.index_build_seconds = time.perf_counter() - build_start
        #: Per-worker build reports when constructed by
        #: :meth:`repro.parallel.ParallelExecutor.build_searcher`.
        self.build_worker_reports: list = []
        #: Monotone counter bumped by every index mutation
        #: (:meth:`add_document` / :meth:`remove_document`).  Result
        #: caches key on it so cached and fresh results stay
        #: pair-for-pair identical across mutations.
        self.index_epoch = 0

    @classmethod
    def from_prebuilt(
        cls,
        params: SearchParams,
        order: GlobalOrder,
        scheme: PartitionScheme,
        index,
        rank_docs,
        build_seconds: float = 0.0,
        *,
        removed=(),
        index_epoch: int = 0,
        routing_tier="auto",
    ) -> "PKWiseSearcher":
        """Assemble a searcher around an already-built interval index.

        Used by :mod:`repro.parallel` after merging per-worker partial
        indexes, and by the v3 snapshot loader; the parts must be
        mutually consistent (``rank_docs[i]`` is document ``i``'s rank
        sequence under ``order``, and ``index`` covers exactly those
        documents with ``scheme``/``params``).  ``index`` may be the
        dict :class:`~repro.index.IntervalIndex` or a frozen
        :class:`~repro.index.CompactIntervalIndex`; ``rank_docs``
        likewise a list of lists or a
        :class:`~repro.index.PackedRankDocs`.  ``removed`` /
        ``index_epoch`` restore tombstones and the cache epoch of a
        snapshotted searcher.  ``routing_tier`` is the fingerprint
        routing slot: ``"auto"`` (the default) builds lazily from
        ``rank_docs`` on the first routed query, an explicit
        :class:`~repro.routing.FingerprintTier` is used as-is (the v3
        loader's mmap path), and ``None`` marks routing unavailable —
        a routed query raises
        :class:`~repro.errors.RoutingUnavailableError`.
        """
        if scheme.m != params.m:
            raise ConfigurationError(
                f"scheme.m ({scheme.m}) disagrees with params.m ({params.m})"
            )
        if index.w != params.w or index.tau != params.tau:
            raise ConfigurationError(
                f"index built for (w={index.w}, tau={index.tau}) but params "
                f"are (w={params.w}, tau={params.tau})"
            )
        self = cls.__new__(cls)
        self.params = params
        self.order = order
        self.scheme = scheme
        self.rank_docs = rank_docs
        self._removed = set(removed)
        self.index = index
        self.index_build_seconds = build_seconds
        self.build_worker_reports = []
        self.index_epoch = index_epoch
        self._routing_tier = routing_tier
        return self

    def compacted(self) -> "PKWiseSearcher":
        """A frozen copy of this searcher over array-backed structures.

        The interval index becomes a
        :class:`~repro.index.CompactIntervalIndex` and the rank
        sequences a :class:`~repro.index.PackedRankDocs`; search results
        stay pair-identical (hash-merged postings only add candidates,
        which verification removes).  The copy shares the order/scheme
        and carries over tombstones and the index epoch, but refuses
        :meth:`add_document` — freeze after the corpus settles.
        Returns ``self`` when already compact.
        """
        from ..index.compact import CompactIntervalIndex, PackedRankDocs

        if getattr(self.index, "frozen", False):
            return self
        clone = type(self).__new__(type(self))
        clone.params = self.params
        clone.order = self.order
        clone.scheme = self.scheme
        clone.rank_docs = PackedRankDocs.from_lists(self.rank_docs)
        clone._removed = set(self._removed)
        clone.index = CompactIntervalIndex.from_index(self.index)
        clone.index_build_seconds = self.index_build_seconds
        clone.build_worker_reports = []
        clone.index_epoch = self.index_epoch
        clone._routing_tier = getattr(self, "_routing_tier", "auto")
        return clone

    @property
    def frozen(self) -> bool:
        """True when backed by a frozen compact index (no additions)."""
        return bool(getattr(self.index, "frozen", False))

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> int:
        """Deprecated direct mutation; use ``Index.add`` (ingest path).

        .. deprecated:: 1.3
            The unified write path (:class:`repro.Index` backed by
            :class:`repro.ingest.IngestStore`) replaces per-searcher
            mutation: it works on frozen snapshots too, batches index
            maintenance behind a memtable, and is crash-safe when
            durable.  This wrapper keeps the old in-place semantics.
        """
        import warnings

        warnings.warn(
            "PKWiseSearcher.add_document is deprecated; mutate through "
            "Index.add (the LSM ingest write path)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._add_document(document)

    def _add_document(self, document: Document) -> int:
        """Index one more document; returns its doc_id in this searcher.

        The document must be encoded against the same vocabulary as the
        original collection (e.g. produced by ``data.add_text``).  The
        global order stays fixed: tokens first seen now are treated as
        rarest (class 1), and existing tokens keep their build-time
        frequencies — a heuristic drift that affects performance only,
        never correctness (any fixed total order is valid, Theorem 1).
        """
        if self.frozen:
            raise IndexStateError(
                "cannot add documents to a frozen compact searcher; "
                "open the snapshot without compact/mmap (or rebuild) to mutate"
            )
        doc_id = len(self.rank_docs)
        ranks = self.order.rank_document(document)
        self.rank_docs.append(ranks)
        self.index.index_document(doc_id, ranks)
        self.index_epoch += 1
        return doc_id

    def remove_document(self, doc_id: int) -> None:
        """Deprecated direct mutation; use ``Index.remove`` (ingest path).

        .. deprecated:: 1.3
            See :meth:`add_document`.
        """
        import warnings

        warnings.warn(
            "PKWiseSearcher.remove_document is deprecated; mutate "
            "through Index.remove (the LSM ingest write path)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._remove_document(doc_id)

    def _remove_document(self, doc_id: int) -> None:
        """Stop returning matches from ``doc_id`` (tombstone removal).

        Postings are filtered at candidate-generation time rather than
        rewritten; memory is reclaimed only by rebuilding.  Removing an
        unknown id raises ``IndexError``.
        """
        if not 0 <= doc_id < len(self.rank_docs):
            raise IndexError(f"no document with id {doc_id}")
        self._removed.add(doc_id)
        self.index_epoch += 1

    @property
    def removed_documents(self) -> frozenset[int]:
        """Ids tombstoned by :meth:`remove_document`."""
        return frozenset(self._removed)

    # ------------------------------------------------------------------
    # Fingerprint routing tier
    # ------------------------------------------------------------------
    #: The routing-tier slot.  ``"auto"`` (the class default — also what
    #: searchers pickled before 1.3 fall back to) builds the tier lazily
    #: from ``rank_docs`` on the first routed query; an explicit
    #: :class:`~repro.routing.FingerprintTier` (the v3 mmap path) is
    #: used as-is; ``None`` means the snapshot carries no fingerprints
    #: and routed queries raise :class:`RoutingUnavailableError`.
    _routing_tier = "auto"
    _routing_memo = None

    def routing_fingerprints(self) -> FingerprintTier:
        """The document fingerprint tier gating this searcher's queries.

        Lazily built (and memoized, keyed on corpus size so live adds
        invalidate it) when the slot is ``"auto"``; the build is
        deterministic, so serial, fork, and spawn workers reconstruct
        byte-identical tiers.
        """
        tier = getattr(self, "_routing_tier", "auto")
        if tier is None:
            raise RoutingUnavailableError(
                "this snapshot carries no routing fingerprints; re-save it "
                "with a routing policy (mode != 'off') or query with "
                "routing mode 'off'"
            )
        if isinstance(tier, FingerprintTier):
            return tier
        ndocs = len(self.rank_docs)
        memo = getattr(self, "_routing_memo", None)
        if memo is not None and memo[0] == ndocs:
            return memo[1]
        policy = self.params.routing
        built = FingerprintTier.from_rank_docs(
            self.rank_docs,
            block_len=max(policy.block_tokens, self.params.w),
            bands=policy.bands,
            doc_lo=getattr(self.rank_docs, "doc_lo", 0),
        )
        self._routing_memo = (ndocs, built)
        return built

    def _route_query(
        self, query_ranks, policy: RoutingPolicy, stats: SearchStats
    ):
        """Survivor mask (or ``None``) for one query under ``policy``."""
        tier = self.routing_fingerprints()
        allowed = tier.survivors(
            query_ranks,
            w=self.params.w,
            tau=self.params.tau,
            mode=policy.mode,
            hamming_budget=policy.hamming_budget,
            bands=policy.bands,
        )
        if allowed is not None:
            stats.routing_checked_docs += tier.ndocs
            stats.routing_pruned_docs += tier.ndocs - int(
                allowed[tier.doc_lo :].sum()
            )
        return allowed

    # ------------------------------------------------------------------
    def search(
        self,
        query: Document,
        *,
        cancel: Callable[[], bool] | None = None,
        routing: RoutingPolicy | None = None,
    ) -> SearchResult:
        """All matching window pairs between ``query`` and the data.

        ``cancel`` is an optional cooperative-cancellation hook: it is
        invoked between query windows in the slide loop, and when it
        returns True the search aborts with
        :class:`~repro.errors.SearchCancelled`.  The serving layer uses
        this for per-request deadlines; a hook that always returns
        False costs one call per window.

        ``routing`` overrides the fingerprint routing policy for this
        request (``None`` uses ``self.params.routing``).  The tier's
        *layout* (block width, stored bands) is fixed at build time; a
        per-request policy can change the mode and budget freely.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._search(query, cancel, routing)
        with tracer.span("pkwise.search", query=query.name) as search_span:
            result = self._search(query, cancel, routing)
            search_span.annotate(
                results=len(result.pairs),
                candidate_windows=result.stats.candidate_windows,
                **result.stats.phase_seconds(),
            )
        return result

    #: Changed window events prefetched per ``probe_many`` call.  The
    #: signature stream does not depend on probe results, so the slide
    #: loop can generate a run of events first and resolve all their
    #: signatures in one vectorized probe; replaying the run afterwards
    #: applies each event's slice of the batch in window order, which
    #: keeps candidate/merge/verify semantics (and results) identical
    #: to event-at-a-time probing.  Larger runs amortize the fixed
    #: numpy cost of a batched probe over more signatures; 32 events at
    #: the typical ~9 signatures each lands in the regime where the
    #: compact index's vectorized gather beats the dict index.
    _PROBE_CHUNK_EVENTS = 32

    def _search(
        self,
        query: Document,
        cancel: Callable[[], bool] | None = None,
        routing: RoutingPolicy | None = None,
    ) -> SearchResult:
        """The untraced search kernel behind :meth:`search`.

        The slide loop is batch-first: it prefetches a run of up to
        :data:`_PROBE_CHUNK_EVENTS` changed window events from the
        signature stream, probes the index once for all their opened and
        closed signatures together (``probe_many``), then replays the
        run window by window, applying each event's slice of the
        batch's +1/-1 candidate deltas before merging and verifying
        that window.  Phase timing is boundary timing — one running
        clock, read once per phase actually executed, so an unchanged
        window with nothing to verify costs no clock reads at all
        (the per-section scheme needed five per window); the few
        untimed instructions between phases land in the next boundary's
        reading, keeping ``total_time == signature + candidate +
        verify`` by construction.
        """
        stats = SearchStats()
        params = self.params
        w, tau = params.w, params.tau
        query_ranks = self.order.rank_document(query)
        if len(query_ranks) < w:
            return SearchResult(pairs=[], stats=stats)

        # Routing gate: one vectorized fingerprint pass decides which
        # documents may participate before any signature is generated.
        policy = params.routing if routing is None else routing
        allowed = None
        if policy is not None and policy.enabled:
            clock = time.perf_counter
            routing_start = clock()
            allowed = self._route_query(query_ranks, policy, stats)
            stats.routing_fingerprint_time += clock() - routing_start
            if allowed is not None and not allowed.any():
                return SearchResult(pairs=[], stats=stats)

        stream = SignatureStream(query_ranks, w, tau, self.scheme)
        verifier = IntervalVerifier(query_ranks, w, tau)
        index = self.index
        merge_gap = w // 2
        chunk_target = self._PROBE_CHUNK_EVENTS

        candidates: Counter[WindowInterval] = Counter()
        merged: list[WindowInterval] = []
        removed = self._removed
        pairs = []

        events = stream.events()
        clock = time.perf_counter
        last = clock()
        finished = False
        while not finished:
            # Signature phase: prefetch a run of window events.  Each
            # changed event's opened-then-closed signatures go into one
            # flat probe list; `spans` remembers every event's slice of
            # it (None for unchanged windows).
            chunk: list = []
            spans: list = []
            probe_sigs: list = []
            probe_signs: list = []
            changed = 0
            while changed < chunk_target:
                event = next(events, None)
                if event is None or event.final:
                    finished = True
                    break
                chunk.append(event)
                if event.unchanged:
                    spans.append(None)
                else:
                    lo = len(probe_sigs)
                    probe_sigs.extend(event.opened)
                    probe_sigs.extend(event.closed)
                    probe_signs.extend((1,) * len(event.opened))
                    probe_signs.extend((-1,) * len(event.closed))
                    spans.append((lo, len(probe_sigs)))
                    changed += 1
            now = clock()
            stats.signature_time += now - last
            last = now
            if not chunk:
                break

            # Candidate phase, part 1: one vectorized probe for the
            # whole run, decoded to lists once.
            if probe_sigs:
                batch = index.probe_many(probe_sigs, probe_signs)
                stats.probe_batches += 1
                stats.probe_signatures += batch.probed
                stats.postings_entries += batch.entries
                if removed:
                    batch = batch.without_docs(removed)
                if allowed is not None:
                    batch = batch.where_docs(allowed)
                hit_docs = batch.docs.tolist()
                hit_us = batch.us.tolist()
                hit_vs = batch.vs.tolist()
                hit_signs = batch.signs.tolist()
                bounds = batch.entry_bounds().tolist()
                now = clock()
                stats.candidate_time += now - last
                last = now

            # Replay the run in window order; semantics per window are
            # exactly the event-at-a-time loop's.
            for event, span in zip(chunk, spans):
                if cancel is not None and cancel():
                    raise SearchCancelled(
                        f"search of {query.name!r} cancelled at window "
                        f"{event.start}",
                        windows_processed=event.start,
                    )
                if span is not None:
                    for k in range(bounds[span[0]], bounds[span[1]]):
                        interval = WindowInterval(
                            hit_docs[k], hit_us[k], hit_vs[k]
                        )
                        count = candidates[interval] + hit_signs[k]
                        if count <= 0:
                            del candidates[interval]
                        else:
                            candidates[interval] = count
                    merged = merge_intervals(candidates.keys(), merge_gap)
                    now = clock()
                    stats.candidate_time += now - last
                    last = now

                if merged:
                    verifier.advance_to(event.start)
                    for interval in merged:
                        pairs.extend(
                            verifier.verify_interval(
                                interval.doc_id,
                                self.rank_docs[interval.doc_id],
                                interval.u,
                                interval.v,
                            )
                        )
                    now = clock()
                    stats.verify_time += now - last
                    last = now

        stats.signature_tokens = stream.generated_token_cost
        stats.signatures_generated = stream.generated_signatures
        stats.shared_windows = stream.shared_windows
        stats.changed_windows = stream.changed_windows
        stats.hash_ops = verifier.hash_ops
        stats.candidate_windows = verifier.candidate_windows
        stats.num_results = len(pairs)
        return SearchResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------
    def search_top_k(self, query: Document, k: int) -> list:
        """The ``k`` best-matching window pairs (highest overlap first).

        Convenience wrapper: runs the exact threshold search and keeps
        the top ``k`` by (overlap, then position).  For "best matches
        anywhere" semantics, run with a loose ``tau`` and let this
        method rank.
        """
        result = self.search(query)
        return heapq.nlargest(
            k,
            result.pairs,
            key=lambda pair: (
                pair.overlap,
                -pair.doc_id,
                -pair.data_start,
                -pair.query_start,
            ),
        )

    def search_many(self, queries: list[Document], *, jobs: int = 1):
        """Search every query; returns an :class:`~repro.eval.AggregateRun`.

        The same shape the parallel executor produces, so serial and
        ``jobs=N`` callers consume one type: per-query pair lists in
        canonical order under ``results_by_query``, summed stats under
        ``stats``.  (Releases before 1.1 returned a
        ``(results, stats)`` tuple; ``AggregateRun`` still unpacks that
        way with a :class:`DeprecationWarning`.)
        """
        from ..eval.harness import run_searcher

        return run_searcher(self, queries, jobs=jobs)

    def close(self) -> None:
        """Release resources (no-op; in-memory index). Idempotent."""

    def __repr__(self) -> str:
        return (
            f"PKWiseSearcher(w={self.params.w}, tau={self.params.tau}, "
            f"k_max={self.scheme.k_max}, m={self.scheme.m}, index={self.index!r})"
        )
