"""Shared result and statistics types for all search algorithms.

Every algorithm — pkwise and all baselines — returns the same
:class:`SearchResult`, so tests can assert exact-algorithm agreement and
benchmarks can decompose phase costs uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import NamedTuple


class MatchPair(NamedTuple):
    """One result of local similarity search: ``<W(d, x), W(q, y)>``.

    ``overlap`` is the multiset intersection size ``O(x, y)``; a pair is
    a result iff ``w - overlap <= tau``.
    """

    doc_id: int
    data_start: int
    query_start: int
    overlap: int


@dataclass
class SearchStats:
    """Phase decomposition of one query's processing (Section 5.1).

    Wall-clock seconds per phase plus the abstract operation counters
    the cost model weights with c_comb / c_int / c_hash.  Counter
    meanings:

    ``signature_tokens``
        Sum of |s| over generated signatures (Equation 2's unit).
    ``postings_entries``
        Interval (or window) entries fetched from the index during
        candidate generation (Equation 3's unit).
    ``hash_ops``
        Hash-table operations during verification (Equation 4's unit).
    ``candidate_windows``
        Number of data windows whose similarity was actually checked.
    """

    signature_time: float = 0.0
    candidate_time: float = 0.0
    verify_time: float = 0.0
    signature_tokens: int = 0
    signatures_generated: int = 0
    postings_entries: int = 0
    hash_ops: int = 0
    candidate_windows: int = 0
    num_results: int = 0
    shared_windows: int = 0
    changed_windows: int = 0

    @property
    def total_time(self) -> float:
        """Sum of the three phase times."""
        return self.signature_time + self.candidate_time + self.verify_time

    def abstract_cost(
        self, c_comb: float = 10.0, c_int: float = 2.0, c_hash: float = 1.0
    ) -> float:
        """Weighted operation count (the paper's default weights)."""
        return (
            c_comb * self.signature_tokens
            + c_int * self.postings_entries
            + c_hash * self.hash_ops
        )

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another query's stats into this one (in place)."""
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    def to_dict(self) -> dict:
        """All fields (plus ``total_time``) as a JSON-ready dict."""
        row = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        row["total_time"] = self.total_time
        return row


@dataclass
class SearchResult:
    """Match pairs plus the stats of producing them."""

    pairs: list[MatchPair]
    stats: SearchStats = field(default_factory=SearchStats)

    def sorted_pairs(self) -> list[MatchPair]:
        """Canonical ordering for cross-algorithm comparison."""
        return sorted(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)
