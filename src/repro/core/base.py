"""Shared result and statistics types for all search algorithms.

Every algorithm — pkwise and all baselines — returns the same
:class:`SearchResult`, so tests can assert exact-algorithm agreement and
benchmarks can decompose phase costs uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import NamedTuple

from ..obs.registry import MetricsRegistry


class MatchPair(NamedTuple):
    """One result of local similarity search: ``<W(d, x), W(q, y)>``.

    ``overlap`` is the multiset intersection size ``O(x, y)``; a pair is
    a result iff ``w - overlap <= tau``.
    """

    doc_id: int
    data_start: int
    query_start: int
    overlap: int


#: The typed metric schema behind :class:`SearchStats`: timers carry
#: wall-clock seconds per phase, counters carry the abstract operation
#: counts.  This tuple pair is the single source of truth for merging
#: and for the :class:`~repro.obs.MetricsRegistry` mapping — adding a
#: field to the dataclass without classifying it here fails loudly in
#: ``to_registry``/tests rather than silently dropping it from reports.
STAT_TIMER_FIELDS: tuple[str, ...] = (
    "signature_time",
    "candidate_time",
    "verify_time",
    "routing_fingerprint_time",
)
STAT_COUNTER_FIELDS: tuple[str, ...] = (
    "signature_tokens",
    "signatures_generated",
    "postings_entries",
    "probe_batches",
    "probe_signatures",
    "hash_ops",
    "candidate_windows",
    "num_results",
    "shared_windows",
    "changed_windows",
    "routing_checked_docs",
    "routing_pruned_docs",
)


@dataclass
class SearchStats:
    """Phase decomposition of one query's processing (Section 5.1).

    Wall-clock seconds per phase plus the abstract operation counters
    the cost model weights with c_comb / c_int / c_hash.  Counter
    meanings:

    ``signature_tokens``
        Sum of |s| over generated signatures (Equation 2's unit).
    ``postings_entries``
        Interval (or window) entries fetched from the index during
        candidate generation (Equation 3's unit).
    ``probe_batches``
        ``probe_many`` calls issued — one per prefetched run of changed
        window events (pkwise) or per query window (non-interval).
    ``probe_signatures``
        Signatures resolved through those batches;
        ``probe_signatures / probe_batches`` is the mean batch width,
        the lever behind vectorized-probe throughput.
    ``hash_ops``
        Hash-table operations during verification (Equation 4's unit).
    ``candidate_windows``
        Number of data windows whose similarity was actually checked.
    ``routing_checked_docs`` / ``routing_pruned_docs``
        Documents the fingerprint routing tier examined and how many it
        pruned before candidate generation (the ``routing.*`` family;
        zero when ``RoutingPolicy.mode == "off"``).  Both are abstract
        counts — deterministic across serial, fork, and spawn runs.

    The class is a flat-attribute view over the typed metric schema
    (``STAT_TIMER_FIELDS`` / ``STAT_COUNTER_FIELDS``): hot loops add to
    attributes, and :meth:`to_registry` / :meth:`from_registry` convert
    losslessly to :class:`~repro.obs.MetricsRegistry` at reporting and
    worker-serialization boundaries.
    """

    signature_time: float = 0.0
    candidate_time: float = 0.0
    verify_time: float = 0.0
    routing_fingerprint_time: float = 0.0
    signature_tokens: int = 0
    signatures_generated: int = 0
    postings_entries: int = 0
    probe_batches: int = 0
    probe_signatures: int = 0
    hash_ops: int = 0
    candidate_windows: int = 0
    num_results: int = 0
    shared_windows: int = 0
    changed_windows: int = 0
    routing_checked_docs: int = 0
    routing_pruned_docs: int = 0

    @property
    def total_time(self) -> float:
        """Sum of the phase times (routing gate included)."""
        return (
            self.routing_fingerprint_time
            + self.signature_time
            + self.candidate_time
            + self.verify_time
        )

    def phase_seconds(self) -> dict[str, float]:
        """Per-phase wall-clock breakdown keyed by short phase name."""
        return {
            "routing": self.routing_fingerprint_time,
            "signature": self.signature_time,
            "candidate": self.candidate_time,
            "verify": self.verify_time,
        }

    def abstract_cost(
        self, c_comb: float = 10.0, c_int: float = 2.0, c_hash: float = 1.0
    ) -> float:
        """Weighted operation count (the paper's default weights)."""
        return (
            c_comb * self.signature_tokens
            + c_int * self.postings_entries
            + c_hash * self.hash_ops
        )

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another query's stats into this one (in place)."""
        for name in STAT_TIMER_FIELDS + STAT_COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    # ------------------------------------------------------------------
    # Registry boundary (repro.obs)
    # ------------------------------------------------------------------
    def to_registry(self, registry: MetricsRegistry | None = None) -> MetricsRegistry:
        """Pour these stats into a typed registry (created if omitted)."""
        if registry is None:
            registry = MetricsRegistry()
        for name in STAT_TIMER_FIELDS:
            registry.timer(name).add(getattr(self, name))
        for name in STAT_COUNTER_FIELDS:
            registry.counter(name).inc(getattr(self, name))
        return registry

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "SearchStats":
        """Rebuild stats from a registry (missing metrics read as zero)."""
        stats = cls()
        for name in STAT_TIMER_FIELDS:
            stats.__setattr__(name, registry.timer(name).seconds)
        for name in STAT_COUNTER_FIELDS:
            stats.__setattr__(name, registry.counter(name).value)
        return stats

    def snapshot(self) -> dict:
        """Canonical registry snapshot (what parallel workers ship back)."""
        return self.to_registry().snapshot()

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "SearchStats":
        """Inverse of :meth:`snapshot`."""
        return cls.from_registry(MetricsRegistry.from_snapshot(snapshot))

    def to_dict(self) -> dict:
        """All fields (plus ``total_time``) as a JSON-ready dict."""
        row = {name: getattr(self, name)
               for name in STAT_TIMER_FIELDS + STAT_COUNTER_FIELDS}
        row["total_time"] = self.total_time
        return row


# Every dataclass field must be classified as a timer or a counter;
# checked once at import so schema drift fails the first test that
# touches the module instead of silently dropping a field from merges.
assert {spec.name for spec in fields(SearchStats)} == set(
    STAT_TIMER_FIELDS + STAT_COUNTER_FIELDS
), "SearchStats fields out of sync with STAT_TIMER_FIELDS/STAT_COUNTER_FIELDS"


@dataclass
class SearchResult:
    """Match pairs plus the stats of producing them."""

    pairs: list[MatchPair]
    stats: SearchStats = field(default_factory=SearchStats)

    def sorted_pairs(self) -> list[MatchPair]:
        """Canonical ordering for cross-algorithm comparison."""
        return sorted(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)
