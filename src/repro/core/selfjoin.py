"""All-pairs local similarity self-join within one collection.

The paper frames local similarity search as a join of two window
relations (Section 2.2); the common production variant is the
*self-join*: find every replicated window pair inside one corpus
(intra-corpus dedup, mirror detection).  This module runs each document
as a query against the collection's pkwise index, suppressing the
trivial self-matches every window has with itself and, optionally, the
near-diagonal self-overlaps within one document.
"""

from __future__ import annotations

from typing import NamedTuple

from ..corpus import DocumentCollection
from ..obs import get_tracer
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..partition.scheme import PartitionScheme
from .pkwise import PKWiseSearcher


class SelfJoinPair(NamedTuple):
    """A replicated window pair inside one collection.

    Canonical orientation: ``(left_doc, left_start) < (right_doc,
    right_start)``, so each unordered pair is reported once.
    """

    left_doc: int
    left_start: int
    right_doc: int
    right_start: int
    overlap: int


def document_join_pairs(
    searcher: PKWiseSearcher,
    document,
    exclude_same_document_within: int | None = None,
) -> list[SelfJoinPair]:
    """One document's self-join contribution (canonical orientation).

    Runs ``document`` as a query against ``searcher`` and keeps only the
    pairs whose left side sorts strictly below the right side, so
    summing this over any partition of the collection yields each
    unordered pair exactly once — the unit of work for both the serial
    join and the parallel document-pair blocks.
    """
    results: list[SelfJoinPair] = []
    for pair in searcher.search(document).pairs:
        left = (pair.doc_id, pair.data_start)
        right = (document.doc_id, pair.query_start)
        if left >= right:
            continue  # identity pair, or the mirror orientation
        if (
            exclude_same_document_within is not None
            and pair.doc_id == document.doc_id
            and abs(pair.data_start - pair.query_start)
            <= exclude_same_document_within
        ):
            continue
        results.append(
            SelfJoinPair(left[0], left[1], right[0], right[1], pair.overlap)
        )
    return results


def local_similarity_self_join(
    data: DocumentCollection,
    params: SearchParams,
    scheme: PartitionScheme | None = None,
    order: GlobalOrder | None = None,
    exclude_same_document_within: int | None = None,
    jobs: int = 1,
    start_method: str | None = None,
    checkpoint=None,
    resume: bool = False,
) -> list[SelfJoinPair]:
    """All window pairs of ``data`` with ``w - O(x, y) <= tau``.

    Each unordered pair is reported once (canonical orientation); the
    identity pair of every window with itself is suppressed.

    ``exclude_same_document_within`` additionally drops same-document
    pairs whose starts differ by at most the given number of tokens —
    overlapping windows of one document trivially share most tokens, and
    dedup pipelines rarely want them.  Pass ``params.w`` to drop exactly
    the self-overlapping pairs; ``None`` keeps everything.

    ``jobs`` distributes both the index build and the join itself over
    that many worker processes (``None`` = one per CPU); the output is
    identical to the serial join.  ``checkpoint`` names a file that
    accumulates completed document blocks so a long join interrupted by
    a crash or Ctrl-C can be re-invoked with ``resume=True`` and finish
    from where it stopped (a checkpoint routes the join through the
    supervised executor even at ``jobs=1``).
    """
    if jobs is None or jobs != 1 or checkpoint is not None:
        from ..parallel import ParallelExecutor

        executor = ParallelExecutor(jobs=jobs, start_method=start_method)
        return executor.self_join(
            data,
            params,
            scheme=scheme,
            order=order,
            exclude_same_document_within=exclude_same_document_within,
            checkpoint=checkpoint,
            resume=resume,
        )
    with get_tracer().span("selfjoin", documents=len(data)) as join_span:
        searcher = PKWiseSearcher(data, params, scheme=scheme, order=order)
        results: list[SelfJoinPair] = []
        for document in data:
            results.extend(
                document_join_pairs(searcher, document, exclude_same_document_within)
            )
        results.sort()
        join_span.annotate(pairs=len(results))
    return results
