"""The multi-core execution engine behind ``--jobs``.

:class:`ParallelExecutor` runs the three batch-shaped operations of the
library — a query workload, index construction, and the all-pairs
self-join — across a process pool, with four invariants:

* **Determinism.**  Every operation returns exactly what its serial
  counterpart returns: per-query pair lists in canonical order, an
  interval index with byte-identical postings lists, self-join pairs in
  sorted order.  Chunks are reassembled by item identity (query
  position, document id), never by arrival.
* **Chunked dispatch.**  Work is cut into ~``CHUNKS_PER_WORKER`` pieces
  per worker so one slow shard cannot idle the rest of the pool; the
  resulting skew is measured and reported per worker.
* **Graceful degradation.**  ``jobs=1`` (or trivially small inputs)
  bypasses the pool entirely and runs the serial code in-process.
* **Crash recovery.**  Workloads and self-joins run under *supervised*
  dispatch (:mod:`concurrent.futures`): a chunk that raises is retried
  with capped exponential backoff, a chunk that keeps failing is
  bisected until the poison item is isolated, and a worker process that
  dies outright (segfault, OOM kill, injected ``os._exit``) triggers a
  bounded pool restart with every lost chunk re-dispatched.  Surviving
  results stay exact — a failed chunk contributes nothing until a
  retry completes it whole.  Poison queries are quarantined into typed
  :class:`~repro.eval.harness.QueryFailure` records on the run; a
  poison self-join document re-raises (a join is exact-or-error).
  Optional chunk-granularity checkpoints make both operations
  resumable after a crash or Ctrl-C (see
  :mod:`repro.parallel.checkpoint`).
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import os
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from pathlib import Path

from .. import faults
from ..core.base import SearchStats
from ..core.pkwise import PKWiseSearcher, default_scheme
from ..corpus import Document, DocumentCollection
from ..errors import ConfigurationError, WorkerCrashError
from ..eval.harness import (
    AggregateRun,
    QueryFailure,
    RecoveryReport,
    WorkerReport,
    canonical_pair_order,
    serial_run,
)
from ..index.interval_index import IntervalIndex
from ..obs import MetricsRegistry, get_tracer
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..partition.scheme import PartitionScheme
from . import worker
from .checkpoint import (
    SELFJOIN_KIND,
    WORKLOAD_KIND,
    RunCheckpoint,
    selfjoin_fingerprint,
    workload_fingerprint,
)

#: Target number of chunks dispatched per pool worker.  More chunks
#: smooth out skew between uneven shards; fewer chunks amortize task
#: pickling better.  4 is the usual sweet spot for workloads of tens to
#: thousands of items.
CHUNKS_PER_WORKER = 4


def split_blocks(total: int, parts: int) -> list[tuple[int, int]]:
    """Cut ``range(total)`` into at most ``parts`` contiguous blocks.

    Blocks differ in size by at most one and are returned in order, so
    concatenating per-block results preserves item order.
    """
    parts = max(1, min(parts, total))
    base, remainder = divmod(total, parts)
    blocks = []
    lo = 0
    for part in range(parts):
        hi = lo + base + (1 if part < remainder else 0)
        blocks.append((lo, hi))
        lo = hi
    return blocks


class _Unit:
    """One retryable unit of dispatched work (a chunk of items)."""

    __slots__ = ("items", "attempts")

    def __init__(self, items: list, attempts: int = 0) -> None:
        self.items = items
        self.attempts = attempts


class ParallelExecutor:
    """Process-pool execution of workloads, builds, and self-joins.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means one per CPU.  ``1`` disables
        the pool (serial pass-through).
    start_method:
        ``"fork"`` (POSIX; workers inherit state through copy-on-write)
        or ``"spawn"`` (portable; state travels through a persisted
        index file or pickle).  ``None`` picks ``fork`` when available.
    chunk_size:
        Items per dispatched chunk; ``None`` derives it from the
        workload size and ``CHUNKS_PER_WORKER``.
    chunk_retries:
        Failed-attempt budget per unit before it is bisected (multi-item
        units) or quarantined (single items).  ``2`` means a unit runs
        at most three times.
    max_pool_restarts:
        Worker-death budget for one operation; exceeding it raises
        :class:`~repro.errors.WorkerCrashError` (completed chunks are
        preserved in the checkpoint when one is configured).
    retry_backoff / retry_backoff_cap:
        Base and cap (seconds) of the capped exponential delay before a
        failed unit is re-dispatched: ``min(cap, base * 2**(attempt-1))``.
    checkpoint_every:
        Flush the run checkpoint after this many newly completed chunks
        (``1`` = after every chunk; only meaningful with ``checkpoint=``).
    """

    def __init__(
        self,
        jobs: int | None = None,
        start_method: str | None = None,
        chunk_size: int | None = None,
        *,
        chunk_retries: int = 2,
        max_pool_restarts: int = 3,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 1.0,
        checkpoint_every: int = 1,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        elif start_method not in available:
            raise ConfigurationError(
                f"start method {start_method!r} not available here "
                f"(have: {', '.join(available)})"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if chunk_retries < 0:
            raise ConfigurationError(
                f"chunk_retries must be >= 0, got {chunk_retries}"
            )
        if max_pool_restarts < 0:
            raise ConfigurationError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        if retry_backoff < 0 or retry_backoff_cap < 0:
            raise ConfigurationError("retry backoff values must be >= 0")
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.jobs = jobs
        self.start_method = start_method
        self.chunk_size = chunk_size
        self.chunk_retries = chunk_retries
        self.max_pool_restarts = max_pool_restarts
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.checkpoint_every = checkpoint_every

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def _worker_state(self, state, persist: bool = False):
        """Yield ``(mp_context, initializer, initargs)`` carrying ``state``.

        The supervised dispatcher creates (and after a crash, recreates)
        its own pools, so state transport is factored out of pool
        construction: under ``fork`` the state sits in ``worker._STATE``
        for the whole run and every pool generation inherits it; under
        ``spawn`` each generation replays the initializer — a compact
        format-v3 snapshot that every worker memory-maps (plain
        ``PKWiseSearcher`` state: one file, one shared page cache,
        near-constant per-worker startup instead of a full unpickle), a
        v2 pickle file for searcher subclasses, a pickled payload
        otherwise.  The active fault plan travels in the initargs so
        injection points fire identically under every start method.
        """
        context = multiprocessing.get_context(self.start_method)
        plan = faults.get_plan()
        if self.start_method == "fork":
            worker.set_forked_state(state)
            try:
                yield context, None, ()
            finally:
                worker.clear_forked_state()
        elif persist and isinstance(state, PKWiseSearcher):
            from ..persistence import save_searcher

            # Exactly PKWiseSearcher compacts losslessly; subclasses
            # (e.g. the weighted engine) keep the full-pickle transport.
            compact = type(state) is PKWiseSearcher
            temp_dir = tempfile.TemporaryDirectory(prefix="repro-parallel-")
            try:
                index_path = Path(temp_dir.name) / "searcher.idx"
                save_searcher(state, index_path, compact=compact)
                yield (
                    context,
                    worker.init_searcher_file,
                    (str(index_path), plan, compact),
                )
            finally:
                temp_dir.cleanup()
        else:
            yield context, worker.init_state, (state, plan)

    @contextmanager
    def _pool(self, state, processes: int, persist: bool = False):
        """A classic :mod:`multiprocessing` pool over ``state``.

        Used by the barrier-style build phases (every chunk must succeed
        or the build is wrong anyway).  A ``KeyboardInterrupt`` — or any
        other abort — terminates the pool promptly instead of closing
        it and hanging on ``join`` behind unfinished tasks.
        """
        with self._worker_state(state, persist=persist) as (
            context,
            initializer,
            initargs,
        ):
            pool = context.Pool(processes, initializer=initializer, initargs=initargs)
            try:
                yield pool
            except BaseException:
                pool.terminate()
                pool.join()
                raise
            else:
                pool.close()
                pool.join()

    def _chunk(self, items: list) -> list[list]:
        """Cut ``items`` into dispatch chunks (order-preserving)."""
        if not items:
            return []
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, math.ceil(len(items) / (self.jobs * CHUNKS_PER_WORKER)))
        return [items[lo : lo + size] for lo in range(0, len(items), size)]

    @staticmethod
    def _reports_by_pid(raw_chunks) -> list[WorkerReport]:
        """Fold ``(chunk_index, pid, elapsed, ...)`` rows into reports."""
        by_pid: dict[int, WorkerReport] = {}
        for row in raw_chunks:
            pid, elapsed = row[1], row[2]
            report = by_pid.setdefault(pid, WorkerReport(worker_id=0))
            report.chunks += 1
            report.seconds += elapsed
        reports = [by_pid[pid] for pid in sorted(by_pid)]
        for worker_id, report in enumerate(reports):
            report.worker_id = worker_id
        return reports

    # ------------------------------------------------------------------
    # Supervised dispatch (crash recovery core)
    # ------------------------------------------------------------------
    def _supervise(
        self,
        *,
        units: list[_Unit],
        task_fn,
        make_task,
        mp_context,
        initializer,
        initargs,
        processes: int,
        recovery: RecoveryReport,
        on_result,
        on_poison,
        checkpoint: RunCheckpoint | None = None,
    ) -> None:
        """Drive ``units`` through a restartable supervised pool.

        Per completed unit ``on_result(unit, result)`` fires exactly
        once.  A unit whose task raises an :class:`Exception` is retried
        up to ``chunk_retries`` times with capped exponential backoff,
        then bisected (multi-item) or handed to ``on_poison(item, exc,
        attempts)`` (single item).  A dead worker process breaks the
        whole pool (:class:`BrokenProcessPool`); in-flight units are
        settled — results that finished before the crash are kept, the
        rest requeue *without* being charged an attempt (an innocent
        chunk sharing a pool with a crasher must not drift toward
        quarantine) — and the pool is rebuilt, at most
        ``max_pool_restarts`` times.

        Any abort (``KeyboardInterrupt``, ``WorkerCrashError``, an
        ``on_poison`` re-raise) terminates worker processes immediately
        and flushes the checkpoint before propagating, so Ctrl-C never
        hangs on pool join and never loses completed chunks.
        """
        pending: deque[_Unit] = deque(units)
        in_flight: dict = {}
        task_ids = itertools.count()
        restarts = 0
        pool: ProcessPoolExecutor | None = None

        def new_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=processes,
                mp_context=mp_context,
                initializer=initializer,
                initargs=initargs,
            )

        def handle_failure(unit: _Unit, exc: Exception) -> None:
            unit.attempts += 1
            if unit.attempts <= self.chunk_retries:
                recovery.chunk_retries += 1
                delay = min(
                    self.retry_backoff_cap,
                    self.retry_backoff * (2 ** (unit.attempts - 1)),
                )
                if delay > 0:
                    time.sleep(delay)
                pending.append(unit)
            elif len(unit.items) > 1:
                # The chunk keeps failing: split it so the poison item
                # isolates in O(log chunk) re-dispatches.
                recovery.chunk_bisections += 1
                mid = len(unit.items) // 2
                pending.append(_Unit(unit.items[:mid]))
                pending.append(_Unit(unit.items[mid:]))
            else:
                on_poison(unit.items[0], exc, unit.attempts)

        def harvest(futures) -> bool:
            """Settle ``futures``; True when the pool broke underneath."""
            broken = False
            for future in futures:
                unit = in_flight.pop(future)
                exc = future.exception()
                if exc is None:
                    on_result(unit, future.result())
                elif isinstance(exc, BrokenProcessPool):
                    broken = True
                    pending.append(unit)
                elif isinstance(exc, Exception):
                    handle_failure(unit, exc)
                else:
                    # A worker-raised KeyboardInterrupt (or other
                    # BaseException) is an abort, never a retry.
                    raise exc
            return broken

        def handle_broken_pool() -> None:
            nonlocal pool, restarts
            # Every in-flight future settles once the pool is broken;
            # results that arrived before the crash are kept.
            wait(list(in_flight))
            harvest(list(in_flight))
            pool.shutdown(wait=True)
            pool = None
            restarts += 1
            if restarts > self.max_pool_restarts:
                raise WorkerCrashError(
                    f"worker pool crashed {restarts} times "
                    f"(max_pool_restarts={self.max_pool_restarts})"
                    + (
                        f"; completed chunks are preserved in checkpoint "
                        f"{checkpoint.path} — rerun with resume=True"
                        if checkpoint is not None
                        else "; no checkpoint was configured"
                    ),
                    restarts=restarts,
                )
            recovery.pool_restarts += 1

        try:
            while pending or in_flight:
                if pool is None:
                    pool = new_pool()
                submitted_ok = True
                while pending:
                    unit = pending.popleft()
                    try:
                        future = pool.submit(
                            task_fn, make_task(next(task_ids), unit)
                        )
                    except BrokenProcessPool:
                        pending.appendleft(unit)
                        submitted_ok = False
                        break
                    in_flight[future] = unit
                if not in_flight:
                    if not submitted_ok:
                        handle_broken_pool()
                    continue
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                if harvest(done) or not submitted_ok:
                    handle_broken_pool()
            if pool is not None:
                pool.shutdown(wait=True)
        except BaseException:
            if pool is not None:
                for process in list(
                    (getattr(pool, "_processes", None) or {}).values()
                ):
                    process.terminate()
                pool.shutdown(wait=False, cancel_futures=True)
            if checkpoint is not None:
                # force=True: the file named by WorkerCrashError must
                # exist even when the crash beat the first chunk.
                checkpoint.flush(force=True)
            raise

    # ------------------------------------------------------------------
    # (a) Query-workload sharding
    # ------------------------------------------------------------------
    def run_workload(
        self,
        searcher,
        queries: list[Document],
        name: str | None = None,
        *,
        checkpoint: str | Path | None = None,
        resume: bool = False,
    ) -> AggregateRun:
        """Shard ``queries`` over the pool; merge into an AggregateRun.

        The merged run is identical to :func:`~repro.eval.serial_run`
        on the same inputs — per-query pair lists in canonical order,
        ``results_by_query`` keyed and inserted in workload order —
        plus per-worker skew reports.  Timing fields reflect the
        parallel wall clock, never the serial one.

        Failed chunks are retried, bisected, and — when a single query
        keeps failing — quarantined into ``run.failures`` while every
        surviving query's results remain exact (byte-identical to a
        serial run over the surviving subset).  ``checkpoint=`` names a
        file that accumulates completed chunks so an interrupted run
        (worker crashes beyond ``max_pool_restarts``, Ctrl-C, power
        loss after a flush) can continue with ``resume=True``; the file
        is removed when the run completes.  A checkpoint forces the
        supervised path even at ``jobs=1``.
        """
        if checkpoint is None and (self.jobs == 1 or len(queries) <= 1):
            return serial_run(searcher, queries, name=name)

        recovery = RecoveryReport()
        failures: list[QueryFailure] = []
        raw_units: list[tuple] = []  # (pid, elapsed, snapshot, rows)

        run_checkpoint: RunCheckpoint | None = None
        items = list(enumerate(queries))
        if checkpoint is not None:
            fingerprint = workload_fingerprint(searcher, queries)
            run_checkpoint = RunCheckpoint.open(
                checkpoint, WORKLOAD_KIND, fingerprint, resume=resume
            )
            skip = run_checkpoint.done_keys()
            for record in run_checkpoint.failure_records():
                failure = QueryFailure.from_dict(record["failure"])
                failures.append(failure)
                skip.add(failure.position)
            for record in run_checkpoint.unit_records():
                raw_units.append(
                    (
                        record["pid"],
                        record["elapsed"],
                        record["snapshot"],
                        record["rows"],
                    )
                )
            recovery.resumed_items = len(skip)
            items = [(pos, query) for pos, query in items if pos not in skip]

        units = [_Unit(chunk) for chunk in self._chunk(items)]
        processes = min(self.jobs, max(1, len(units)))
        started = time.perf_counter()

        def on_result(unit: _Unit, result) -> None:
            _chunk_index, pid, elapsed, snapshot, rows = result
            raw_units.append((pid, elapsed, snapshot, rows))
            if run_checkpoint is not None:
                run_checkpoint.record(
                    [position for position, _doc_id, _pairs in rows],
                    pid=pid,
                    elapsed=elapsed,
                    snapshot=snapshot,
                    rows=rows,
                )
                if run_checkpoint.dirty >= self.checkpoint_every:
                    run_checkpoint.flush()

        def on_poison(item, exc: Exception, attempts: int) -> None:
            position, query = item
            failure = QueryFailure(
                position=position,
                query_id=query.doc_id if query.doc_id >= 0 else position,
                query_name=query.name,
                error_type=type(exc).__name__,
                error_message=str(exc),
                attempts=attempts,
            )
            failures.append(failure)
            if run_checkpoint is not None:
                run_checkpoint.record_failure(failure.to_dict())
                if run_checkpoint.dirty >= self.checkpoint_every:
                    run_checkpoint.flush()

        with get_tracer().span(
            "parallel.run_workload", queries=len(queries), jobs=processes,
            chunks=len(units),
        ):
            if units:
                with self._worker_state(searcher, persist=True) as (
                    context,
                    initializer,
                    initargs,
                ):
                    self._supervise(
                        units=units,
                        task_fn=worker.search_chunk,
                        make_task=lambda task_id, unit: (task_id, unit.items),
                        mp_context=context,
                        initializer=initializer,
                        initargs=initargs,
                        processes=processes,
                        recovery=recovery,
                        on_result=on_result,
                        on_poison=on_poison,
                        checkpoint=run_checkpoint,
                    )
        total_seconds = time.perf_counter() - started
        if run_checkpoint is not None:
            run_checkpoint.flush()
            recovery.checkpoint_saves = run_checkpoint.saves
            run_checkpoint.remove()

        # Chunks ship registry snapshots (the repro.obs wire format);
        # counter/timer merging is commutative sums (gauges max), so
        # the merged totals equal the serial run's field for field no
        # matter what order retried chunks completed in.
        total_registry = MetricsRegistry()
        rows: list = []
        by_pid: dict[int, tuple[WorkerReport, MetricsRegistry]] = {}
        for pid, elapsed, snapshot, chunk_rows in raw_units:
            total_registry.merge_snapshot(snapshot)
            rows.extend(chunk_rows)
            report, pid_registry = by_pid.setdefault(
                pid, (WorkerReport(worker_id=0), MetricsRegistry())
            )
            report.chunks += 1
            report.seconds += elapsed
            report.num_queries += len(chunk_rows)
            pid_registry.merge_snapshot(snapshot)
        total_stats = SearchStats.from_registry(total_registry)
        reports = []
        for worker_id, pid in enumerate(sorted(by_pid)):
            report, pid_registry = by_pid[pid]
            report.worker_id = worker_id
            report.stats = SearchStats.from_registry(pid_registry)
            reports.append(report)

        rows.sort(key=lambda row: row[0])
        results_by_query: dict[int, list] = {}
        for position, doc_id, pairs in rows:
            query_id = doc_id if doc_id >= 0 else position
            results_by_query[query_id] = canonical_pair_order(pairs)
        failures.sort(key=lambda failure: failure.position)

        return AggregateRun(
            name=name if name is not None else getattr(searcher, "name", "searcher"),
            num_queries=len(queries),
            total_seconds=total_seconds,
            stats=total_stats,
            results_by_query=results_by_query,
            jobs=processes,
            worker_reports=reports,
            failures=failures,
            recovery=recovery,
        )

    # ------------------------------------------------------------------
    # (b) Parallel index construction
    # ------------------------------------------------------------------
    def build_searcher(
        self,
        data: DocumentCollection,
        params: SearchParams,
        scheme: PartitionScheme | None = None,
        order: GlobalOrder | None = None,
        hashed: bool = False,
    ) -> PKWiseSearcher:
        """Build a :class:`PKWiseSearcher` by document partition.

        Two pool phases: (1) per-block window-frequency vectors, summed
        elementwise into the exact global vector the serial
        :class:`GlobalOrder` would compute; (2) per-block partial
        interval indexes, merged in block order so every postings list
        matches the serial build byte for byte.
        """
        started = time.perf_counter()
        if self.jobs == 1 or len(data) <= 1:
            return PKWiseSearcher(
                data, params, scheme=scheme, order=order, hashed=hashed
            )
        tracer = get_tracer()
        if order is None:
            blocks = split_blocks(len(data), self.jobs * CHUNKS_PER_WORKER)
            tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(blocks)]
            with tracer.span("parallel.frequency_pass", chunks=len(tasks)):
                with self._pool(
                    (data, params.w), min(self.jobs, len(tasks))
                ) as pool:
                    raw = pool.map(worker.frequency_chunk, tasks)
            frequencies = [0] * len(data.vocabulary)
            for _chunk_index, _pid, _elapsed, partial in raw:
                for token_id, count in enumerate(partial):
                    frequencies[token_id] += count
            order = GlobalOrder.from_frequencies(
                data.vocabulary, params.w, frequencies, data.total_windows(params.w)
            )
        if scheme is None:
            scheme = default_scheme(params, order)

        blocks = split_blocks(len(data), self.jobs * CHUNKS_PER_WORKER)
        tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(blocks)]
        state = (data, params, scheme, order, hashed)
        with tracer.span(
            "parallel.build_searcher",
            documents=len(data),
            jobs=min(self.jobs, len(tasks)),
            chunks=len(tasks),
        ) as build_span:
            with self._pool(state, min(self.jobs, len(tasks))) as pool:
                raw = pool.map(worker.index_chunk, tasks)
            raw.sort(key=lambda row: row[0])
            index = IntervalIndex(params.w, params.tau, scheme, hashed=hashed)
            rank_docs: list[list[int]] = []
            for _chunk_index, _pid, _elapsed, partial_index, partial_ranks in raw:
                index.merge(partial_index)
                rank_docs.extend(partial_ranks)
            build_span.annotate(
                windows=index.num_windows, postings=index.num_postings
            )
        searcher = PKWiseSearcher.from_prebuilt(
            params,
            order,
            scheme,
            index,
            rank_docs,
            build_seconds=time.perf_counter() - started,
        )
        searcher.build_worker_reports = self._reports_by_pid(raw)
        return searcher

    # ------------------------------------------------------------------
    # (c) Parallel self-join
    # ------------------------------------------------------------------
    def self_join(
        self,
        data: DocumentCollection,
        params: SearchParams,
        scheme: PartitionScheme | None = None,
        order: GlobalOrder | None = None,
        exclude_same_document_within: int | None = None,
        searcher: PKWiseSearcher | None = None,
        *,
        checkpoint: str | Path | None = None,
        resume: bool = False,
    ) -> list:
        """All-pairs self-join sharded by document-pair blocks.

        Each block is one slice of probe documents joined against the
        whole collection; the canonical-orientation filter already
        deduplicates across blocks, and the final sort makes the output
        identical to the serial join.  Pass a prebuilt ``searcher`` to
        skip (re)building the index.

        Supervised like :meth:`run_workload` (chunk retries, pool
        restarts, ``checkpoint=``/``resume=``), with one difference: a
        self-join is *exact-or-error*, so a document that keeps failing
        re-raises its exception (after flushing the checkpoint) instead
        of being quarantined — there is no per-item report that could
        make a partial join safe to consume.
        """
        from ..core.selfjoin import document_join_pairs

        if searcher is None:
            searcher = self.build_searcher(data, params, scheme=scheme, order=order)
        documents = list(data)
        if checkpoint is None and (self.jobs == 1 or len(documents) <= 1):
            results = []
            for document in documents:
                results.extend(
                    document_join_pairs(
                        searcher, document, exclude_same_document_within
                    )
                )
            results.sort()
            return results

        recovery = RecoveryReport()
        results: list = []
        run_checkpoint: RunCheckpoint | None = None
        if checkpoint is not None:
            fingerprint = selfjoin_fingerprint(
                data, params, exclude_same_document_within
            )
            run_checkpoint = RunCheckpoint.open(
                checkpoint, SELFJOIN_KIND, fingerprint, resume=resume
            )
            done = run_checkpoint.done_keys()
            for record in run_checkpoint.unit_records():
                results.extend(record["pairs"])
            recovery.resumed_items = len(done)
            documents = [
                document for document in documents if document.doc_id not in done
            ]

        units = [_Unit(chunk) for chunk in self._chunk(documents)]
        processes = min(self.jobs, max(1, len(units)))

        def on_result(unit: _Unit, result) -> None:
            _chunk_index, pid, elapsed, doc_ids, pairs = result
            results.extend(pairs)
            if run_checkpoint is not None:
                run_checkpoint.record(doc_ids, pid=pid, elapsed=elapsed, pairs=pairs)
                if run_checkpoint.dirty >= self.checkpoint_every:
                    run_checkpoint.flush()

        def on_poison(document, exc: Exception, attempts: int) -> None:
            raise exc

        with get_tracer().span(
            "parallel.self_join", documents=len(documents), jobs=processes,
            chunks=len(units),
        ) as join_span:
            if units:
                with self._worker_state(searcher, persist=True) as (
                    context,
                    initializer,
                    initargs,
                ):
                    self._supervise(
                        units=units,
                        task_fn=worker.selfjoin_chunk,
                        make_task=lambda task_id, unit: (
                            task_id,
                            unit.items,
                            exclude_same_document_within,
                        ),
                        mp_context=context,
                        initializer=initializer,
                        initargs=initargs,
                        processes=processes,
                        recovery=recovery,
                        on_result=on_result,
                        on_poison=on_poison,
                        checkpoint=run_checkpoint,
                    )
            results.sort()
            join_span.annotate(pairs=len(results))
        if run_checkpoint is not None:
            run_checkpoint.flush()
            run_checkpoint.remove()
        return results
