"""The multi-core execution engine behind ``--jobs``.

:class:`ParallelExecutor` runs the three batch-shaped operations of the
library — a query workload, index construction, and the all-pairs
self-join — across a process pool, with three invariants:

* **Determinism.**  Every operation returns exactly what its serial
  counterpart returns: per-query pair lists in canonical order, an
  interval index with byte-identical postings lists, self-join pairs in
  sorted order.  Chunks are reassembled by index, never by arrival.
* **Chunked dispatch.**  Work is cut into ~``CHUNKS_PER_WORKER`` pieces
  per worker so one slow shard cannot idle the rest of the pool; the
  resulting skew is measured and reported per worker.
* **Graceful degradation.**  ``jobs=1`` (or trivially small inputs)
  bypasses the pool entirely and runs the serial code in-process.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from ..core.base import SearchStats
from ..core.pkwise import PKWiseSearcher, default_scheme
from ..corpus import Document, DocumentCollection
from ..errors import ConfigurationError
from ..eval.harness import (
    AggregateRun,
    WorkerReport,
    canonical_pair_order,
    serial_run,
)
from ..index.interval_index import IntervalIndex
from ..obs import MetricsRegistry, get_tracer
from ..ordering import GlobalOrder
from ..params import SearchParams
from ..partition.scheme import PartitionScheme
from . import worker

#: Target number of chunks dispatched per pool worker.  More chunks
#: smooth out skew between uneven shards; fewer chunks amortize task
#: pickling better.  4 is the usual sweet spot for workloads of tens to
#: thousands of items.
CHUNKS_PER_WORKER = 4


def split_blocks(total: int, parts: int) -> list[tuple[int, int]]:
    """Cut ``range(total)`` into at most ``parts`` contiguous blocks.

    Blocks differ in size by at most one and are returned in order, so
    concatenating per-block results preserves item order.
    """
    parts = max(1, min(parts, total))
    base, remainder = divmod(total, parts)
    blocks = []
    lo = 0
    for part in range(parts):
        hi = lo + base + (1 if part < remainder else 0)
        blocks.append((lo, hi))
        lo = hi
    return blocks


class ParallelExecutor:
    """Process-pool execution of workloads, builds, and self-joins.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means one per CPU.  ``1`` disables
        the pool (serial pass-through).
    start_method:
        ``"fork"`` (POSIX; workers inherit state through copy-on-write)
        or ``"spawn"`` (portable; state travels through a persisted
        index file or pickle).  ``None`` picks ``fork`` when available.
    chunk_size:
        Items per dispatched chunk; ``None`` derives it from the
        workload size and ``CHUNKS_PER_WORKER``.
    """

    def __init__(
        self,
        jobs: int | None = None,
        start_method: str | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        elif start_method not in available:
            raise ConfigurationError(
                f"start method {start_method!r} not available here "
                f"(have: {', '.join(available)})"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.start_method = start_method
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def _pool(self, state, processes: int, persist: bool = False):
        """A pool whose workers all see ``state`` as ``worker._STATE``.

        ``persist`` routes a :class:`PKWiseSearcher` state through a
        temporary :mod:`repro.persistence` file under ``spawn`` (the
        searcher is by far the largest payload, and the versioned file
        format already knows how to carry it); other payloads are
        pickled straight into the pool initializer.
        """
        context = multiprocessing.get_context(self.start_method)
        temp_dir: tempfile.TemporaryDirectory | None = None
        if self.start_method == "fork":
            worker.set_forked_state(state)
            pool = context.Pool(processes)
        elif persist and isinstance(state, PKWiseSearcher):
            from ..persistence import save_searcher

            temp_dir = tempfile.TemporaryDirectory(prefix="repro-parallel-")
            index_path = Path(temp_dir.name) / "searcher.idx"
            save_searcher(state, index_path)
            pool = context.Pool(
                processes,
                initializer=worker.init_searcher_file,
                initargs=(str(index_path),),
            )
        else:
            pool = context.Pool(
                processes, initializer=worker.init_state, initargs=(state,)
            )
        try:
            yield pool
        finally:
            pool.close()
            pool.join()
            if self.start_method == "fork":
                worker.clear_forked_state()
            if temp_dir is not None:
                temp_dir.cleanup()

    def _chunk(self, items: list) -> list[list]:
        """Cut ``items`` into dispatch chunks (order-preserving)."""
        if not items:
            return []
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, math.ceil(len(items) / (self.jobs * CHUNKS_PER_WORKER)))
        return [items[lo : lo + size] for lo in range(0, len(items), size)]

    @staticmethod
    def _reports_by_pid(raw_chunks) -> list[WorkerReport]:
        """Fold ``(chunk_index, pid, elapsed, ...)`` rows into reports."""
        by_pid: dict[int, WorkerReport] = {}
        for row in raw_chunks:
            pid, elapsed = row[1], row[2]
            report = by_pid.setdefault(pid, WorkerReport(worker_id=0))
            report.chunks += 1
            report.seconds += elapsed
        reports = [by_pid[pid] for pid in sorted(by_pid)]
        for worker_id, report in enumerate(reports):
            report.worker_id = worker_id
        return reports

    # ------------------------------------------------------------------
    # (a) Query-workload sharding
    # ------------------------------------------------------------------
    def run_workload(
        self, searcher, queries: list[Document], name: str | None = None
    ) -> AggregateRun:
        """Shard ``queries`` over the pool; merge into an AggregateRun.

        The merged run is identical to :func:`~repro.eval.serial_run`
        on the same inputs — per-query pair lists in canonical order,
        ``results_by_query`` keyed and inserted in workload order —
        plus per-worker skew reports.  Timing fields reflect the
        parallel wall clock, never the serial one.
        """
        if self.jobs == 1 or len(queries) <= 1:
            return serial_run(searcher, queries, name=name)
        chunks = self._chunk(list(enumerate(queries)))
        tasks = list(enumerate(chunks))
        processes = min(self.jobs, len(tasks))
        started = time.perf_counter()
        with get_tracer().span(
            "parallel.run_workload", queries=len(queries), jobs=processes,
            chunks=len(tasks),
        ):
            with self._pool(searcher, processes, persist=True) as pool:
                raw = pool.map(worker.search_chunk, tasks)
        total_seconds = time.perf_counter() - started

        # Chunks ship registry snapshots (the repro.obs wire format);
        # merging them in sorted chunk order is deterministic, so the
        # merged counters match the serial run field for field.
        raw.sort(key=lambda row: row[0])
        total_registry = MetricsRegistry()
        rows = []
        by_pid: dict[int, tuple[list, MetricsRegistry]] = {}
        for _chunk_index, pid, _elapsed, chunk_snapshot, chunk_rows in raw:
            total_registry.merge_snapshot(chunk_snapshot)
            rows.extend(chunk_rows)
            counter, pid_registry = by_pid.setdefault(
                pid, ([0], MetricsRegistry())
            )
            counter[0] += len(chunk_rows)
            pid_registry.merge_snapshot(chunk_snapshot)
        total_stats = SearchStats.from_registry(total_registry)
        reports = self._reports_by_pid(raw)
        for worker_id, pid in enumerate(sorted(by_pid)):
            reports[worker_id].num_queries = by_pid[pid][0][0]
            reports[worker_id].stats = SearchStats.from_registry(by_pid[pid][1])

        rows.sort(key=lambda row: row[0])
        results_by_query: dict[int, list] = {}
        for position, doc_id, pairs in rows:
            query_id = doc_id if doc_id >= 0 else position
            results_by_query[query_id] = canonical_pair_order(pairs)

        return AggregateRun(
            name=name if name is not None else getattr(searcher, "name", "searcher"),
            num_queries=len(queries),
            total_seconds=total_seconds,
            stats=total_stats,
            results_by_query=results_by_query,
            jobs=processes,
            worker_reports=reports,
        )

    # ------------------------------------------------------------------
    # (b) Parallel index construction
    # ------------------------------------------------------------------
    def build_searcher(
        self,
        data: DocumentCollection,
        params: SearchParams,
        scheme: PartitionScheme | None = None,
        order: GlobalOrder | None = None,
        hashed: bool = False,
    ) -> PKWiseSearcher:
        """Build a :class:`PKWiseSearcher` by document partition.

        Two pool phases: (1) per-block window-frequency vectors, summed
        elementwise into the exact global vector the serial
        :class:`GlobalOrder` would compute; (2) per-block partial
        interval indexes, merged in block order so every postings list
        matches the serial build byte for byte.
        """
        started = time.perf_counter()
        if self.jobs == 1 or len(data) <= 1:
            return PKWiseSearcher(
                data, params, scheme=scheme, order=order, hashed=hashed
            )
        tracer = get_tracer()
        if order is None:
            blocks = split_blocks(len(data), self.jobs * CHUNKS_PER_WORKER)
            tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(blocks)]
            with tracer.span("parallel.frequency_pass", chunks=len(tasks)):
                with self._pool(
                    (data, params.w), min(self.jobs, len(tasks))
                ) as pool:
                    raw = pool.map(worker.frequency_chunk, tasks)
            frequencies = [0] * len(data.vocabulary)
            for _chunk_index, _pid, _elapsed, partial in raw:
                for token_id, count in enumerate(partial):
                    frequencies[token_id] += count
            order = GlobalOrder.from_frequencies(
                data.vocabulary, params.w, frequencies, data.total_windows(params.w)
            )
        if scheme is None:
            scheme = default_scheme(params, order)

        blocks = split_blocks(len(data), self.jobs * CHUNKS_PER_WORKER)
        tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(blocks)]
        state = (data, params, scheme, order, hashed)
        with tracer.span(
            "parallel.build_searcher",
            documents=len(data),
            jobs=min(self.jobs, len(tasks)),
            chunks=len(tasks),
        ) as build_span:
            with self._pool(state, min(self.jobs, len(tasks))) as pool:
                raw = pool.map(worker.index_chunk, tasks)
            raw.sort(key=lambda row: row[0])
            index = IntervalIndex(params.w, params.tau, scheme, hashed=hashed)
            rank_docs: list[list[int]] = []
            for _chunk_index, _pid, _elapsed, partial_index, partial_ranks in raw:
                index.merge(partial_index)
                rank_docs.extend(partial_ranks)
            build_span.annotate(
                windows=index.num_windows, postings=index.num_postings
            )
        searcher = PKWiseSearcher.from_prebuilt(
            params,
            order,
            scheme,
            index,
            rank_docs,
            build_seconds=time.perf_counter() - started,
        )
        searcher.build_worker_reports = self._reports_by_pid(raw)
        return searcher

    # ------------------------------------------------------------------
    # (c) Parallel self-join
    # ------------------------------------------------------------------
    def self_join(
        self,
        data: DocumentCollection,
        params: SearchParams,
        scheme: PartitionScheme | None = None,
        order: GlobalOrder | None = None,
        exclude_same_document_within: int | None = None,
        searcher: PKWiseSearcher | None = None,
    ) -> list:
        """All-pairs self-join sharded by document-pair blocks.

        Each block is one slice of probe documents joined against the
        whole collection; the canonical-orientation filter already
        deduplicates across blocks, and the final sort makes the output
        identical to the serial join.  Pass a prebuilt ``searcher`` to
        skip (re)building the index.
        """
        from ..core.selfjoin import document_join_pairs

        if searcher is None:
            searcher = self.build_searcher(data, params, scheme=scheme, order=order)
        documents = list(data)
        if self.jobs == 1 or len(documents) <= 1:
            results = []
            for document in documents:
                results.extend(
                    document_join_pairs(
                        searcher, document, exclude_same_document_within
                    )
                )
            results.sort()
            return results
        chunks = self._chunk(documents)
        tasks = [
            (chunk_index, chunk, exclude_same_document_within)
            for chunk_index, chunk in enumerate(chunks)
        ]
        processes = min(self.jobs, len(tasks))
        with get_tracer().span(
            "parallel.self_join", documents=len(documents), jobs=processes,
            chunks=len(tasks),
        ) as join_span:
            with self._pool(searcher, processes, persist=True) as pool:
                raw = pool.map(worker.selfjoin_chunk, tasks)
            results = []
            for _chunk_index, _pid, _elapsed, pairs in raw:
                results.extend(pairs)
            results.sort()
            join_span.annotate(pairs=len(results))
        return results
