"""Chunk-granularity run checkpoints for the parallel executor.

Long workload runs and all-pairs self-joins are the operations most
exposed to worker crashes, OOM kills, and operator Ctrl-C — and the
most expensive to restart from zero.  :class:`RunCheckpoint` makes them
resumable: every completed unit of work (one dispatched chunk) is
appended as a record and periodically flushed to disk through the same
atomic, checksummed envelope the index files use
(:func:`repro.persistence.write_envelope`), so a checkpoint interrupted
mid-write is never half-readable — it is either the previous complete
state or the new one.

A checkpoint is bound to its run by a **fingerprint** — a BLAKE2b hash
of the search parameters and every input item — recorded in the
envelope header.  Resuming against different inputs (edited corpus,
changed parameters, reordered queries) fails with a typed
:class:`~repro.persistence.PersistenceError` instead of silently
merging incompatible partial results.

Record shapes (plain dicts, pickled inside the envelope):

``{"type": "unit", "keys": [...], "pid": int, "elapsed": float, ...}``
    One completed chunk.  ``keys`` identifies the finished items
    (query positions for workloads, document ids for self-joins);
    operation-specific payload fields ride alongside (``rows`` +
    ``snapshot`` for workloads, ``pairs`` for self-joins).
``{"type": "failure", "failure": {...}}``
    One quarantined query (a serialized
    :class:`~repro.eval.harness.QueryFailure`), so a resumed run does
    not re-run known-poison queries.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from ..persistence import PersistenceError, read_envelope, write_envelope

#: Envelope ``kind`` tags (checked on load, so a workload checkpoint
#: can never be resumed as a self-join or vice versa).
WORKLOAD_KIND = "workload-checkpoint"
SELFJOIN_KIND = "selfjoin-checkpoint"

_FINGERPRINT_SIZE = 16


def _hash_document(hasher, position: int, document) -> None:
    """Mix one document's identity and content into ``hasher``."""
    hasher.update(
        f"{position}:{document.doc_id}:{document.name}:{len(document)}".encode()
    )
    token_digest = hashlib.blake2b(digest_size=8)
    token_digest.update(repr(document.tokens).encode())
    hasher.update(token_digest.digest())


def workload_fingerprint(searcher, queries) -> str:
    """Identity of a ``run_workload`` invocation (params + every query)."""
    hasher = hashlib.blake2b(digest_size=_FINGERPRINT_SIZE)
    hasher.update(b"workload:")
    hasher.update(repr(getattr(searcher, "params", None)).encode())
    hasher.update(str(len(queries)).encode())
    for position, query in enumerate(queries):
        _hash_document(hasher, position, query)
    return hasher.hexdigest()


def selfjoin_fingerprint(data, params, exclude) -> str:
    """Identity of a ``self_join`` invocation (params + every document)."""
    hasher = hashlib.blake2b(digest_size=_FINGERPRINT_SIZE)
    hasher.update(b"selfjoin:")
    hasher.update(repr(params).encode())
    hasher.update(f"exclude={exclude}:".encode())
    documents = list(data)
    hasher.update(str(len(documents)).encode())
    for position, document in enumerate(documents):
        _hash_document(hasher, position, document)
    return hasher.hexdigest()


class RunCheckpoint:
    """Append-only record store for one resumable parallel run.

    Records accumulate in memory through :meth:`record` /
    :meth:`record_failure` and hit disk on :meth:`flush` (atomic
    replace of the whole file — chunk records are small relative to
    the work they represent, so rewriting is cheap and keeps the format
    trivially consistent).  ``saves`` counts flushes for the run's
    :class:`~repro.eval.harness.RecoveryReport`.
    """

    def __init__(self, path: str | Path, kind: str, fingerprint: str) -> None:
        self.path = Path(path)
        self.kind = kind
        self.fingerprint = fingerprint
        self.records: list[dict] = []
        self.saves = 0
        self._dirty = 0

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path, kind: str, fingerprint: str) -> "RunCheckpoint":
        """Load an existing checkpoint, validating kind and fingerprint."""
        header, sections = read_envelope(path, kind)
        recorded = header.get("fingerprint")
        if recorded != fingerprint:
            raise PersistenceError(
                f"checkpoint {path} was written for a different run "
                f"(fingerprint {recorded} != {fingerprint}); the inputs or "
                f"parameters changed — delete the checkpoint to start over"
            )
        checkpoint = cls(path, kind, fingerprint)
        records = sections.get("records")
        if not isinstance(records, list):
            raise PersistenceError(f"checkpoint {path} has no record list")
        checkpoint.records = records
        return checkpoint

    @classmethod
    def open(
        cls, path: str | Path, kind: str, fingerprint: str, *, resume: bool
    ) -> "RunCheckpoint":
        """Resume ``path`` when asked and present; otherwise start fresh.

        With ``resume=True`` a missing file is not an error (first run
        of a to-be-resumed job); an existing file must match the
        fingerprint.  With ``resume=False`` any existing checkpoint is
        ignored and will be overwritten on the first flush.
        """
        path = Path(path)
        if resume and path.exists():
            return cls.load(path, kind, fingerprint)
        return cls(path, kind, fingerprint)

    # ------------------------------------------------------------------
    def done_keys(self) -> set:
        """Item keys covered by completed-unit records."""
        keys: set = set()
        for record in self.records:
            if record.get("type") == "unit":
                keys.update(record.get("keys", ()))
        return keys

    def unit_records(self) -> list[dict]:
        return [r for r in self.records if r.get("type") == "unit"]

    def failure_records(self) -> list[dict]:
        return [r for r in self.records if r.get("type") == "failure"]

    def record(self, keys, **payload) -> None:
        """Append one completed-unit record (call :meth:`flush` to persist)."""
        self.records.append({"type": "unit", "keys": list(keys), **payload})
        self._dirty += 1

    def record_failure(self, failure: dict) -> None:
        """Append one quarantined-query record."""
        self.records.append({"type": "failure", "failure": dict(failure)})
        self._dirty += 1

    @property
    def dirty(self) -> int:
        """Records appended since the last flush."""
        return self._dirty

    def flush(self, *, force: bool = False) -> None:
        """Atomically write the full record list (no-op when clean).

        ``force=True`` writes even with nothing new recorded — the
        abort paths use it so the file named by a
        :class:`~repro.errors.WorkerCrashError` always exists, even
        when the crash landed before the first chunk completed.
        """
        if not self._dirty and not (force and not self.path.exists()):
            return
        write_envelope(
            self.path,
            self.kind,
            {"records": self.records},
            header={"fingerprint": self.fingerprint},
        )
        self.saves += 1
        self._dirty = 0

    def remove(self) -> None:
        """Delete the checkpoint file (end of a successful run)."""
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return (
            f"RunCheckpoint({self.path}, kind={self.kind!r}, "
            f"records={len(self.records)}, saves={self.saves})"
        )
