"""Pool-worker entry points for :class:`~repro.parallel.ParallelExecutor`.

Everything here runs inside worker processes.  The shared read-only
state (a searcher, or the pieces of an index build) lives in the module
global ``_STATE``: under the ``fork`` start method the parent sets it
before creating the pool and children inherit it for free; under
``spawn`` a pool initializer repopulates it in each child — from a
:mod:`repro.persistence` file for searchers, from a pickled payload
otherwise.  The initializers also re-install the parent's active
:class:`~repro.faults.FaultPlan`, so injected faults fire identically
under every start method.

Task functions take one picklable tuple and return
``(chunk_index, pid, elapsed_seconds, ...)`` so the parent can reorder
chunks deterministically and attribute busy time to workers.  Each task
function passes through the :mod:`repro.faults` injection points
``parallel.worker.chunk`` (once per chunk), ``parallel.worker.query``
(once per workload query) and ``parallel.worker.document`` (once per
self-join probe document) — all no-ops unless a fault plan is active.
"""

from __future__ import annotations

import os
import time

from .. import faults
from ..core.base import SearchStats
from ..core.selfjoin import document_join_pairs
from ..index.interval_index import IntervalIndex
from ..ordering.global_order import window_frequencies_of_documents

#: Read-only shared state for the current pool generation.
_STATE = None


def set_forked_state(state) -> None:
    """Parent-side: expose ``state`` to children of the next ``fork``."""
    global _STATE
    _STATE = state


def clear_forked_state() -> None:
    """Parent-side: drop the shared reference once the pool is gone."""
    global _STATE
    _STATE = None


def init_state(payload, fault_plan=None) -> None:
    """Pool initializer (spawn fallback): install a pickled payload."""
    global _STATE
    _STATE = payload
    if fault_plan is not None:
        faults.install_plan(fault_plan)


def init_searcher_file(path: str, fault_plan=None, mmap: bool = False) -> None:
    """Pool initializer (spawn fallback): load a persisted searcher.

    With ``mmap=True`` the file is a compact format-v3 snapshot and its
    array columns are memory-mapped instead of copied — every worker of
    the pool maps the same file, so the index pages are shared through
    the OS page cache rather than duplicated per process.

    The fault plan (when given) is installed *after* the searcher loads,
    so persistence faults target real save/load paths, not this
    transport detail.
    """
    from ..persistence import load_searcher

    global _STATE
    _STATE = load_searcher(path, mmap=mmap)
    if fault_plan is not None:
        faults.install_plan(fault_plan)


# ----------------------------------------------------------------------
# Task functions
# ----------------------------------------------------------------------
def search_chunk(task):
    """Run one chunk of queries against the shared searcher.

    ``task`` is ``(chunk_index, [(position, query), ...])`` where
    ``position`` is the query's index in the original workload; results
    come back per query so the parent can restore workload order.

    Stats travel as a :meth:`~repro.core.SearchStats.snapshot` registry
    dict, not a live object: the snapshot is the cross-process wire
    format of :mod:`repro.obs`, and the parent merges the chunks'
    registries deterministically (sorted keys, pure sums for counters),
    so the merged counters equal the serial run's field for field.
    """
    chunk_index, numbered_queries = task
    faults.inject(
        "parallel.worker.chunk", chunk_index=chunk_index, kind="search"
    )
    searcher = _STATE
    stats = SearchStats()
    rows = []
    started = time.perf_counter()
    for position, query in numbered_queries:
        faults.inject(
            "parallel.worker.query", position=position, doc_id=query.doc_id
        )
        result = searcher.search(query)
        stats.merge(result.stats)
        rows.append((position, query.doc_id, result.pairs))
    elapsed = time.perf_counter() - started
    return chunk_index, os.getpid(), elapsed, stats.snapshot(), rows


def frequency_chunk(task):
    """Window-frequency vector over one contiguous document block.

    Shared state: ``(data, w)``.  The vectors of all blocks sum
    elementwise to ``window_frequencies(data, w)``.
    """
    chunk_index, lo, hi = task
    data, w = _STATE
    started = time.perf_counter()
    freq = window_frequencies_of_documents(
        (data[doc_id] for doc_id in range(lo, hi)), len(data.vocabulary), w
    )
    elapsed = time.perf_counter() - started
    return chunk_index, os.getpid(), elapsed, freq


def index_chunk(task):
    """Partial interval index over one contiguous document block.

    Shared state: ``(data, params, scheme, order, hashed)``.  Merging
    the partial indexes in block order reproduces the serial build
    exactly (see :meth:`~repro.index.interval_index.IntervalIndex.merge`).
    """
    chunk_index, lo, hi = task
    data, params, scheme, order, hashed = _STATE
    started = time.perf_counter()
    index = IntervalIndex(params.w, params.tau, scheme, hashed=hashed)
    rank_docs = []
    for doc_id in range(lo, hi):
        ranks = order.rank_document(data[doc_id])
        rank_docs.append(ranks)
        index.index_document(doc_id, ranks)
    elapsed = time.perf_counter() - started
    return chunk_index, os.getpid(), elapsed, index, rank_docs


def selfjoin_chunk(task):
    """Self-join pairs for one block of probe documents.

    ``task`` is ``(chunk_index, documents, exclude_same_document_within)``;
    the shared state is the searcher over the full collection.  Each
    block covers the document-pair rectangle (block x whole collection);
    the canonical-orientation filter inside ``document_join_pairs``
    keeps exactly one copy of every unordered pair across blocks.

    Returns the probed ``doc_ids`` alongside the pairs: a probe document
    may legitimately contribute zero pairs, and the executor's
    checkpoint needs to know it was *covered*, not merely unproductive.
    """
    chunk_index, documents, exclude_same_document_within = task
    faults.inject(
        "parallel.worker.chunk", chunk_index=chunk_index, kind="selfjoin"
    )
    searcher = _STATE
    pairs = []
    doc_ids = []
    started = time.perf_counter()
    for document in documents:
        faults.inject("parallel.worker.document", doc_id=document.doc_id)
        doc_ids.append(document.doc_id)
        pairs.extend(
            document_join_pairs(searcher, document, exclude_same_document_within)
        )
    elapsed = time.perf_counter() - started
    return chunk_index, os.getpid(), elapsed, doc_ids, pairs
