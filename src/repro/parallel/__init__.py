"""Multi-core batch execution (query sharding, build, self-join).

The pkwise pipeline is embarrassingly parallel at two natural grains:
queries within a workload, and data-document partitions within index
construction or a self-join.  :class:`ParallelExecutor` exploits both
with a process pool (pure-Python hot loops gain nothing from threads
under the GIL) while guaranteeing that every parallel code path returns
exactly what the serial path returns, in the same order.

Worker state transport
----------------------
Workers need the read-only searcher (or collection).  On POSIX the pool
uses the ``fork`` start method and workers inherit it through
copy-on-write memory — zero serialization cost.  Where ``fork`` is
unavailable (Windows, macOS default) the executor falls back to
``spawn``: a :class:`~repro.PKWiseSearcher` travels through a temporary
:mod:`repro.persistence` index file, any other payload through pickle.

Fault tolerance
---------------
Workloads and self-joins run under supervised dispatch: failed chunks
retry with capped exponential backoff, repeat offenders are bisected
down to the poison item, dead worker processes trigger bounded pool
restarts, and optional chunk-granularity checkpoints
(:class:`RunCheckpoint`) make interrupted runs resumable.
"""

from .checkpoint import (
    RunCheckpoint,
    selfjoin_fingerprint,
    workload_fingerprint,
)
from .executor import ParallelExecutor, split_blocks

__all__ = [
    "ParallelExecutor",
    "RunCheckpoint",
    "selfjoin_fingerprint",
    "split_blocks",
    "workload_fingerprint",
]
