"""WindowSlider: walk a document's windows maintaining a sorted view.

Used by the interval-sharing index builder and query processor
(Section 4): for each slide from ``W(d, i)`` to ``W(d, i + 1)`` exactly
one token leaves (``d[i]``) and one enters (``d[i + w]``), so the sorted
multiset is maintained incrementally instead of re-sorted per window.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from ..errors import ConfigurationError
from .sorted_multiset import SortedMultiset


class WindowSlider:
    """Iterates the windows of a rank sequence.

    Parameters
    ----------
    ranks:
        The document as a sequence of token ranks (original order).
    w:
        Window size.

    Attributes
    ----------
    multiset:
        The sorted multiset of the *current* window; valid between
        iterations of :meth:`slides`.
    start:
        Start position of the current window.
    """

    def __init__(self, ranks: Sequence[int], w: int) -> None:
        if w < 1:
            raise ConfigurationError(f"window size must be >= 1, got {w}")
        self.ranks = ranks
        self.w = w
        self.start = 0
        self.multiset = SortedMultiset(ranks[:w]) if len(ranks) >= w else SortedMultiset()

    @property
    def num_windows(self) -> int:
        """Number of windows in the sequence (0 if shorter than w)."""
        return max(0, len(self.ranks) - self.w + 1)

    def slides(self) -> Iterator[tuple[int, int | None, int | None]]:
        """Yield ``(start, outgoing, incoming)`` for every window.

        The first yield is ``(0, None, None)`` with the multiset already
        holding ``W(d, 0)``; each subsequent yield reports the rank that
        left and the rank that entered, after the multiset was updated.
        """
        if self.num_windows == 0:
            return
        self.start = 0
        yield (0, None, None)
        ranks = self.ranks
        w = self.w
        multiset = self.multiset
        for start in range(1, self.num_windows):
            outgoing = ranks[start - 1]
            incoming = ranks[start + w - 1]
            if outgoing != incoming:
                multiset.remove(outgoing)
                multiset.add(incoming)
            self.start = start
            yield (start, outgoing, incoming)

    def sorted_window(self) -> list[int]:
        """Sorted ranks of the current window (copy)."""
        return self.multiset.as_list()
