"""Rolling multiset-overlap between a query window and data windows.

Section 4.3: to verify a candidate interval ``d[u, v]`` against a query
window, count token multiplicities of both windows in hash tables once,
then slide the data window across the interval updating the overlap in
O(1) per step (one deletion, one insertion, two lookups).  The same
trick updates the query-side table in two operations when the query
window slides.

``window_overlap`` is the one-shot reference implementation used by
tests and by algorithms that do not roll.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence


def window_overlap(x: Sequence[int], y: Sequence[int]) -> int:
    """Multiset intersection size O(x, y) = sum_t min(mul(t,x), mul(t,y))."""
    counts_x = Counter(x)
    counts_y = Counter(y)
    if len(counts_x) > len(counts_y):
        counts_x, counts_y = counts_y, counts_x
    return sum(
        min(count, counts_y[token]) for token, count in counts_x.items() if token in counts_y
    )


class RollingOverlap:
    """Maintains O(x, y) for a sliding data window x and query window y.

    ``hash_ops`` counts hash-table operations using the paper's
    accounting (Section 4.3: initial fill = w ops; each slide = one
    deletion + one insertion + two lookups = 4 ops on the moving side,
    2 ops when only the query table changes), so the verification cost
    model (Equation 4) can be validated against actual behaviour.
    """

    def __init__(self, data_window: Sequence[int], query_window: Sequence[int]) -> None:
        self._data = Counter(data_window)
        self._query = Counter(query_window)
        self.hash_ops = len(data_window) + len(query_window)
        self._overlap = 0
        small, large = self._data, self._query
        if len(small) > len(large):
            small, large = large, small
        for token, count in small.items():
            other = large.get(token)
            if other:
                self._overlap += min(count, other)

    @property
    def overlap(self) -> int:
        """Current multiset intersection size."""
        return self._overlap

    def slide_data(self, outgoing: int, incoming: int) -> int:
        """Data window drops ``outgoing`` and gains ``incoming``."""
        if outgoing == incoming:
            return self._overlap
        data, query = self._data, self._query
        self.hash_ops += 4
        # Removal of `outgoing` reduces the intersection iff the query
        # still needs at least the data's old multiplicity of it.
        old = data[outgoing]
        if query.get(outgoing, 0) >= old:
            self._overlap -= 1
        if old == 1:
            del data[outgoing]
        else:
            data[outgoing] = old - 1
        new = data.get(incoming, 0) + 1
        data[incoming] = new
        if query.get(incoming, 0) >= new:
            self._overlap += 1
        return self._overlap

    def slide_query(self, outgoing: int, incoming: int) -> int:
        """Query window drops ``outgoing`` and gains ``incoming``."""
        if outgoing == incoming:
            return self._overlap
        data, query = self._data, self._query
        self.hash_ops += 4
        old = query[outgoing]
        if data.get(outgoing, 0) >= old:
            self._overlap -= 1
        if old == 1:
            del query[outgoing]
        else:
            query[outgoing] = old - 1
        new = query.get(incoming, 0) + 1
        query[incoming] = new
        if data.get(incoming, 0) >= new:
            self._overlap += 1
        return self._overlap

    def reset_data(self, data_window: Sequence[int]) -> int:
        """Re-fill the data-side table from scratch (new interval)."""
        self._data = Counter(data_window)
        self.hash_ops += len(data_window)
        self._overlap = self._recount()
        return self._overlap

    def _recount(self) -> int:
        small, large = self._data, self._query
        if len(small) > len(large):
            small, large = large, small
        total = 0
        for token, count in small.items():
            other = large.get(token)
            if other:
                total += min(count, other)
        return total
