"""Sliding-window substrate.

A window is ``w`` consecutive tokens viewed as a multiset.  This package
provides the data structures the paper's Section 4 relies on: a sorted
multiset with logarithmic-ish updates (the paper suggests a binary
search tree; we ship both a bisect-backed sorted list — fastest in
CPython for window-sized collections — and an order-statistic treap with
the same interface), a :class:`WindowSlider` that walks a document
maintaining the sorted view, and a :class:`RollingOverlap` that keeps
the multiset-intersection size of a (data window, query window) pair
up to date in O(1) per slide (Section 4.3).
"""

from .rolling import RollingOverlap, window_overlap
from .slider import WindowSlider
from .sorted_multiset import SortedMultiset
from .treap import TreapMultiset

__all__ = [
    "SortedMultiset",
    "TreapMultiset",
    "WindowSlider",
    "RollingOverlap",
    "window_overlap",
]
