"""Order-statistic treap: the paper's "binary search tree" substrate.

Section 4.1 suggests storing the window's tokens in a binary search
tree so that the outgoing-token deletion and incoming-token insertion
each take O(log w).  This treap provides exactly that, with subtree
sizes maintained so positional access (k-th smallest) is also
O(log w) — needed to read the prefix without materializing the whole
window.

The interface intentionally matches
:class:`~repro.windows.SortedMultiset`; tests drive both through the
same property suite.  Priorities come from a deterministic per-instance
LCG so behaviour is reproducible.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class _Node:
    __slots__ = ("value", "priority", "left", "right", "size", "count")

    def __init__(self, value: int, priority: int) -> None:
        self.value = value
        self.priority = priority
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.size = 1  # total multiplicity in subtree
        self.count = 1  # multiplicity of this value


def _size(node: _Node | None) -> int:
    return node.size if node is not None else 0


def _update(node: _Node) -> None:
    node.size = node.count + _size(node.left) + _size(node.right)


def _rotate_right(node: _Node) -> _Node:
    left = node.left
    assert left is not None
    node.left = left.right
    left.right = node
    _update(node)
    _update(left)
    return left


def _rotate_left(node: _Node) -> _Node:
    right = node.right
    assert right is not None
    node.right = right.left
    right.left = node
    _update(node)
    _update(right)
    return right


class TreapMultiset:
    """Randomized balanced BST holding an integer multiset.

    Duplicate values are collapsed into a single node with a
    multiplicity counter, so tree height depends on the number of
    *distinct* values.
    """

    def __init__(self, items: Iterable[int] = (), seed: int = 0x9E3779B9) -> None:
        self._root: _Node | None = None
        self._state = seed & 0xFFFFFFFFFFFFFFFF or 1
        for item in items:
            self.add(item)

    def _next_priority(self) -> int:
        # xorshift64* — deterministic, cheap, well-mixed priorities.
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return x

    # ------------------------------------------------------------------
    def add(self, value: int) -> None:
        """Insert one occurrence of ``value``."""
        self._root = self._insert(self._root, value)

    def _insert(self, node: _Node | None, value: int) -> _Node:
        if node is None:
            return _Node(value, self._next_priority())
        if value == node.value:
            node.count += 1
            node.size += 1
            return node
        if value < node.value:
            node.left = self._insert(node.left, value)
            if node.left.priority > node.priority:
                node = _rotate_right(node)
            else:
                _update(node)
        else:
            node.right = self._insert(node.right, value)
            if node.right.priority > node.priority:
                node = _rotate_left(node)
            else:
                _update(node)
        return node

    def remove(self, value: int) -> None:
        """Remove one occurrence of ``value``; KeyError if absent."""
        if self.count(value) == 0:
            raise KeyError(value)
        self._root = self._remove(self._root, value)

    def discard(self, value: int) -> bool:
        """Remove one occurrence if present; returns whether removed."""
        if self.count(value) == 0:
            return False
        self._root = self._remove(self._root, value)
        return True

    def _remove(self, node: _Node | None, value: int) -> _Node | None:
        assert node is not None
        if value < node.value:
            node.left = self._remove(node.left, value)
            _update(node)
            return node
        if value > node.value:
            node.right = self._remove(node.right, value)
            _update(node)
            return node
        if node.count > 1:
            node.count -= 1
            node.size -= 1
            return node
        # Remove the node entirely: rotate it down to a leaf.
        if node.left is None:
            return node.right
        if node.right is None:
            return node.left
        if node.left.priority > node.right.priority:
            node = _rotate_right(node)
            node.right = self._remove(node.right, value)
        else:
            node = _rotate_left(node)
            node.left = self._remove(node.left, value)
        _update(node)
        return node

    # ------------------------------------------------------------------
    def count(self, value: int) -> int:
        """Multiplicity of ``value``."""
        node = self._root
        while node is not None:
            if value == node.value:
                return node.count
            node = node.left if value < node.value else node.right
        return 0

    def rank(self, value: int) -> int:
        """Number of elements strictly smaller than ``value``."""
        node = self._root
        smaller = 0
        while node is not None:
            if value <= node.value:
                node = node.left
            else:
                smaller += _size(node.left) + node.count
                node = node.right
        return smaller

    def __contains__(self, value: int) -> bool:
        return self.count(value) > 0

    def __len__(self) -> int:
        return _size(self._root)

    def __getitem__(self, index: int | slice) -> int | list[int]:
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            return [self._kth(i) for i in range(start, stop, step)]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._kth(index)

    def _kth(self, index: int) -> int:
        node = self._root
        while node is not None:
            left = _size(node.left)
            if index < left:
                node = node.left
            elif index < left + node.count:
                return node.value
            else:
                index -= left + node.count
                node = node.right
        raise IndexError(index)

    def prefix(self, length: int) -> list[int]:
        """The first ``length`` (smallest) elements."""
        length = min(length, len(self))
        out: list[int] = []
        self._collect_prefix(self._root, length, out)
        return out

    def _collect_prefix(self, node: _Node | None, length: int, out: list[int]) -> None:
        if node is None or len(out) >= length:
            return
        self._collect_prefix(node.left, length, out)
        remaining = length - len(out)
        if remaining > 0:
            out.extend([node.value] * min(node.count, remaining))
        self._collect_prefix(node.right, length, out)

    def __iter__(self) -> Iterator[int]:
        yield from self._iterate(self._root)

    def _iterate(self, node: _Node | None) -> Iterator[int]:
        if node is None:
            return
        yield from self._iterate(node.left)
        for _ in range(node.count):
            yield node.value
        yield from self._iterate(node.right)

    def as_list(self) -> list[int]:
        """A copy of the contents in ascending order."""
        return list(self)

    def __repr__(self) -> str:
        return f"TreapMultiset(len={len(self)})"
