"""A sorted multiset of integers backed by a plain list + bisect.

For window-sized collections (w <= a few hundred) the memmove cost of
list insertion is far cheaper in CPython than pointer-chasing through a
balanced tree, so this is the default window representation.  The
interface is shared with :class:`~repro.windows.TreapMultiset`, which
offers true O(log n) updates for very large windows.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections.abc import Iterable, Iterator


class SortedMultiset:
    """Sorted multiset with positional access.

    Supports duplicates.  ``add`` and ``remove`` are O(n) worst-case
    (list shifting) but with a tiny constant; ``count``, ``__contains__``
    and rank queries are O(log n); iteration yields ascending order.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._items: list[int] = sorted(items)

    def add(self, value: int) -> None:
        """Insert one occurrence of ``value``."""
        insort(self._items, value)

    def remove(self, value: int) -> None:
        """Remove one occurrence of ``value``; KeyError if absent."""
        index = bisect_left(self._items, value)
        if index >= len(self._items) or self._items[index] != value:
            raise KeyError(value)
        del self._items[index]

    def discard(self, value: int) -> bool:
        """Remove one occurrence if present; returns whether removed."""
        index = bisect_left(self._items, value)
        if index < len(self._items) and self._items[index] == value:
            del self._items[index]
            return True
        return False

    def count(self, value: int) -> int:
        """Multiplicity of ``value``."""
        return bisect_right(self._items, value) - bisect_left(self._items, value)

    def index_of_first(self, value: int) -> int:
        """Index of the first occurrence of ``value``; KeyError if absent."""
        index = bisect_left(self._items, value)
        if index >= len(self._items) or self._items[index] != value:
            raise KeyError(value)
        return index

    def rank(self, value: int) -> int:
        """Number of elements strictly smaller than ``value``."""
        return bisect_left(self._items, value)

    def __contains__(self, value: int) -> bool:
        index = bisect_left(self._items, value)
        return index < len(self._items) and self._items[index] == value

    def __getitem__(self, index: int | slice) -> int | list[int]:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def as_list(self) -> list[int]:
        """A copy of the contents in ascending order."""
        return list(self._items)

    @property
    def raw(self) -> list[int]:
        """The internal sorted list — read-only by convention.

        Exposed so hot loops (prefix computation per slide) can scan
        without copying; callers must not mutate it.
        """
        return self._items

    def prefix(self, length: int) -> list[int]:
        """The first ``length`` (smallest) elements."""
        return self._items[:length]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SortedMultiset):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        preview = ", ".join(map(str, self._items[:8]))
        suffix = ", ..." if len(self._items) > 8 else ""
        return f"SortedMultiset([{preview}{suffix}], len={len(self)})"
