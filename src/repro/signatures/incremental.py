"""Incremental prefix-length maintenance: the core of Algorithm 5.

The paper's prefix maintenance algorithm (Section 4.1, Appendix A)
avoids recomputing the prefix per window: it stores the window in a
binary search tree, applies the outgoing/incoming token in O(log w),
and *repairs* the prefix length — whose coverage can only land on
``tau``, ``tau + 1`` or ``tau + 2`` after a slide — by extending or
shrinking at the boundary, including the Corollary 2 rule that a
minimal prefix never ends in non-covering tokens.

:class:`IncrementalPrefixLength` implements exactly that repair loop
over a :class:`~repro.windows.SortedMultiset` (the bisect-backed
"tree"), maintaining per-group token counts and total coverage.  Its
``length`` is provably the minimal prefix length after every slide:
coverage is non-decreasing and 0/1-increment in the prefix length, so
"coverage == tau + 1 and the last token is covering" pins the unique
minimum that :func:`~repro.signatures.prefix_length` computes from
scratch — asserted by property tests over random documents and schemes.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..partition.scheme import PartitionScheme
from ..windows.sorted_multiset import SortedMultiset


class IncrementalPrefixLength:
    """Maintains a window's prefix length across slides in O(log w).

    Owns the window's sorted multiset.  Use :meth:`slide` for each
    window transition; read :attr:`length` and :attr:`multiset` between
    slides.
    """

    def __init__(
        self,
        window_ranks: Sequence[int],
        tau: int,
        scheme: PartitionScheme,
    ) -> None:
        self.tau = tau
        self.scheme = scheme
        self._table = scheme.key_table()
        self._m = scheme.m
        self.multiset = SortedMultiset(window_ranks)
        self._counts: dict[int, int] = {}  # group key -> tokens in prefix
        self._coverage = 0
        self.length = 0
        self._extend()

    # ------------------------------------------------------------------
    def _key(self, rank: int) -> int:
        return self._table[rank] if rank >= 0 else self._m

    def _gain_of_add(self, key: int) -> int:
        """Coverage delta of adding one token to group ``key``."""
        return 1 if self._counts.get(key, 0) + 1 >= key // self._m else 0

    def _loss_of_remove(self, key: int) -> int:
        """Coverage delta of removing one token from group ``key``."""
        return 1 if self._counts.get(key, 0) >= key // self._m else 0

    def _add_boundary(self, rank: int) -> None:
        key = self._key(rank)
        self._coverage += self._gain_of_add(key)
        self._counts[key] = self._counts.get(key, 0) + 1
        self.length += 1

    def _remove_boundary(self, rank: int) -> None:
        key = self._key(rank)
        self._coverage -= self._loss_of_remove(key)
        count = self._counts[key] - 1
        if count:
            self._counts[key] = count
        else:
            del self._counts[key]
        self.length -= 1

    def _extend(self) -> None:
        """Grow the prefix until coverage reaches tau + 1 (or window end)."""
        target = self.tau + 1
        items = self.multiset.raw
        while self._coverage < target and self.length < len(items):
            self._add_boundary(items[self.length])

    def _shrink(self) -> None:
        """Trim the tail: excess coverage and non-covering tail tokens.

        The Corollary 2 rule: a minimal prefix cannot end in tokens
        whose group contributes zero coverage; popping those is free,
        and popping a covering token is allowed only while coverage
        exceeds tau + 1.
        """
        target = self.tau + 1
        items = self.multiset.raw
        while self.length > 0:
            if self._coverage < target:
                # Target unreachable: the whole window is the prefix
                # (Algorithm 1's fall-through) — never trim below it.
                break
            key = self._key(items[self.length - 1])
            covering = self._counts.get(key, 0) >= key // self._m
            if covering and self._coverage == target:
                break
            # Either excess coverage (pop reduces it by 0 or 1) or a
            # non-covering tail token, which a minimal prefix never
            # ends with (Corollary 2); both pop.
            self._remove_boundary(items[self.length - 1])

    # ------------------------------------------------------------------
    def slide(self, outgoing: int, incoming: int) -> int:
        """Apply one window slide; returns the new prefix length."""
        if outgoing == incoming:
            return self.length
        # Remove the outgoing token; it was in the prefix iff its first
        # occurrence sits before the boundary.
        position = self.multiset.index_of_first(outgoing)
        if position < self.length:
            key = self._key(outgoing)
            self._coverage -= self._loss_of_remove(key)
            count = self._counts[key] - 1
            if count:
                self._counts[key] = count
            else:
                del self._counts[key]
            self.length -= 1
        self.multiset.remove(outgoing)

        # Insert the incoming token; it joins the prefix iff it lands
        # strictly before the current last prefix token (insort_right
        # places equals after, matching the paper's strict "t2 < x[l']").
        insert_at = self.multiset.rank(incoming) + self.multiset.count(incoming)
        self.multiset.add(incoming)
        if insert_at < self.length:
            key = self._key(incoming)
            self._coverage += self._gain_of_add(key)
            self._counts[key] = self._counts.get(key, 0) + 1
            self.length += 1

        # Repair: coverage is now tau, tau + 1 or tau + 2 (or anything
        # below if the window cannot reach the target at all).
        self._extend()
        self._shrink()
        return self.length

    # ------------------------------------------------------------------
    @property
    def coverage(self) -> int:
        """Current prefix coverage (tau + 1 unless the window is short)."""
        return self._coverage

    def prefix(self) -> list[int]:
        """The current prefix tokens (copy)."""
        return self.multiset.raw[: self.length]
