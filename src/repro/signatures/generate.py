"""k-wise signature generation (Algorithm 3).

A signature is a combination of ``i`` tokens from one class-``i`` group
of a window's prefix, represented as a tuple of token ranks in ascending
order.  Duplicate signatures are deliberately kept (footnote 2 of the
paper): the interval-sharing maintenance relies on multiset semantics.

Signatures from different groups can never be equal: groups partition
the rank space, so tuples drawn from different groups differ in content
(and 1-wise vs 2-wise tuples differ in length), which is what makes the
per-group coverage of Lemma 4 additive.
"""

from __future__ import annotations

import sys
from collections.abc import Sequence
from itertools import combinations

import numpy as np

from ..partition.scheme import PartitionScheme
from .prefix import prefix_length

#: A signature is an ascending tuple of token ranks.
Signature = tuple[int, ...]


def signatures_from_prefix(
    prefix_ranks: Sequence[int], scheme: PartitionScheme
) -> list[Signature]:
    """All i-wise signatures of an (already sorted) prefix.

    Tokens are grouped by (class, sub-partition); each group of class
    ``i`` with ``n >= i`` tokens yields ``C(n, i)`` combinations,
    enumerated positionally so duplicate tokens yield duplicate
    signatures (multiset semantics).  Groups with fewer than ``i``
    tokens yield nothing (their coverage is zero).

    Since the prefix is sorted by rank and groups are contiguous rank
    ranges, grouping is a single linear scan.
    """
    out: list[Signature] = []
    table = scheme.key_table()
    m = scheme.m
    start = 0
    length = len(prefix_ranks)
    while start < length:
        rank = prefix_ranks[start]
        key = table[rank] if rank >= 0 else m
        end = start + 1
        while end < length:
            rank = prefix_ranks[end]
            if (table[rank] if rank >= 0 else m) != key:
                break
            end += 1
        class_index = key // m
        group = prefix_ranks[start:end]
        if class_index == 1:
            out.extend((rank,) for rank in group)
        elif len(group) >= class_index:
            out.extend(combinations(group, class_index))
        start = end
    return out


def generate_signatures(
    sorted_ranks: Sequence[int], tau: int, scheme: PartitionScheme
) -> list[Signature]:
    """Algorithm 3: prefix length then per-group combinations."""
    length = prefix_length(sorted_ranks, tau, scheme)
    return signatures_from_prefix(sorted_ranks[:length], scheme)


def signature_hash(signature: Signature) -> int:
    """Stable 64-bit hash of a signature (FNV-1a over the ranks).

    The paper hashes signatures to 4-byte integers for index
    compactness; we use 64 bits to make collisions negligible while
    keeping the same memory-shape argument.  Exposed for the index's
    hashed mode; the default index keys on tuples (collision-free).
    """
    value = 0xCBF29CE484222325
    for rank in signature:
        # Mix each rank as 8 little-endian bytes.
        for _ in range(8):
            value ^= rank & 0xFF
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            rank >>= 8
    return value


_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)
_BYTE_MASK = np.uint64(0xFF)
_BYTE_SHIFT = np.uint64(8)
_LITTLE_ENDIAN = sys.byteorder == "little"


def signature_hashes(signatures: Sequence[Signature]) -> np.ndarray:
    """Vectorized :func:`signature_hash` over a batch of signatures.

    Returns a ``uint64`` array with ``out[i] == signature_hash(
    signatures[i])`` bit for bit (asserted by tests).  Signatures are
    grouped by length so each group hashes as one ``(n, length)`` rank
    matrix: the FNV-1a byte rounds run as numpy column operations over
    all ``n`` signatures at once — the little-endian byte view of the
    ``uint64`` rank column replaces the scalar shift-and-mask loop, and
    unsigned multiplication wraps modulo 2**64 exactly like the masked
    Python multiply.  This is what makes batched probing cheap: the
    scalar hash is the dominant cost of a compact-index probe.
    """
    n = len(signatures)
    out = np.empty(n, dtype=np.uint64)
    if n == 0:
        return out
    by_length: dict[int, list[int]] = {}
    for i, signature in enumerate(signatures):
        by_length.setdefault(len(signature), []).append(i)
    for length, positions in by_length.items():
        rows = (
            [signatures[i] for i in positions]
            if len(positions) < n
            else signatures
        )
        # int64 round trip keeps negative ranks (the OOV sentinel)
        # congruent with the scalar hash's two's-complement bytes.
        ranks = np.asarray(rows, dtype=np.int64).astype(np.uint64)
        if length:
            ranks = ranks.reshape(len(positions), length)
        else:
            ranks = ranks.reshape(len(positions), 0)
        values = np.full(len(positions), _FNV_OFFSET, dtype=np.uint64)
        for column in range(length):
            if _LITTLE_ENDIAN:
                rank_bytes = ranks[:, column : column + 1].view(np.uint8)
                for byte_index in range(8):
                    values ^= rank_bytes[:, byte_index]
                    values *= _FNV_PRIME
            else:  # pragma: no cover - big-endian fallback
                remaining = ranks[:, column].copy()
                for _ in range(8):
                    values ^= remaining & _BYTE_MASK
                    values *= _FNV_PRIME
                    remaining >>= _BYTE_SHIFT
        if len(positions) < n:
            out[positions] = values
        else:
            out = values
    return out
