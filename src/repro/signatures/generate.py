"""k-wise signature generation (Algorithm 3).

A signature is a combination of ``i`` tokens from one class-``i`` group
of a window's prefix, represented as a tuple of token ranks in ascending
order.  Duplicate signatures are deliberately kept (footnote 2 of the
paper): the interval-sharing maintenance relies on multiset semantics.

Signatures from different groups can never be equal: groups partition
the rank space, so tuples drawn from different groups differ in content
(and 1-wise vs 2-wise tuples differ in length), which is what makes the
per-group coverage of Lemma 4 additive.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

from ..partition.scheme import PartitionScheme
from .prefix import prefix_length

#: A signature is an ascending tuple of token ranks.
Signature = tuple[int, ...]


def signatures_from_prefix(
    prefix_ranks: Sequence[int], scheme: PartitionScheme
) -> list[Signature]:
    """All i-wise signatures of an (already sorted) prefix.

    Tokens are grouped by (class, sub-partition); each group of class
    ``i`` with ``n >= i`` tokens yields ``C(n, i)`` combinations,
    enumerated positionally so duplicate tokens yield duplicate
    signatures (multiset semantics).  Groups with fewer than ``i``
    tokens yield nothing (their coverage is zero).

    Since the prefix is sorted by rank and groups are contiguous rank
    ranges, grouping is a single linear scan.
    """
    out: list[Signature] = []
    table = scheme.key_table()
    m = scheme.m
    start = 0
    length = len(prefix_ranks)
    while start < length:
        rank = prefix_ranks[start]
        key = table[rank] if rank >= 0 else m
        end = start + 1
        while end < length:
            rank = prefix_ranks[end]
            if (table[rank] if rank >= 0 else m) != key:
                break
            end += 1
        class_index = key // m
        group = prefix_ranks[start:end]
        if class_index == 1:
            out.extend((rank,) for rank in group)
        elif len(group) >= class_index:
            out.extend(combinations(group, class_index))
        start = end
    return out


def generate_signatures(
    sorted_ranks: Sequence[int], tau: int, scheme: PartitionScheme
) -> list[Signature]:
    """Algorithm 3: prefix length then per-group combinations."""
    length = prefix_length(sorted_ranks, tau, scheme)
    return signatures_from_prefix(sorted_ranks[:length], scheme)


def signature_hash(signature: Signature) -> int:
    """Stable 64-bit hash of a signature (FNV-1a over the ranks).

    The paper hashes signatures to 4-byte integers for index
    compactness; we use 64 bits to make collisions negligible while
    keeping the same memory-shape argument.  Exposed for the index's
    hashed mode; the default index keys on tuples (collision-free).
    """
    value = 0xCBF29CE484222325
    for rank in signature:
        # Mix each rank as 8 little-endian bytes.
        for _ in range(8):
            value ^= rank & 0xFF
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            rank >>= 8
    return value
