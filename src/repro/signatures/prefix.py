"""Prefix length computation (Algorithm 1 and its extensions).

A window's *prefix* is its shortest head (in global order) whose
*coverage* — the minimum number of errors needed to affect every
signature generated from it — reaches ``tau + 1``.  Lemma 3 gives the
coverage of ``n_i`` tokens of class ``i`` as ``max(0, n_i - i + 1)``;
Lemma 4 sums coverage over classes (and, per Section 6, over
sub-partitions, since combinations never cross a sub-partition border).

The weighted variant (Appendix C) replaces the error count with an
error *weight* budget: the weighted coverage of a group is the sum of
its ``n_i - i + 1`` smallest token weights, and the prefix stops once
total weighted coverage exceeds ``wt(x) - theta``.
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Callable, Sequence

from ..partition.scheme import PartitionScheme


def prefix_length(
    sorted_ranks: Sequence[int], tau: int, scheme: PartitionScheme
) -> int:
    """Length of the prefix of a window sorted by the global order.

    Iterates tokens in ascending rank, counting per-group sizes; a group
    of class ``i`` starts contributing one unit of coverage per token
    once it holds at least ``i`` tokens.  Returns as soon as total
    coverage reaches ``tau + 1``; if the whole window cannot reach it
    (only possible when the completeness bound is violated), returns the
    window length, making the whole window the prefix.

    Complexity: O(l) for output length l (Corollary 1 bounds l by
    ``tau + 1 + m * k_max * (k_max - 1) / 2``).
    """
    coverage = 0
    target = tau + 1
    counts: dict[int, int] = {}
    table = scheme.key_table()
    m = scheme.m
    for position, rank in enumerate(sorted_ranks):
        key = table[rank] if rank >= 0 else m  # negative ranks: class 1
        n = counts.get(key, 0) + 1
        counts[key] = n
        if n >= key // m:  # class index = key // m
            coverage += 1
            if coverage == target:
                return position + 1
    return len(sorted_ranks)


def coverage_of(
    sorted_ranks: Sequence[int], scheme: PartitionScheme
) -> int:
    """Total coverage of a token multiset (Lemmas 3 and 4).

    Used by tests and by the analysis utilities; the search algorithms
    use the streaming computation in :func:`prefix_length`.
    """
    counts: dict[int, int] = {}
    for rank in sorted_ranks:
        key = scheme.group_key(rank)
        counts[key] = counts.get(key, 0) + 1
    m = scheme.m
    total = 0
    for key, n in counts.items():
        class_index = key // m
        if n >= class_index:
            total += n - class_index + 1
    return total


def weighted_prefix_length(
    sorted_ranks: Sequence[int],
    weight_of: Callable[[int], float],
    budget: float,
    scheme: PartitionScheme,
) -> int:
    """Weighted prefix length (Appendix C).

    ``budget`` is the maximum total error weight a matching pair may
    lose, i.e. ``wt(x) - theta``.  The prefix is the shortest head whose
    weighted coverage strictly exceeds the budget (the paper's
    ``wt(x) - theta + eps`` with infinitesimal eps).

    The weighted coverage of a group of class ``i`` with weights ``W``
    is the sum of the ``|W| - i + 1`` smallest weights (0 if ``|W| < i``):
    an adversary kills all signatures cheapest by removing the lightest
    tokens, and must remove all but ``i - 1`` of them.
    """
    group_weights: dict[int, list[float]] = {}
    group_coverage: dict[int, float] = {}
    total = 0.0
    m = scheme.m
    group_key = scheme.group_key
    for position, rank in enumerate(sorted_ranks):
        key = group_key(rank)
        weights = group_weights.setdefault(key, [])
        insort(weights, weight_of(rank))
        class_index = key // m
        n = len(weights)
        if n >= class_index:
            new_coverage = sum(weights[: n - class_index + 1])
            total += new_coverage - group_coverage.get(key, 0.0)
            group_coverage[key] = new_coverage
        if total > budget:
            return position + 1
    return len(sorted_ranks)
