"""Signature machinery: prefix lengths, k-wise generation, maintenance.

Implements Algorithm 1 (PrefixLength) including the Section 6
sub-partition generalization and the Appendix C weighted variant,
Algorithm 3 (GenSignature), and the incremental per-slide signature
maintenance of Section 4.1 (the library's equivalent of Algorithm 5).
"""

from .generate import (
    Signature,
    generate_signatures,
    signatures_from_prefix,
    signature_hash,
)
from .incremental import IncrementalPrefixLength
from .maintain import SignatureEvent, SignatureStream
from .prefix import coverage_of, prefix_length, weighted_prefix_length

__all__ = [
    "prefix_length",
    "weighted_prefix_length",
    "coverage_of",
    "Signature",
    "generate_signatures",
    "signatures_from_prefix",
    "signature_hash",
    "SignatureStream",
    "SignatureEvent",
    "IncrementalPrefixLength",
]
