"""Similarity-threshold conversions for fixed-size windows.

Local similarity search constrains the multiset overlap ``O(x, y)`` of
two windows of identical size ``w``.  Related systems express their
constraints in Jaccard, Dice or cosine similarity; because both windows
have exactly ``w`` tokens, all of these are monotone bijections of the
overlap, so thresholds convert exactly.  The paper uses this when
adapting Faerie ("our overlap constraints are converted into
corresponding equivalent Jaccard constraints", Section 7.1).

For two multisets of size ``w`` with overlap ``O``:

* Jaccard  ``J = O / (2w - O)``           (union counts multiplicities)
* Dice     ``D = 2O / (2w) = O / w``
* Cosine   ``C = O / w``                   (equal-size sets)

All functions validate ranges and round conservatively so that a
converted threshold never admits pairs the original would reject.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError


def _check_w(w: int) -> None:
    if w < 1:
        raise ConfigurationError(f"window size must be >= 1, got {w}")


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1], got {value}")


def _ceil(value: float) -> int:
    """Ceiling with a tolerance for float noise.

    Keeps exact round-trips exact: ``jaccard_to_overlap(w,
    overlap_to_jaccard(w, theta)) == theta`` even when the intermediate
    division is not representable.
    """
    return math.ceil(value - 1e-9)


def jaccard_to_overlap(w: int, jaccard: float) -> int:
    """Smallest overlap theta with ``J(x, y) >= jaccard`` for |x|=|y|=w.

    ``J = O / (2w - O)``  =>  ``O >= 2wJ / (1 + J)``.
    """
    _check_w(w)
    _check_fraction("jaccard", jaccard)
    return min(w, _ceil(2 * w * jaccard / (1 + jaccard)))


def overlap_to_jaccard(w: int, theta: int) -> float:
    """Jaccard similarity implied by overlap ``theta`` at window size w."""
    _check_w(w)
    if not 0 <= theta <= w:
        raise ConfigurationError(f"theta must be in [0, {w}], got {theta}")
    return theta / (2 * w - theta) if theta else 0.0


def dice_to_overlap(w: int, dice: float) -> int:
    """Smallest overlap theta with Dice similarity >= ``dice``."""
    _check_w(w)
    _check_fraction("dice", dice)
    return min(w, _ceil(dice * w))


def overlap_to_dice(w: int, theta: int) -> float:
    """Dice similarity implied by overlap ``theta``."""
    _check_w(w)
    if not 0 <= theta <= w:
        raise ConfigurationError(f"theta must be in [0, {w}], got {theta}")
    return theta / w


def cosine_to_overlap(w: int, cosine: float) -> int:
    """Smallest overlap theta with cosine similarity >= ``cosine``.

    For equal-size multisets cosine equals ``O / w``.
    """
    _check_w(w)
    _check_fraction("cosine", cosine)
    return min(w, _ceil(cosine * w))


def jaccard_to_tau(w: int, jaccard: float) -> int:
    """Largest tau whose results all satisfy ``J >= jaccard``."""
    return w - jaccard_to_overlap(w, jaccard)


def tau_to_jaccard(w: int, tau: int) -> float:
    """Jaccard similarity guaranteed by dissimilarity threshold tau."""
    _check_w(w)
    if not 0 <= tau < w:
        raise ConfigurationError(f"tau must be in [0, {w}), got {tau}")
    return overlap_to_jaccard(w, w - tau)
