#!/usr/bin/env python3
"""Plagiarism detection on a synthetic PAN-style corpus.

Generates a document collection with known injected plagiarism at all
four PAN obfuscation levels, runs pkwise with the paper's recommended
setting (w=25, tau=5 — Appendix D.2), merges the matched windows into
readable *passages*, and scores the output against the exact ground
truth.

Run:  python examples/plagiarism_detection.py [--scale 0.004] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import (
    PKWiseSearcher,
    SearchParams,
    make_profile_collection,
    merge_passages,
)
from repro.corpus.synthetic import ReuseSpec
from repro.eval import evaluate_quality, run_searcher


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("generating corpus with injected plagiarism ...")
    data, queries, truth = make_profile_collection(
        "REUTERS",
        scale=args.scale,
        seed=args.seed,
        reuse=ReuseSpec(segment_length=120),
        num_queries=8,
    )
    print(f"  {len(data)} data documents, {len(queries)} suspicious documents, "
          f"{len(truth)} planted cases")

    params = SearchParams(w=25, tau=5, k_max=4)  # the paper's suggestion
    searcher = PKWiseSearcher(data, params)
    print(f"indexed {searcher.index.num_windows} windows "
          f"({searcher.index.num_postings} interval postings) "
          f"in {searcher.index_build_seconds:.2f}s")

    run = run_searcher(searcher, queries)
    print(f"searched {len(queries)} suspicious documents in "
          f"{run.total_seconds:.2f}s "
          f"({run.avg_query_seconds * 1e3:.1f}ms per document)")

    for query in queries:
        pairs = run.results_by_query.get(query.doc_id, [])
        passages = merge_passages(pairs, params.w)
        if not passages:
            continue
        print(f"\nsuspicious document {query.name}:")
        for passage in passages:
            q_lo, q_hi = passage.query_span
            d_lo, d_hi = passage.data_span
            print(
                f"  tokens [{q_lo}..{q_hi}] match "
                f"{data[passage.doc_id].name} [{d_lo}..{d_hi}] "
                f"({passage.num_pairs} window pairs)"
            )

    report = evaluate_quality(run.results_by_query, truth, params.w)
    print(f"\n{report.as_row('pkwise (w=25, tau=5)')}")
    for level, recall in sorted(
        report.recall_by_level.items(), key=lambda item: item[0].value
    ):
        print(f"  recall[{level.value:<10}] = {recall:.0%}")


if __name__ == "__main__":
    main()
