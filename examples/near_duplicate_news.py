#!/usr/bin/env python3
"""Near-duplicate detection over a *live* news wire.

Simulates the news-agency scenario from the paper's introduction as a
streaming system: wire stories arrive continuously and are indexed
through the LSM write path (memtable + frozen segments), outlet
stories are matched against the index *while it is being written*, a
wire story is retracted mid-stream, and a compaction folds the tiers
without a pause in query service.  At the end the streamed index is
checked pair-for-pair against a one-shot batch build — the streaming
machinery never changes a single result.

Run:  python examples/near_duplicate_news.py
"""

from __future__ import annotations

from repro import (
    DocumentCollection,
    Index,
    PKWiseSearcher,
    SearchParams,
)
from repro.corpus.plagiarism import ObfuscationLevel, PlagiarismInjector
from repro.corpus.synthetic import DatasetProfile, SyntheticCorpusGenerator

SEED_STORIES = 15  # wire stories indexed before the stream starts
RETRACTED = 7      # wire story pulled mid-stream


def build_newswire(seed: int = 11):
    """Wire stories and outlet rewrites, both as token-string lists."""
    profile = DatasetProfile(
        name="WIRE",
        num_documents=40,
        num_queries=6,
        avg_doc_length=300,
        avg_query_length=250,
        vocabulary_size=4_000,
    )
    generator = SyntheticCorpusGenerator(profile, seed=seed)
    data = generator.generate_data()
    injector = PlagiarismInjector(seed=seed + 1, vocabulary_size=len(data.vocabulary))
    outlets = []
    for query_id, tokens in enumerate(generator.generate_queries()):
        # Each outlet story republishes two wire passages with edits.
        for level in (ObfuscationLevel.LOW, ObfuscationLevel.HIGH):
            tokens, _truth = injector.splice_case(
                data, query_id, tokens, segment_length=90, level=level
            )
        outlets.append(data.vocabulary.decode(tokens))
    wire = [data.vocabulary.decode(doc.tokens) for doc in data]
    return wire, outlets


def matches(index_like, data, outlet_tokens):
    query = data.encode_query_tokens(outlet_tokens)
    return {
        (pair.doc_id, pair.data_start, pair.query_start)
        for pair in index_like.search(query).pairs
    }


def main() -> None:
    wire, outlets = build_newswire()
    params = SearchParams(w=30, tau=5, k_max=3)

    # --- t=0: bootstrap from this morning's wire backlog --------------
    data = DocumentCollection()
    for story_id, tokens in enumerate(wire[:SEED_STORIES]):
        data.add_tokens(tokens, name=f"wire-{story_id}")
    index = Index(PKWiseSearcher(data, params), data)
    print(f"seeded index with {SEED_STORIES} wire stories: {index}")

    # --- the day unfolds: stories stream in, outlets query live -------
    for story_id in range(SEED_STORIES, len(wire)):
        document = data.add_tokens(wire[story_id], name=f"wire-{story_id}")
        index.add(document)

        if story_id == 24:
            # An outlet checks a story while the memtable is hot.
            found = matches(index, data, outlets[0])
            store = index.searcher().store
            print(
                f"after {story_id + 1} stories: outlet-0 matches "
                f"{len(found)} passages  "
                f"(memtable={store.memtable_docs} docs, "
                f"segments={store.num_segments})"
            )

        if story_id == 29:
            # Mid-stream: a wire story is retracted, then a compaction
            # folds memtable + tombstone into one frozen segment.
            # Queries keep running throughout — installs swap the view
            # atomically under the facade.
            index.remove(RETRACTED)
            before = matches(index, data, outlets[0])
            index.compact()
            after = matches(index, data, outlets[0])
            assert before == after, "compaction must not change results"
            store = index.searcher().store
            print(
                f"after {story_id + 1} stories: retracted wire-{RETRACTED}, "
                f"compacted to {store.num_segments} segment(s); "
                f"results unchanged across the fold"
            )

    # --- close of day: the streamed index equals a batch rebuild ------
    batch_data = DocumentCollection()
    for story_id, tokens in enumerate(wire):
        batch_data.add_tokens(tokens, name=f"wire-{story_id}")
    batch = Index(PKWiseSearcher(batch_data, params), batch_data)
    batch.remove(RETRACTED)

    print(f"\n{'outlet':<10}{'passages':>9}   sources")
    for outlet_id, outlet_tokens in enumerate(outlets):
        streamed = matches(index, data, outlet_tokens)
        one_shot = matches(batch, batch_data, outlet_tokens)
        assert streamed == one_shot, "streamed and batch results must agree"
        sources = sorted({doc_id for doc_id, *_ in streamed})
        print(f"outlet-{outlet_id:<3}{len(streamed):>9}   {sources}")

    print(
        "\nevery streamed result matches the one-shot batch build: the "
        "LSM write path (memtable, tombstones, compaction) is invisible "
        "to the result set."
    )


if __name__ == "__main__":
    main()
