#!/usr/bin/env python3
"""Near-duplicate passage detection across a news-wire style corpus.

Simulates the classic news-agency scenario from the paper's
introduction: outlets republish parts of wire stories with light edits.
The example compares pkwise against the Adapt and FBW baselines on the
same workload, printing runtimes and result agreement — a miniature of
the paper's Figure 8 / Table 3 story.

Run:  python examples/near_duplicate_news.py
"""

from __future__ import annotations

from repro import (
    DocumentCollection,
    GlobalOrder,
    PKWiseSearcher,
    SearchParams,
)
from repro.baselines import AdaptSearcher, FBWSearcher
from repro.corpus.plagiarism import ObfuscationLevel, PlagiarismInjector
from repro.corpus.synthetic import DatasetProfile, SyntheticCorpusGenerator
from repro.eval import run_searcher


def build_newswire(seed: int = 11):
    """A wire corpus plus outlet rewrites of random wire passages."""
    profile = DatasetProfile(
        name="WIRE",
        num_documents=40,
        num_queries=6,
        avg_doc_length=300,
        avg_query_length=250,
        vocabulary_size=4_000,
    )
    generator = SyntheticCorpusGenerator(profile, seed=seed)
    data = generator.generate_data()
    injector = PlagiarismInjector(seed=seed + 1, vocabulary_size=len(data.vocabulary))
    queries = []
    for query_id, tokens in enumerate(generator.generate_queries()):
        # Each outlet story republishes two wire passages with edits.
        for level in (ObfuscationLevel.LOW, ObfuscationLevel.HIGH):
            tokens, _truth = injector.splice_case(
                data, query_id, tokens, segment_length=90, level=level
            )
        from repro.corpus import Document

        queries.append(Document(query_id, tokens, name=f"outlet-{query_id}"))
    return data, queries


def main() -> None:
    data, queries = build_newswire()
    params = SearchParams(w=30, tau=5, k_max=3)
    order = GlobalOrder(data, params.w)

    print(f"wire corpus: {data}")
    print(f"outlet stories: {len(queries)}  (w={params.w}, tau={params.tau})\n")

    searchers = [
        PKWiseSearcher(data, params, order=order),
        AdaptSearcher(data, params.with_k_max(1), order=order),
        FBWSearcher(data, params.with_k_max(1), order=order),
    ]
    runs = [run_searcher(searcher, queries) for searcher in searchers]

    exact_results = runs[0].num_results
    print(f"{'algorithm':<12}{'avg ms/story':>14}{'results':>9}{'found':>8}")
    for run in runs:
        fraction = run.num_results / exact_results if exact_results else 1.0
        print(
            f"{run.name:<12}{run.avg_query_seconds * 1e3:>14.2f}"
            f"{run.num_results:>9}{fraction:>8.0%}"
        )

    assert runs[0].num_results == runs[1].num_results, "exact methods must agree"
    print(
        "\npkwise and adapt agree exactly; FBW is approximate and may "
        "miss edited passages (word-order laundering breaks its q-gram "
        "fingerprints)."
    )


if __name__ == "__main__":
    main()
