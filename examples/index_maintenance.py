#!/usr/bin/env python3
"""Operating a long-lived index: persistence, adds, removals, analysis.

Simulates the lifecycle of a production deployment: build an index,
save it to disk, reload it in a "fresh process", ingest newly arrived
documents incrementally, tombstone a retracted document, and inspect
the index health statistics.

Run:  python examples/index_maintenance.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    DocumentCollection,
    Index,
    PKWiseSearcher,
    SearchParams,
    save_searcher,
)
from repro.corpus.synthetic import DatasetProfile, SyntheticCorpusGenerator
from repro.eval import postings_statistics, prefix_sharing


def main() -> None:
    profile = DatasetProfile(
        name="OPS",
        num_documents=30,
        num_queries=0,
        avg_doc_length=250,
        avg_query_length=0,
        vocabulary_size=3_000,
    )
    data = SyntheticCorpusGenerator(profile, seed=42).generate_data()
    params = SearchParams(w=25, tau=4, k_max=3)

    # --- day 0: build and persist -------------------------------------
    searcher = PKWiseSearcher(data, params)
    print(f"built: {searcher.index}")
    print(f"  {postings_statistics(searcher.index)}")
    sharing = prefix_sharing(
        list(data)[:5], searcher.order, params.w, params.tau, searcher.scheme
    )
    print(f"  {sharing}")

    with tempfile.TemporaryDirectory() as tmp:
        index_path = Path(tmp) / "corpus.idx"
        save_searcher(searcher, index_path, data=data)
        print(f"saved {index_path.stat().st_size / 1024:.0f} KiB to disk")

        # --- day 1: reload and serve ----------------------------------
        # (Mutations go through the Index facade: the first add lazily
        # upgrades the snapshot to the LSM write path, so this works
        # even when the file was saved compact/frozen.)
        reopened = Index.open(index_path)
        data = reopened.data
        print(f"reloaded: {reopened.searcher().index}")

        # A new document arrives: it quotes document 7.
        quoted = list(data[7].tokens[30:120])
        newcomer = data.add_token_ids(
            list(data[3].tokens[:50]) + quoted, name="newcomer"
        )
        new_id = reopened.add(newcomer)
        print(f"ingested {newcomer.name} as doc {new_id} (live={reopened.live})")

        # Search with the newcomer as the query: finds its source.
        result = reopened.search(newcomer)
        source_docs = {pair.doc_id for pair in result.pairs} - {new_id}
        print(f"  reuse detected from documents: {sorted(source_docs)}")
        assert 7 in source_docs and 3 in source_docs

        # --- day 2: document 7 is retracted ---------------------------
        reopened.remove(7)
        result = reopened.search(newcomer)
        remaining = {pair.doc_id for pair in result.pairs} - {new_id}
        print(f"  after retracting doc 7: {sorted(remaining)}")
        assert 7 not in remaining and 3 in remaining

    print("lifecycle complete: build -> save -> load -> add -> remove")


if __name__ == "__main__":
    main()
