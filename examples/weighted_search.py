#!/usr/bin/env python3
"""Weighted local similarity search (Appendix C of the paper).

Plain local similarity search counts every shared token equally, so two
windows full of stopwords look similar.  The weighted extension assigns
each token a weight — here the classic IDF-style ``log(N / df)`` — and
matches windows whose shared-token *weight* reaches a threshold, making
rare-content overlap count for much more than stopword overlap.

The example shows a pair of windows that unweighted search reports (they
share frequent tokens) but weighted search correctly rejects, and vice
versa.

Run:  python examples/weighted_search.py
"""

from __future__ import annotations

import math

from repro import (
    DocumentCollection,
    PKWiseSearcher,
    SearchParams,
    WeightedPKWiseSearcher,
)


def main() -> None:
    data = DocumentCollection()
    # Six filler sentences establish "the of a and" as stopwords.
    for index in range(6):
        data.add_text(
            f"the story of a meeting and the report of a decision "
            f"in committee {index} and the summary of a plan",
            name=f"minutes-{index}",
        )
    data.add_text(
        "zephyr quantum katana nebula crimson falcon zenith oracle",
        name="codenames",
    )

    # Query 1 shares only stopwords with the minutes; query 2 shares the
    # rare codenames (with one changed).
    query = data.encode_query(
        "the view of a harbor and the sound of a gull "
        "zephyr quantum katana nebula crimson falcon zenith oracle"
    )

    w = 8
    unweighted = PKWiseSearcher(data, SearchParams(w=w, tau=3, k_max=2))
    plain = unweighted.search(query)
    print(f"unweighted (w={w}, tau=3): {len(plain.pairs)} window pairs")
    stopword_hits = sum(1 for p in plain.pairs if p.doc_id < 6)
    print(f"  ... of which {stopword_hits} are stopword-only matches "
          f"against the committee minutes")

    # IDF weights from document frequency.
    df: dict[int, int] = {}
    for document in data:
        for token_id in set(document.tokens):
            df[token_id] = df.get(token_id, 0) + 1
    n_docs = len(data)

    def idf(token_id: int) -> float:
        return math.log((n_docs + 1) / (df.get(token_id, 0) + 1)) + 0.1

    # Require shared weight >= the weight of ~5 rare tokens.
    theta = 5 * idf(data.vocabulary.id_of("zephyr"))
    weighted = WeightedPKWiseSearcher(
        data, w=w, theta_weight=theta, weight_of_token=idf
    )
    pairs, _stats = weighted.search(query)
    print(f"\nweighted (theta = weight of ~5 rare tokens): "
          f"{len(pairs)} window pairs")
    for pair in sorted(pairs):
        document = data[pair.doc_id]
        window_text = " ".join(
            data.vocabulary.decode(document.window(pair.data_start, w))
        )
        print(
            f"  {document.name}[{pair.data_start}] "
            f"weight={pair.intersection_weight:.2f}  {window_text!r}"
        )
    assert all(pair.doc_id == 6 for pair in pairs), (
        "weighted search should only keep the rare-token match"
    )
    print("\nstopword-only matches are gone; the codename reuse remains.")


if __name__ == "__main__":
    main()
