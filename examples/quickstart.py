#!/usr/bin/env python3
"""Quickstart: find partially replicated text between two documents.

Builds a tiny collection, runs pkwise local similarity search, and
prints every matching window pair — including the paper's own running
example (Example 1: "the lord of the rings" vs "the lord and the
kings").

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DocumentCollection, PKWiseSearcher, SearchParams


def main() -> None:
    # 1. Build a collection of data documents.  The collection owns the
    #    tokenizer (whitespace by default) and the shared vocabulary.
    data = DocumentCollection()
    data.add_text("the lord of the rings", name="tolkien")
    data.add_text(
        "in a hole in the ground there lived a hobbit and the hobbit "
        "liked the comfort of his hole in the ground",
        name="hobbit",
    )

    # 2. Encode a query document against the same vocabulary.
    query = data.encode_query("the lord and the kings", name="suspicious")

    # 3. Configure the search: windows of w=4 consecutive tokens may
    #    differ by at most tau=1 token.  k_max controls the partitioned
    #    k-wise signature scheme (see the paper, Section 3).
    params = SearchParams(w=4, tau=1, k_max=2)

    # 4. Index the data documents and search.
    searcher = PKWiseSearcher(data, params)
    result = searcher.search(query)

    print(f"query: {query.name!r}  (w={params.w}, tau={params.tau})")
    for match in result.sorted_pairs():
        document = data[match.doc_id]
        data_window = " ".join(
            data.decode_window(document, match.data_start, params.w)
        )
        # decode_window uses the query's stored source tokens, so words
        # outside the data vocabulary ("and", "kings") print faithfully.
        query_window = " ".join(
            data.decode_window(query, match.query_start, params.w)
        )
        print(
            f"  {document.name}[{match.data_start}] ~ "
            f"query[{match.query_start}]  overlap={match.overlap}/{params.w}"
        )
        print(f"    data : {data_window!r}")
        print(f"    query: {query_window!r}")

    stats = result.stats
    print(
        f"phases: signature {stats.signature_time * 1e3:.2f}ms, "
        f"candidates {stats.candidate_time * 1e3:.2f}ms "
        f"({stats.candidate_windows} windows verified), "
        f"verification {stats.verify_time * 1e3:.2f}ms"
    )


if __name__ == "__main__":
    main()
