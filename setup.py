"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on modern pip requires building an editable wheel;
this offline environment lacks the ``wheel`` module, so the legacy
``python setup.py develop`` path (driven through this shim) is kept as a
fallback.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
