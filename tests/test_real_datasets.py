"""Fixture-based tests for the real-corpus loaders."""

from __future__ import annotations

import pytest

from repro import CorpusError
from repro.corpus.plagiarism import ObfuscationLevel
from repro.corpus.real_datasets import (
    _char_span_to_tokens,
    _tokenize_with_offsets,
    load_medline_abstracts,
    load_pan_corpus,
    load_reuters_sgml,
)
from repro.tokenize import WhitespaceTokenizer


class TestReuters:
    def _write_sgm(self, tmp_path, bodies):
        stories = "".join(
            f'<REUTERS ID="{i}"><TEXT><TITLE>t</TITLE>'
            f"<BODY>{body}</BODY></TEXT></REUTERS>\n"
            for i, body in enumerate(bodies)
        )
        (tmp_path / "reut2-000.sgm").write_text(stories, encoding="latin-1")

    def test_extracts_bodies(self, tmp_path):
        long_body = "word " * 120
        self._write_sgm(tmp_path, [long_body, "too short"])
        collection = load_reuters_sgml(tmp_path, min_tokens=100)
        assert len(collection) == 1
        assert len(collection[0]) == 120

    def test_unescapes_entities(self, tmp_path):
        body = "profit &amp; loss " * 60
        self._write_sgm(tmp_path, [body])
        collection = load_reuters_sgml(tmp_path, min_tokens=10)
        assert "&" in collection.vocabulary

    def test_skips_bodyless_stories(self, tmp_path):
        (tmp_path / "reut2-000.sgm").write_text(
            '<REUTERS ID="0"><TEXT><TITLE>only title</TITLE></TEXT></REUTERS>'
        )
        collection = load_reuters_sgml(tmp_path, min_tokens=1)
        assert len(collection) == 0

    def test_missing_files(self, tmp_path):
        with pytest.raises(CorpusError):
            load_reuters_sgml(tmp_path)


class TestMedline:
    def test_parses_abstracts(self, tmp_path):
        path = tmp_path / "ohsumed.87"
        path.write_text(
            ".I 1\n.U\n87001\n.W\n" + ("alpha " * 110) + "\n"
            ".I 2\n.W\nshort abstract\n"
            ".I 3\n.W\n" + ("beta " * 105) + "\n"
        )
        collection = load_medline_abstracts(path, min_tokens=100)
        assert len(collection) == 2
        assert collection[0].name == "medline-1"
        assert collection[1].name == "medline-3"

    def test_missing_file(self, tmp_path):
        with pytest.raises(CorpusError):
            load_medline_abstracts(tmp_path / "nope")

    def test_non_abstract_fields_ignored(self, tmp_path):
        path = tmp_path / "x"
        path.write_text(
            ".I 9\n.T\nthe title not included\n.W\n"
            + ("tok " * 120)
            + "\n.S\nsource line\n"
        )
        collection = load_medline_abstracts(path, min_tokens=100)
        assert len(collection) == 1
        assert "title" not in collection.vocabulary


class TestOffsets:
    def test_tokenize_with_offsets(self):
        tokens, starts = _tokenize_with_offsets(
            "The quick  brown fox", WhitespaceTokenizer()
        )
        assert tokens == ["the", "quick", "brown", "fox"]
        assert starts == [0, 4, 11, 17]

    def test_char_span_to_tokens(self):
        starts = [0, 4, 11, 17]
        # Characters 4..15 cover tokens 1..2.
        assert _char_span_to_tokens(starts, 4, 12) == (1, 2)
        # A span before every token start maps to nothing.
        assert _char_span_to_tokens(starts, 0, 0) is None
        assert _char_span_to_tokens([], 0, 5) is None


class TestPan:
    def _write_pan(self, tmp_path):
        src_dir = tmp_path / "source"
        susp_dir = tmp_path / "suspicious"
        src_dir.mkdir()
        susp_dir.mkdir()
        source_words = [f"s{i}" for i in range(150)]
        (src_dir / "source-document00001.txt").write_text(" ".join(source_words))
        # Suspicious doc: 50 own tokens + copy of source tokens 20..59.
        own = [f"q{i}" for i in range(50)]
        copied = source_words[20:60]
        suspicious_words = own + copied
        text = " ".join(suspicious_words)
        (susp_dir / "suspicious-document00001.txt").write_text(text)
        # Character offsets of the copied region.
        this_offset = len(" ".join(own)) + 1
        this_length = len(" ".join(copied))
        source_offset = len(" ".join(source_words[:20])) + 1
        source_length = len(" ".join(copied))
        (susp_dir / "suspicious-document00001.xml").write_text(
            '<?xml version="1.0"?>\n<document>\n'
            f'<feature name="plagiarism" obfuscation="low" '
            f'this_offset="{this_offset}" this_length="{this_length}" '
            f'source_reference="source-document00001.txt" '
            f'source_offset="{source_offset}" source_length="{source_length}"/>'
            "\n</document>"
        )
        return src_dir, susp_dir

    def test_loads_and_aligns_ground_truth(self, tmp_path):
        src_dir, susp_dir = self._write_pan(tmp_path)
        data, queries, truths = load_pan_corpus(src_dir, susp_dir, min_tokens=10)
        assert len(data) == 1 and len(queries) == 1
        assert len(truths) == 1
        truth = truths[0]
        assert truth.level is ObfuscationLevel.LOW
        assert truth.query_span == (50, 89)
        assert truth.data_span == (20, 59)
        # The aligned spans really are copies of each other.
        qlo, qhi = truth.query_span
        dlo, dhi = truth.data_span
        assert (
            queries[0].tokens[qlo : qhi + 1]
            == data[truth.data_doc_id].tokens[dlo : dhi + 1]
        )

    def test_search_finds_the_annotated_case(self, tmp_path):
        from repro import PKWiseSearcher, SearchParams
        from repro.eval import evaluate_quality

        src_dir, susp_dir = self._write_pan(tmp_path)
        data, queries, truths = load_pan_corpus(src_dir, susp_dir, min_tokens=10)
        params = SearchParams(w=25, tau=5, k_max=3)
        searcher = PKWiseSearcher(data, params)
        results = {q.doc_id: searcher.search(q).pairs for q in queries}
        report = evaluate_quality(results, truths, params.w)
        assert report.recall == 1.0

    def test_missing_directories(self, tmp_path):
        with pytest.raises(CorpusError):
            load_pan_corpus(tmp_path, tmp_path)
