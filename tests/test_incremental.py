"""Tests for incremental index maintenance and top-k search.

Mutations go through the :class:`repro.Index` facade — the unified
write path that backs every add/remove with the LSM ingest pipeline
(memtable + frozen segments).  The legacy direct-mutation methods on
searchers remain importable but warn; ``TestDeprecatedMutation`` pins
that contract.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    DocumentCollection,
    GlobalOrder,
    Index,
    PKWiseSearcher,
    SearchParams,
)

from .conftest import brute_force_pairs, pairs_as_set


def corpus(seed=0, docs=3, length=50, vocab=60):
    rng = random.Random(seed)
    data = DocumentCollection()
    for _ in range(docs):
        data.add_tokens([f"t{rng.randrange(vocab)}" for _ in range(length)])
    return data, rng


class TestAddDocument:
    def test_added_document_searchable(self):
        data, rng = corpus()
        params = SearchParams(w=10, tau=2, k_max=2)
        index = Index(PKWiseSearcher(data, params), data)
        new_doc = data.add_tokens([f"t{rng.randrange(60)}" for _ in range(50)])
        doc_id = index.add(new_doc)
        assert doc_id == 3
        assert index.live
        result = index.search(new_doc)
        # The new document matches itself on every window.
        for start in range(new_doc.num_windows(10)):
            assert (doc_id, start, start, 10) in pairs_as_set(result)

    def test_incremental_equals_batch(self):
        # Index built incrementally returns the same results as one
        # built from the full collection (with a shared order).
        data, rng = corpus(seed=1, docs=4)
        params = SearchParams(w=8, tau=2, k_max=2)
        order = GlobalOrder(data, params.w)
        batch = PKWiseSearcher(data, params, order=order)

        partial = data.subset(range(2))
        incremental = Index(
            PKWiseSearcher(partial, params, order=order), partial
        )
        incremental.add(data[2])
        incremental.add(data[3])

        query = data.encode_query_tokens(
            [f"t{rng.randrange(60)}" for _ in range(30)]
        )
        assert pairs_as_set(incremental.search(query)) == pairs_as_set(
            batch.search(query)
        )

    def test_added_document_with_new_tokens(self):
        data, _rng = corpus(seed=2)
        params = SearchParams(w=6, tau=1, k_max=2)
        index = Index(PKWiseSearcher(data, params), data)
        new_doc = data.add_tokens([f"fresh{i}" for i in range(20)])
        doc_id = index.add(new_doc)
        result = index.search(new_doc)
        assert (doc_id, 0, 0, 6) in pairs_as_set(result)

    def test_added_results_are_exact(self):
        data, rng = corpus(seed=3, docs=2)
        params = SearchParams(w=8, tau=2, k_max=2)
        index = Index(PKWiseSearcher(data, params), data)
        extra = data.add_tokens([f"t{rng.randrange(60)}" for _ in range(40)])
        index.add(extra)
        query = data.encode_query_tokens(
            [f"t{rng.randrange(60)}" for _ in range(30)]
        )
        assert pairs_as_set(index.search(query)) == brute_force_pairs(
            data, query, 8, 2
        )

    def test_results_exact_across_flush_and_compact(self):
        # Folding the memtable into a frozen segment (and folding all
        # tiers into one) must not change a single pair.
        data, rng = corpus(seed=9, docs=2)
        params = SearchParams(w=8, tau=2, k_max=2)
        index = Index(PKWiseSearcher(data, params), data)
        extra = data.add_tokens([f"t{rng.randrange(60)}" for _ in range(40)])
        index.add(extra)
        query = data.encode_query_tokens(
            [f"t{rng.randrange(60)}" for _ in range(30)]
        )
        before = pairs_as_set(index.search(query))
        index.flush()
        assert pairs_as_set(index.search(query)) == before
        index.compact()
        assert pairs_as_set(index.search(query)) == before
        assert before == brute_force_pairs(data, query, 8, 2)


class TestRemoveDocument:
    def test_removed_document_excluded(self):
        data, _rng = corpus(seed=4)
        params = SearchParams(w=10, tau=2, k_max=2)
        index = Index(PKWiseSearcher(data, params), data)
        query = data[1]
        before = pairs_as_set(index.search(query))
        assert any(doc_id == 1 for doc_id, *_ in before)
        index.remove(1)
        after = pairs_as_set(index.search(query))
        assert after == {t for t in before if t[0] != 1}
        assert index.searcher().removed_documents == frozenset({1})

    def test_remove_unknown_raises(self):
        data, _rng = corpus()
        index = Index(
            PKWiseSearcher(data, SearchParams(w=10, tau=2, k_max=2)), data
        )
        with pytest.raises(IndexError):
            index.remove(99)

    def test_remove_then_add_independent(self):
        data, rng = corpus(seed=5, docs=2)
        params = SearchParams(w=8, tau=1, k_max=2)
        index = Index(PKWiseSearcher(data, params), data)
        index.remove(0)
        new_doc = data.add_tokens([f"t{rng.randrange(60)}" for _ in range(30)])
        new_id = index.add(new_doc)
        result = pairs_as_set(index.search(new_doc))
        assert all(doc_id != 0 for doc_id, *_ in result)
        assert any(doc_id == new_id for doc_id, *_ in result)


class TestDeprecatedMutation:
    def test_searcher_add_document_warns(self):
        data, rng = corpus(seed=10, docs=2)
        searcher = PKWiseSearcher(data, SearchParams(w=10, tau=2, k_max=2))
        new_doc = data.add_tokens([f"t{rng.randrange(60)}" for _ in range(30)])
        with pytest.warns(DeprecationWarning, match="Index.add"):
            doc_id = searcher.add_document(new_doc)
        assert doc_id == 2

    def test_searcher_remove_document_warns(self):
        data, _rng = corpus(seed=11, docs=2)
        searcher = PKWiseSearcher(data, SearchParams(w=10, tau=2, k_max=2))
        with pytest.warns(DeprecationWarning, match="Index.remove"):
            searcher.remove_document(1)
        assert searcher.removed_documents == frozenset({1})

    def test_interval_index_add_document_warns(self):
        data, _rng = corpus(seed=12, docs=1)
        searcher = PKWiseSearcher(data, SearchParams(w=10, tau=2, k_max=2))
        with pytest.warns(DeprecationWarning, match="index_document"):
            searcher.index.add_document(1, searcher.rank_docs[0])


class TestTopK:
    def test_returns_best_overlaps(self):
        data, _rng = corpus(seed=6)
        params = SearchParams(w=10, tau=4, k_max=2)
        searcher = PKWiseSearcher(data, params)
        query = data[0]
        top = searcher.search_top_k(query, 5)
        assert len(top) == 5
        full = sorted(
            searcher.search(query).pairs, key=lambda p: -p.overlap
        )
        assert top[0].overlap == full[0].overlap
        overlaps = [pair.overlap for pair in top]
        assert overlaps == sorted(overlaps, reverse=True)

    def test_k_larger_than_results(self):
        data, _rng = corpus(seed=7, docs=1, length=15)
        params = SearchParams(w=10, tau=1, k_max=2)
        searcher = PKWiseSearcher(data, params)
        query = data[0]
        top = searcher.search_top_k(query, 1000)
        assert len(top) == len(searcher.search(query).pairs)

    def test_k_zero(self):
        data, _rng = corpus(seed=8)
        searcher = PKWiseSearcher(data, SearchParams(w=10, tau=2, k_max=2))
        assert searcher.search_top_k(data[0], 0) == []
