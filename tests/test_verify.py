"""Tests for rolling interval verification (Section 4.3)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntervalVerifier
from repro.windows import window_overlap


def reference_matches(doc_ranks, query_ranks, query_start, u, v, w, tau, doc_id=0):
    out = []
    query_window = query_ranks[query_start : query_start + w]
    for j in range(u, v + 1):
        overlap = window_overlap(doc_ranks[j : j + w], query_window)
        if w - overlap <= tau:
            out.append((doc_id, j, query_start, overlap))
    return out


class TestVerifyInterval:
    def test_single_window_match(self):
        verifier = IntervalVerifier([1, 2, 3], w=3, tau=0)
        matches = verifier.verify_interval(0, [1, 2, 3], 0, 0)
        assert [tuple(match) for match in matches] == [(0, 0, 0, 3)]

    def test_single_window_miss(self):
        verifier = IntervalVerifier([1, 2, 3], w=3, tau=0)
        assert verifier.verify_interval(0, [4, 5, 6], 0, 0) == []

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_matches_reference_on_random_intervals(self, seed):
        rng = random.Random(seed)
        w = rng.randint(1, 8)
        tau = rng.randint(0, max(0, w - 1))
        doc_ranks = [rng.randrange(6) for _ in range(w + rng.randint(0, 25))]
        query_ranks = [rng.randrange(6) for _ in range(w + rng.randint(0, 10))]
        verifier = IntervalVerifier(query_ranks, w, tau)
        query_start = rng.randint(0, len(query_ranks) - w)
        verifier.advance_to(query_start)
        max_start = len(doc_ranks) - w
        u = rng.randint(0, max_start)
        v = rng.randint(u, max_start)
        got = [tuple(match) for match in verifier.verify_interval(0, doc_ranks, u, v)]
        assert got == reference_matches(
            doc_ranks, query_ranks, query_start, u, v, w, tau
        )

    def test_early_termination_skips_tail(self):
        # Query shares nothing with the document: the first window
        # misses by delta = w - tau; the verifier should abandon the
        # interval after far fewer than v - u + 1 window checks.
        w, tau = 10, 1
        doc_ranks = list(range(100, 200))
        query_ranks = list(range(0, 10))
        verifier = IntervalVerifier(query_ranks, w, tau)
        verifier.verify_interval(0, doc_ranks, 0, 89)
        assert verifier.candidate_windows < 30  # 90 windows, but skipped

    def test_advance_to_rolls_query(self):
        query_ranks = [1, 2, 3, 4, 5]
        verifier = IntervalVerifier(query_ranks, w=3, tau=0)
        verifier.advance_to(2)
        matches = verifier.verify_interval(0, [3, 4, 5], 0, 0)
        assert len(matches) == 1
        assert matches[0].query_start == 2

    def test_advance_backwards_raises(self):
        verifier = IntervalVerifier([1, 2, 3, 4], w=2, tau=0)
        verifier.advance_to(2)
        with pytest.raises(ValueError):
            verifier.advance_to(1)

    def test_advance_to_last_window_succeeds(self):
        # len=10, w=4: window starts 0..6; advancing exactly to the
        # last one must work.
        verifier = IntervalVerifier(list(range(10)), w=4, tau=0)
        verifier.advance_to(6)
        assert verifier.query_start == 6

    def test_advance_past_last_window_raises_repro_error(self):
        # Regression: this used to surface as a bare IndexError from
        # ``ranks[start + w]`` deep inside the slide loop.
        from repro.errors import ReproError

        verifier = IntervalVerifier(list(range(10)), w=4, tau=0)
        with pytest.raises(ReproError) as excinfo:
            verifier.advance_to(7)
        message = str(excinfo.value)
        assert "7" in message  # the offending target window
        assert "6" in message  # the last valid window start
        # The verifier state is untouched by the rejected advance.
        assert verifier.query_start == 0
        verifier.advance_to(6)

    def test_advance_far_past_end_raises_not_index_error(self):
        from repro.errors import ReproError

        verifier = IntervalVerifier(list(range(8)), w=3, tau=1)
        with pytest.raises(ReproError):
            verifier.advance_to(100)

    def test_hash_ops_grow_with_work(self):
        verifier = IntervalVerifier([1, 2, 3, 4, 5], w=3, tau=2)
        before = verifier.hash_ops
        verifier.verify_interval(0, [1, 2, 3, 4, 5], 0, 2)
        assert verifier.hash_ops > before

    def test_verify_single(self):
        verifier = IntervalVerifier([7, 8, 9], w=3, tau=1)
        match = verifier.verify_single(3, [7, 8, 0], 0)
        assert match is not None
        assert match.doc_id == 3 and match.overlap == 2
        assert verifier.verify_single(3, [0, 0, 0], 0) is None

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_sequential_query_windows(self, seed):
        # Full protocol: advance through query windows in order, verify
        # a fresh interval each time; every result must match reference.
        rng = random.Random(seed)
        w = rng.randint(2, 6)
        tau = rng.randint(0, w - 1)
        doc_ranks = [rng.randrange(4) for _ in range(w + rng.randint(0, 15))]
        query_ranks = [rng.randrange(4) for _ in range(w + rng.randint(0, 15))]
        verifier = IntervalVerifier(query_ranks, w, tau)
        max_doc_start = len(doc_ranks) - w
        for query_start in range(len(query_ranks) - w + 1):
            verifier.advance_to(query_start)
            got = [
                tuple(m)
                for m in verifier.verify_interval(0, doc_ranks, 0, max_doc_start)
            ]
            assert got == reference_matches(
                doc_ranks, query_ranks, query_start, 0, max_doc_start, w, tau
            )
