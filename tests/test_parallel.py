"""Parity suite for the multi-core execution engine.

Every parallel code path — sharded query workloads, partitioned index
construction, blocked self-join — must return exactly what its serial
counterpart returns.  The suite asserts exact equality (not just set
equality: per-query lists are canonically ordered on both sides) under
the fork start method, covers the spawn/pickle fallback, and pins the
degenerate cases: ``jobs=1`` pass-through, an empty workload, and a
workload smaller than the worker count.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro import (
    DocumentCollection,
    ParallelExecutor,
    PKWiseSearcher,
    SearchParams,
    local_similarity_self_join,
)
from repro.errors import ConfigurationError
from repro.eval import run_searcher
from repro.eval.harness import canonical_pair_order, serial_run
from repro.parallel import split_blocks

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="parity suite drives the fork fast path"
)


@pytest.fixture(scope="module")
def corpus():
    """A corpus with genuine cross-document reuse plus query documents."""
    rng = random.Random(4242)
    vocab = [f"w{i}" for i in range(80)]
    data = DocumentCollection()
    docs = []
    for _ in range(9):
        docs.append([vocab[rng.randrange(len(vocab))] for _ in range(110)])
    segment = docs[0][15:45]
    segment[7] = "w7777"
    docs[4][30:60] = segment
    docs[7][0:30] = docs[0][15:45]
    for tokens in docs:
        data.add_tokens(tokens)
    queries = [
        data[0],
        data[4],
        data.encode_query_tokens(
            docs[2][20:70] + ["novel1", "novel2"] + docs[5][10:40]
        ),
        data.encode_query_tokens(["unseen"] * 30),
    ]
    return data, queries


@pytest.fixture(scope="module")
def params():
    return SearchParams(w=12, tau=3, k_max=2)


class TestWorkloadParity:
    def test_results_identical_to_serial(self, corpus, params):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        serial = run_searcher(searcher, queries)
        parallel = run_searcher(searcher, queries, jobs=3)
        assert parallel.results_by_query == serial.results_by_query
        assert list(parallel.results_by_query) == list(serial.results_by_query)
        assert parallel.num_queries == serial.num_queries
        assert parallel.stats.num_results == serial.stats.num_results
        assert parallel.stats.candidate_windows == serial.stats.candidate_windows

    def test_matchpair_set_equality_per_query(self, corpus, params):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        serial = run_searcher(searcher, queries)
        parallel = run_searcher(searcher, queries, jobs=2, chunk_size=1)
        for query_id, pairs in serial.results_by_query.items():
            assert set(parallel.results_by_query[query_id]) == set(pairs)

    def test_jobs_one_is_serial_passthrough(self, corpus, params):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        run = run_searcher(searcher, queries, jobs=1)
        assert run.jobs == 1
        assert run.worker_reports == []
        assert run.worker_skew == 1.0

    def test_empty_workload(self, corpus, params):
        data, _queries = corpus
        searcher = PKWiseSearcher(data, params)
        run = run_searcher(searcher, [], jobs=4)
        assert run.num_queries == 0
        assert run.results_by_query == {}
        assert run.avg_query_seconds == 0.0

    def test_workload_smaller_than_worker_count(self, corpus, params):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        serial = run_searcher(searcher, queries[:2])
        parallel = run_searcher(searcher, queries[:2], jobs=8)
        assert parallel.results_by_query == serial.results_by_query
        # Never more pool workers than dispatched chunks.
        assert parallel.jobs <= 2

    def test_worker_reports_cover_all_queries(self, corpus, params):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        run = run_searcher(searcher, queries, jobs=2)
        assert sum(report.num_queries for report in run.worker_reports) == len(
            queries
        )
        assert run.worker_skew >= 1.0
        merged_results = sum(
            report.stats.num_results for report in run.worker_reports
        )
        assert merged_results == run.stats.num_results

    def test_to_dict_round_trips_through_json(self, corpus, params):
        import json

        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        run = run_searcher(searcher, queries, jobs=2)
        payload = json.loads(json.dumps(run.to_dict(include_results=True)))
        assert payload["num_queries"] == len(queries)
        assert payload["stats"]["num_results"] == run.num_results
        assert len(payload["workers"]) == len(run.worker_reports)
        assert payload["worker_skew"] == run.worker_skew


class TestSerialOrderingContract:
    def test_serial_results_canonically_sorted(self, corpus, params):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        run = serial_run(searcher, queries)
        for pairs in run.results_by_query.values():
            assert pairs == canonical_pair_order(pairs)
            assert pairs == sorted(
                pairs, key=lambda p: (p.doc_id, p.data_start, p.query_start)
            )


class TestBuildParity:
    def test_parallel_build_matches_serial_index(self, corpus, params):
        data, _queries = corpus
        serial = PKWiseSearcher(data, params)
        parallel = ParallelExecutor(jobs=3).build_searcher(data, params)
        assert parallel.index._postings == serial.index._postings
        assert parallel.rank_docs == serial.rank_docs
        assert parallel.index.num_windows == serial.index.num_windows
        assert parallel.index.build_stats == serial.index.build_stats
        assert parallel.scheme == serial.scheme
        assert parallel.build_worker_reports  # skew is observable

    def test_parallel_build_searches_identically(self, corpus, params):
        data, queries = corpus
        serial = PKWiseSearcher(data, params)
        parallel = ParallelExecutor(jobs=2).build_searcher(data, params)
        for query in queries:
            assert (
                parallel.search(query).sorted_pairs()
                == serial.search(query).sorted_pairs()
            )

    def test_hashed_index_build(self, corpus, params):
        data, _queries = corpus
        serial = PKWiseSearcher(data, params, hashed=True)
        parallel = ParallelExecutor(jobs=2).build_searcher(
            data, params, hashed=True
        )
        assert parallel.index._postings == serial.index._postings

    def test_single_document_collection_falls_back_to_serial(self, params):
        data = DocumentCollection()
        data.add_tokens([f"t{i % 9}" for i in range(40)])
        searcher = ParallelExecutor(jobs=4).build_searcher(data, params)
        assert searcher.index.num_documents == 1


class TestSelfJoinParity:
    def test_matches_serial(self, corpus, params):
        data, _queries = corpus
        serial = local_similarity_self_join(
            data, params, exclude_same_document_within=params.w
        )
        parallel = local_similarity_self_join(
            data, params, exclude_same_document_within=params.w, jobs=3
        )
        assert parallel == serial
        assert serial  # the corpus really contains replicated windows

    def test_no_exclusion_window(self, corpus, params):
        data, _queries = corpus
        serial = local_similarity_self_join(data, params)
        parallel = local_similarity_self_join(data, params, jobs=2)
        assert parallel == serial

    def test_prebuilt_searcher_reuse(self, corpus, params):
        data, _queries = corpus
        executor = ParallelExecutor(jobs=2)
        searcher = executor.build_searcher(data, params)
        serial = local_similarity_self_join(
            data, params, exclude_same_document_within=params.w
        )
        parallel = executor.self_join(
            data,
            params,
            exclude_same_document_within=params.w,
            searcher=searcher,
        )
        assert parallel == serial


class TestDegenerateWorkloads:
    """Empty/degenerate inputs return empty results with sane stats."""

    @pytest.mark.parametrize("jobs", [2, 4, 8])
    def test_zero_queries(self, corpus, params, jobs):
        data, _queries = corpus
        searcher = PKWiseSearcher(data, params)
        executor = ParallelExecutor(jobs=jobs)
        run = executor.run_workload(searcher, [])
        assert run.num_queries == 0
        assert run.results_by_query == {}
        assert run.num_results == 0
        assert run.worker_skew == 1.0
        assert run.avg_query_seconds == 0.0
        # The dict form is well-formed (no division-by-zero artifacts).
        row = run.to_dict()
        assert row["worker_skew"] == 1.0
        assert row["phases"] == {"routing": 0.0, "signature": 0.0,
                                 "candidate": 0.0, "verify": 0.0}

    @pytest.mark.parametrize("jobs,num_queries", [(8, 2), (16, 3), (64, 2)])
    def test_jobs_larger_than_chunks(self, corpus, params, jobs, num_queries):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        serial = run_searcher(searcher, queries[:num_queries])
        parallel = run_searcher(searcher, queries[:num_queries], jobs=jobs)
        assert parallel.results_by_query == serial.results_by_query
        assert parallel.jobs <= num_queries  # never more workers than chunks
        assert parallel.worker_skew >= 1.0
        assert sum(r.num_queries for r in parallel.worker_reports) == num_queries

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_chunk_size_larger_than_workload(self, corpus, params, jobs):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        run = ParallelExecutor(jobs=jobs, chunk_size=1000).run_workload(
            searcher, queries
        )
        serial = serial_run(searcher, queries)
        assert run.results_by_query == serial.results_by_query

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_documents_shorter_than_window(self, params, jobs):
        # Every document (and query) is shorter than w: zero windows
        # anywhere, so every operation returns empty with clean stats.
        data = DocumentCollection()
        for text in ("a b c", "d e f", "a b d", "c a"):
            data.add_tokens(text.split())
        executor = ParallelExecutor(jobs=jobs)
        searcher = executor.build_searcher(data, params)
        assert searcher.index.num_windows == 0
        queries = [data[0], data.encode_query_tokens(["a", "b"])]
        run = executor.run_workload(searcher, queries)
        assert run.num_results == 0
        assert all(pairs == [] for pairs in run.results_by_query.values())
        assert run.worker_skew >= 1.0
        join = executor.self_join(
            data, params, exclude_same_document_within=params.w,
            searcher=searcher,
        )
        assert join == []

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_short_query_against_real_corpus(self, corpus, params, jobs):
        data, _queries = corpus
        searcher = PKWiseSearcher(data, params)
        short_query = data.encode_query_tokens(["w1", "w2"])  # len < w
        run = run_searcher(searcher, [data[0], short_query], jobs=jobs)
        assert run.results_by_query[1] == []  # the short query: no windows
        assert run.num_queries == 2
        serial = run_searcher(searcher, [data[0], short_query])
        assert run.results_by_query == serial.results_by_query

    def test_empty_collection_self_join(self, params):
        assert local_similarity_self_join(
            DocumentCollection(), params, jobs=2
        ) == []


class TestSpawnFallback:
    """The portable path: state travels via persistence/pickle."""

    def test_search_and_join_parity_under_spawn(self, corpus, params):
        data, queries = corpus
        searcher = PKWiseSearcher(data, params)
        serial = run_searcher(searcher, queries)
        parallel = run_searcher(
            searcher, queries, jobs=2, start_method="spawn"
        )
        assert parallel.results_by_query == serial.results_by_query

    def test_build_parity_under_spawn(self, corpus, params):
        data, _queries = corpus
        serial = PKWiseSearcher(data, params)
        parallel = ParallelExecutor(jobs=2, start_method="spawn").build_searcher(
            data, params
        )
        assert parallel.index._postings == serial.index._postings


class TestExecutorConfig:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=-2)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=2, chunk_size=0)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=2, start_method="teleport")

    def test_jobs_none_means_cpu_count(self):
        import os

        assert ParallelExecutor(jobs=None).jobs == (os.cpu_count() or 1)

    def test_split_blocks_partitions_exactly(self):
        for total in (0, 1, 5, 17):
            for parts in (1, 2, 4, 9):
                blocks = split_blocks(total, parts)
                covered = [i for lo, hi in blocks for i in range(lo, hi)]
                assert covered == list(range(total))
                assert len(blocks) <= max(1, min(parts, total))
