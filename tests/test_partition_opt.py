"""Tests for the cost model and the greedy partitioner (Section 5)."""

from __future__ import annotations

import pytest

from repro import (
    CostWeights,
    DocumentCollection,
    GlobalOrder,
    GreedyPartitioner,
    PartitionScheme,
    SearchParams,
    equi_width_scheme,
    workload_cost,
)
from repro.corpus.synthetic import make_profile_collection
from repro.errors import PartitioningError


@pytest.fixture(scope="module")
def tiny_workload():
    data, queries, _truth = make_profile_collection("REUTERS", scale=0.0015, seed=3)
    params = SearchParams(w=20, tau=3, k_max=3)
    order = GlobalOrder(data, params.w)
    return data, queries, params, order


class TestWorkloadCost:
    def test_positive_cost(self, tiny_workload):
        data, queries, params, order = tiny_workload
        scheme = PartitionScheme.single(order.universe_size)
        cost = workload_cost(data, queries[:2], params, scheme, order)
        assert cost > 0

    def test_weights_scale_cost(self, tiny_workload):
        data, queries, params, order = tiny_workload
        scheme = PartitionScheme.single(order.universe_size)
        base = workload_cost(
            data, queries[:1], params, scheme, order, CostWeights(1, 1, 1)
        )
        doubled = workload_cost(
            data, queries[:1], params, scheme, order, CostWeights(2, 2, 2)
        )
        assert doubled == pytest.approx(2 * base)

    def test_deterministic(self, tiny_workload):
        data, queries, params, order = tiny_workload
        scheme = equi_width_scheme(order.universe_size, 3)
        a = workload_cost(data, queries[:2], params, scheme, order)
        b = workload_cost(data, queries[:2], params, scheme, order)
        assert a == b


class TestGreedyPartitioner:
    def test_produces_valid_scheme(self, tiny_workload):
        data, _queries, params, order = tiny_workload
        partitioner = GreedyPartitioner(
            data, params, order=order, b1_fraction=0.5, b2_fraction=0.25,
            sample_ratio=0.2,
        )
        scheme, report = partitioner.partition()
        assert scheme.k_max == params.k_max
        assert len(scheme.borders) == params.k_max - 1
        assert report.evaluations > 0
        assert len(report.stage_borders) == params.k_max - 1

    def test_beats_or_ties_standard_prefix(self, tiny_workload):
        # Stage 1 evaluates the degenerate boundary |U| (pure 1-wise),
        # so the greedy result can never cost more than standard prefix
        # filtering on the same workload.
        data, _queries, params, order = tiny_workload
        partitioner = GreedyPartitioner(
            data, params, order=order, b1_fraction=0.5, b2_fraction=0.25,
            sample_ratio=0.2,
        )
        workload = partitioner.sample_workload()
        scheme, _report = partitioner.partition(workload=workload)
        greedy_cost = workload_cost(data, workload, params, scheme, order)
        single_cost = workload_cost(
            data, workload, params, PartitionScheme.single(order.universe_size),
            order,
        )
        assert greedy_cost <= single_cost

    def test_stage_costs_non_increasing(self, tiny_workload):
        data, _queries, params, order = tiny_workload
        partitioner = GreedyPartitioner(
            data, params, order=order, b1_fraction=0.5, b2_fraction=0.25,
            sample_ratio=0.2,
        )
        _scheme, report = partitioner.partition()
        for earlier, later in zip(report.stage_costs, report.stage_costs[1:]):
            assert later <= earlier + 1e-9

    def test_borders_non_decreasing(self, tiny_workload):
        data, _queries, params, order = tiny_workload
        partitioner = GreedyPartitioner(
            data, params, order=order, b1_fraction=0.5, b2_fraction=0.25,
            sample_ratio=0.2,
        )
        scheme, _report = partitioner.partition()
        assert list(scheme.borders) == sorted(scheme.borders)

    def test_sample_workload_size(self, tiny_workload):
        data, _queries, params, order = tiny_workload
        partitioner = GreedyPartitioner(
            data, params, order=order, sample_ratio=0.25
        )
        workload = partitioner.sample_workload()
        assert len(workload) == max(1, round(0.25 * len(data)))

    def test_deterministic_given_seed(self, tiny_workload):
        data, _queries, params, order = tiny_workload
        kwargs = dict(
            order=order, b1_fraction=0.5, b2_fraction=0.25, sample_ratio=0.2,
            seed=11,
        )
        scheme_a, _ = GreedyPartitioner(data, params, **kwargs).partition()
        scheme_b, _ = GreedyPartitioner(data, params, **kwargs).partition()
        assert scheme_a.borders == scheme_b.borders

    def test_explicit_workload_used(self, tiny_workload):
        data, queries, params, order = tiny_workload
        partitioner = GreedyPartitioner(
            data, params, order=order, b1_fraction=0.5, b2_fraction=0.5
        )
        scheme, report = partitioner.partition(workload=queries[:1])
        assert scheme.k_max == params.k_max
        assert report.final_cost > 0


class TestCalibration:
    def test_calibrated_weights_positive_and_normalized(self, tiny_workload):
        from repro.partition.cost_model import calibrated_weights

        data, queries, params, order = tiny_workload
        weights = calibrated_weights(data, queries[:2], params, order)
        assert weights.c_hash == 1.0
        assert weights.c_comb > 0
        assert weights.c_int > 0


class TestSamplePerturbation:
    def test_perturbed_sample_differs_from_source(self, tiny_workload):
        data, _queries, params, order = tiny_workload
        partitioner = GreedyPartitioner(
            data, params, order=order, sample_ratio=0.2, seed=3
        )
        sample = partitioner.sample_workload()
        originals = {document.tokens for document in data}
        assert all(query.tokens not in originals for query in sample)
        assert all(query.doc_id == -1 for query in sample)

    def test_unperturbed_sample_is_verbatim(self, tiny_workload):
        data, _queries, params, order = tiny_workload
        partitioner = GreedyPartitioner(
            data, params, order=order, sample_ratio=0.2, seed=3,
            perturb_sample=False,
        )
        sample = partitioner.sample_workload()
        originals = {document.tokens for document in data}
        assert all(query.tokens in originals for query in sample)


class TestValidation:
    def _data(self):
        data = DocumentCollection()
        data.add_text(" ".join(f"t{i}" for i in range(30)))
        return data

    def test_rejects_bad_blocks(self):
        data = self._data()
        params = SearchParams(w=5, tau=1, k_max=2)
        with pytest.raises(PartitioningError):
            GreedyPartitioner(data, params, b1_fraction=0.1, b2_fraction=0.5)
        with pytest.raises(PartitioningError):
            GreedyPartitioner(data, params, b1_fraction=0.0)

    def test_rejects_bad_sample_ratio(self):
        data = self._data()
        params = SearchParams(w=5, tau=1, k_max=2)
        with pytest.raises(PartitioningError):
            GreedyPartitioner(data, params, sample_ratio=0.0)
        with pytest.raises(PartitioningError):
            GreedyPartitioner(data, params, sample_ratio=1.5)
