"""Tests for the pkwise searchers (Algorithms 2 and 4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConfigurationError,
    DocumentCollection,
    GlobalOrder,
    PartitionScheme,
    PKWiseNonIntervalSearcher,
    PKWiseSearcher,
    SearchParams,
)
from repro.core.pkwise import default_scheme

from .conftest import brute_force_pairs, pairs_as_set, random_collection


class TestPaperExample1:
    def test_result_pair(self, paper_example):
        data, query, params = paper_example
        result = PKWiseSearcher(data, params).search(query)
        assert pairs_as_set(result) == {(0, 0, 0, 3)}

    def test_nonint_agrees(self, paper_example):
        data, query, params = paper_example
        result = PKWiseNonIntervalSearcher(data, params).search(query)
        assert pairs_as_set(result) == {(0, 0, 0, 3)}


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_pkwise_variants_match_bruteforce(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng)
        w = rng.randint(3, 10)
        tau = rng.randint(0, min(3, w - 1))
        k_max = rng.randint(1, 3)
        m = rng.randint(1, 2)
        try:
            params = SearchParams(w=w, tau=tau, k_max=k_max, m=m)
        except ConfigurationError:
            return
        expected = brute_force_pairs(data, query, w, tau)
        order = GlobalOrder(data, w)
        interval = PKWiseSearcher(data, params, order=order)
        nonint = PKWiseNonIntervalSearcher(data, params, order=order)
        assert pairs_as_set(interval.search(query)) == expected
        assert pairs_as_set(nonint.search(query)) == expected

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_hashed_index_equivalent(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng)
        params = SearchParams(w=5, tau=1, k_max=2)
        order = GlobalOrder(data, params.w)
        plain = PKWiseSearcher(data, params, order=order)
        hashed = PKWiseSearcher(data, params, order=order, hashed=True)
        assert pairs_as_set(plain.search(query)) == pairs_as_set(
            hashed.search(query)
        )

    def test_query_is_data_document(self, small_corpus):
        # Self-similarity: querying with a data document must at least
        # find every window paired with itself.
        params = SearchParams(w=10, tau=2, k_max=3)
        searcher = PKWiseSearcher(small_corpus, params)
        document = small_corpus[0]
        result = searcher.search(document)
        found = pairs_as_set(result)
        for start in range(document.num_windows(10)):
            assert (0, start, start, 10) in found


class TestSchemes:
    def test_custom_scheme_respected(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=2)
        order = GlobalOrder(small_corpus, 10)
        scheme = PartitionScheme(universe_size=order.universe_size, borders=(5,))
        searcher = PKWiseSearcher(small_corpus, params, scheme=scheme, order=order)
        assert searcher.scheme is scheme

    def test_scheme_m_mismatch_rejected(self, small_corpus):
        params = SearchParams(w=20, tau=2, k_max=2, m=2)
        order = GlobalOrder(small_corpus, 20)
        scheme = PartitionScheme(universe_size=order.universe_size, borders=(5,), m=1)
        with pytest.raises(ConfigurationError):
            PKWiseSearcher(small_corpus, params, scheme=scheme, order=order)
        with pytest.raises(ConfigurationError):
            PKWiseNonIntervalSearcher(
                small_corpus, params, scheme=scheme, order=order
            )

    def test_default_scheme_covers_universe(self, small_corpus):
        params = SearchParams(w=12, tau=2, k_max=4)
        order = GlobalOrder(small_corpus, 12)
        scheme = default_scheme(params, order)
        assert scheme.k_max == 4
        assert sum(scheme.class_sizes()) == order.universe_size

    def test_k_max_1_equals_standard_prefix(self, small_corpus):
        from repro.baselines import StandardPrefixSearcher

        params = SearchParams(w=10, tau=2, k_max=1)
        order = GlobalOrder(small_corpus, 10)
        pkwise = PKWiseSearcher(data=small_corpus, params=params, order=order)
        standard = StandardPrefixSearcher(small_corpus, params, order=order)
        query = small_corpus[3]
        assert pairs_as_set(pkwise.search(query)) == pairs_as_set(
            standard.search(query)
        )


class TestEdgeCases:
    def test_query_shorter_than_window(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=2)
        searcher = PKWiseSearcher(small_corpus, params)
        query = small_corpus.encode_query("only three tokens")
        assert searcher.search(query).pairs == []

    def test_data_document_shorter_than_window(self):
        data = DocumentCollection()
        data.add_text("too short")
        data.add_text("this document is long enough for one window at least yes")
        params = SearchParams(w=8, tau=1, k_max=2)
        searcher = PKWiseSearcher(data, params)
        query = data.encode_query(
            "this document is long enough for one window at least yes"
        )
        result = searcher.search(query)
        assert all(pair.doc_id == 1 for pair in result.pairs)
        assert result.pairs  # exact copy present

    def test_tau_zero_exact_windows(self):
        data = DocumentCollection()
        data.add_text("a b c d e f")
        params = SearchParams(w=3, tau=0, k_max=1)
        searcher = PKWiseSearcher(data, params)
        query = data.encode_query("x b c d y")
        result = searcher.search(query)
        assert pairs_as_set(result) == {(0, 1, 1, 3)}

    def test_unknown_query_tokens_handled(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=3)
        searcher = PKWiseSearcher(small_corpus, params)
        query = small_corpus.encode_query(" ".join(f"novel{i}" for i in range(30)))
        assert searcher.search(query).pairs == []

    def test_empty_collection(self):
        data = DocumentCollection()
        params = SearchParams(w=4, tau=1, k_max=2)
        searcher = PKWiseSearcher(data, params)
        query = data.encode_query("a b c d e")
        assert searcher.search(query).pairs == []


class TestStats:
    def test_stats_populated(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=3)
        searcher = PKWiseSearcher(small_corpus, params)
        result = searcher.search(small_corpus[3])
        stats = result.stats
        assert stats.num_results == len(result.pairs)
        assert stats.signatures_generated > 0
        assert stats.shared_windows + stats.changed_windows == small_corpus[
            3
        ].num_windows(10)
        assert stats.total_time >= 0.0

    def test_abstract_cost_weighting(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=3)
        searcher = PKWiseSearcher(small_corpus, params)
        stats = searcher.search(small_corpus[0]).stats
        assert stats.abstract_cost(1, 0, 0) == stats.signature_tokens
        assert stats.abstract_cost(0, 1, 0) == stats.postings_entries
        assert stats.abstract_cost(0, 0, 1) == stats.hash_ops

    def test_search_many_merges(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=2)
        searcher = PKWiseSearcher(small_corpus, params)
        queries = [small_corpus[0], small_corpus[1]]
        run = searcher.search_many(queries)
        assert run.num_queries == 2
        assert len(run.results_by_query) == 2
        assert run.stats.num_results == sum(
            len(pairs) for pairs in run.results_by_query.values()
        )

    def test_search_many_legacy_unpack_warns(self, small_corpus):
        import pytest

        params = SearchParams(w=10, tau=1, k_max=2)
        searcher = PKWiseSearcher(small_corpus, params)
        queries = [small_corpus[0], small_corpus[1]]
        run = searcher.search_many(queries)
        with pytest.warns(DeprecationWarning):
            results, totals = searcher.search_many(queries)
        assert len(results) == 2
        assert totals.num_results == run.stats.num_results
        assert [r.pairs for r in results] == list(run.results_by_query.values())

    def test_index_build_time_recorded(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=2)
        searcher = PKWiseSearcher(small_corpus, params)
        assert searcher.index_build_seconds > 0.0

    def test_repr(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=2)
        assert "pkwise" in repr(PKWiseSearcher(small_corpus, params)).lower()
