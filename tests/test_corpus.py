"""Tests for documents, collections, loaders, and statistics."""

from __future__ import annotations

import pytest

from repro import CorpusError, DocumentCollection
from repro.corpus import (
    CollectionStats,
    collection_from_directory,
    collection_from_texts,
)
from repro.corpus.stats import token_frequency_counter


class TestDocument:
    def test_windows(self):
        data = DocumentCollection()
        doc = data.add_text("a b c d e")
        assert doc.num_windows(3) == 3
        assert doc.window(1, 3) == tuple(data.vocabulary.encode_frozen(["b", "c", "d"]))

    def test_window_out_of_range(self):
        data = DocumentCollection()
        doc = data.add_text("a b c")
        with pytest.raises(IndexError):
            doc.window(2, 3)
        with pytest.raises(IndexError):
            doc.window(-1, 2)

    def test_short_document_no_windows(self):
        data = DocumentCollection()
        doc = data.add_text("a b")
        assert doc.num_windows(5) == 0

    def test_equality_and_hash(self):
        data = DocumentCollection()
        doc = data.add_text("a b c")
        assert doc == doc
        assert hash(doc) == hash(doc)
        assert doc != "a b c"  # not a Document; __eq__ returns NotImplemented

    def test_len_iter_getitem(self):
        data = DocumentCollection()
        doc = data.add_text("a b a")
        assert len(doc) == 3
        assert list(doc) == [0, 1, 0]
        assert doc[0] == 0
        assert doc[1:] == (1, 0)


class TestCollection:
    def test_shared_vocabulary(self):
        data = DocumentCollection()
        d1 = data.add_text("a b")
        d2 = data.add_text("b c")
        assert d1.tokens[1] == d2.tokens[0]  # both are "b"

    def test_doc_ids_sequential(self):
        data = DocumentCollection()
        for index in range(3):
            assert data.add_text(f"doc {index}").doc_id == index

    def test_encode_query_oov_sentinel(self):
        from repro.tokenize import OOV_TOKEN_ID

        data = DocumentCollection()
        data.add_text("a b c")
        query = data.encode_query("c d")
        assert query.doc_id == -1
        assert query.tokens[0] == data.vocabulary.id_of("c")
        # "d" is out of vocabulary: mapped to the sentinel, not interned.
        assert query.tokens[1] == OOV_TOKEN_ID
        assert "d" not in data.vocabulary
        assert len(data.vocabulary) == 3

    def test_add_token_ids_validates_range(self):
        data = DocumentCollection()
        data.add_text("a")
        with pytest.raises(CorpusError):
            data.add_token_ids([5])
        with pytest.raises(CorpusError):
            data.add_token_ids([-1])

    def test_totals(self):
        data = DocumentCollection()
        data.add_text("a b c d")
        data.add_text("e f")
        assert data.total_tokens() == 6
        assert data.total_windows(3) == 2  # only the first doc has windows

    def test_subset_preserves_vocabulary(self):
        data = DocumentCollection()
        data.add_text("a b c d e")
        data.add_text("f g h i j")
        data.add_text("a a a a a")
        sub = data.subset([2, 0])
        assert len(sub) == 2
        assert sub[0].doc_id == 0  # renumbered
        assert sub[0].tokens == data[2].tokens  # same ids
        assert sub.vocabulary is data.vocabulary

    def test_repr(self):
        data = DocumentCollection()
        data.add_text("a b")
        assert "docs=1" in repr(data)


class TestLoaders:
    def test_from_texts(self):
        collection = collection_from_texts(["a b c", "d e f"])
        assert len(collection) == 2

    def test_from_texts_min_tokens(self):
        collection = collection_from_texts(["a b c", "d"], min_tokens=2)
        assert len(collection) == 1

    def test_from_texts_names_mismatch(self):
        with pytest.raises(CorpusError):
            collection_from_texts(["a"], names=["x", "y"])

    def test_from_directory(self, tmp_path):
        (tmp_path / "b.txt").write_text("second doc here")
        (tmp_path / "a.txt").write_text("first doc here")
        collection = collection_from_directory(tmp_path)
        # Sorted name order.
        assert collection[0].name == "a.txt"
        assert collection[1].name == "b.txt"

    def test_from_directory_missing(self, tmp_path):
        with pytest.raises(CorpusError):
            collection_from_directory(tmp_path / "nope")

    def test_from_directory_no_matches(self, tmp_path):
        with pytest.raises(CorpusError):
            collection_from_directory(tmp_path, pattern="*.xml")


class TestStats:
    def test_compute(self):
        data = DocumentCollection()
        data.add_text("a b c d")
        data.add_text("a b")
        queries = [data.encode_query("c d e f")]
        stats = CollectionStats.compute(data, queries)
        assert stats.num_data_documents == 2
        assert stats.num_query_documents == 1
        assert stats.avg_data_length == 3.0
        assert stats.avg_query_length == 4.0
        # a b c d + the OOV sentinel: query-only tokens "e" and "f" are
        # not interned, they collapse onto one sentinel id.
        assert stats.universe_size == 5

    def test_empty(self):
        data = DocumentCollection()
        stats = CollectionStats.compute(data, [])
        assert stats.avg_data_length == 0.0
        assert stats.universe_size == 0

    def test_table_row_contains_fields(self):
        data = DocumentCollection()
        data.add_text("x y")
        row = CollectionStats.compute(data, []).as_table_row("TEST")
        assert "TEST" in row and "|D|=1" in row

    def test_token_frequency_counter(self):
        data = DocumentCollection()
        data.add_text("a a b")
        counter = token_frequency_counter(data)
        assert counter[data.vocabulary.id_of("a")] == 2
        assert counter[data.vocabulary.id_of("b")] == 1
