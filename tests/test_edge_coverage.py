"""Edge-case coverage across modules: deterministic corner constructions."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DocumentCollection,
    GlobalOrder,
    PartitionScheme,
    SearchParams,
    WeightedPKWiseSearcher,
)
from repro.core.weighted import UNIVERSAL_SIGNATURE
from repro.index.intervals import WindowInterval, merge_intervals


class TestWeightedFallbackDeterministic:
    def test_universal_signature_used_when_unfilterable(self):
        # Everything 2-wise; unit weights; w=3, theta=0.5: a window's
        # weighted coverage (sum of n-1 smallest weights = 2) is below
        # its budget wt - theta = 2.5, so prefix filtering is unsound
        # for every window and the sentinel must kick in.
        data = DocumentCollection()
        data.add_tokens(["a", "b", "c", "d", "e"])
        order = GlobalOrder(data, 3)
        scheme = PartitionScheme.all_k(order.universe_size, 2)
        searcher = WeightedPKWiseSearcher(
            data, w=3, theta_weight=0.5, weight_of_token=lambda _t: 1.0,
            scheme=scheme, order=order,
        )
        assert UNIVERSAL_SIGNATURE in searcher._postings
        # Exactness despite the fallback: the identity windows match.
        query = data.encode_query_tokens(["a", "b", "c"])
        pairs, _stats = searcher.search(query)
        assert any(
            p.data_start == 0 and p.intersection_weight == 3.0 for p in pairs
        )

    def test_no_fallback_with_single_class(self):
        data = DocumentCollection()
        data.add_tokens(["a", "b", "c", "d"])
        searcher = WeightedPKWiseSearcher(
            data, w=3, theta_weight=0.5, weight_of_token=lambda _t: 1.0
        )
        assert UNIVERSAL_SIGNATURE not in searcher._postings


class TestGlobalOrderEdges:
    def test_window_larger_than_all_documents(self):
        data = DocumentCollection()
        data.add_text("a b c")
        order = GlobalOrder(data, 10)
        assert order.num_data_windows == 0
        assert order.relative_frequency_of_rank(0) == 0.0

    def test_empty_collection(self):
        data = DocumentCollection()
        order = GlobalOrder(data, 5)
        assert order.universe_size == 0
        # Any token id is "new" and gets a negative rank.
        data.vocabulary.add("x")
        assert order.rank(0) < 0


class TestMergeIntervalsProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        merge_gap=st.integers(0, 20),
    )
    def test_output_disjoint_and_covering(self, seed, merge_gap):
        rng = random.Random(seed)
        intervals = []
        for _ in range(rng.randint(0, 20)):
            doc = rng.randrange(3)
            u = rng.randrange(50)
            intervals.append(WindowInterval(doc, u, u + rng.randrange(10)))
        merged = merge_intervals(intervals, merge_gap)
        # Sorted, disjoint with gap >= threshold between same-doc runs.
        threshold = max(2, merge_gap)
        for left, right in zip(merged, merged[1:]):
            assert (left.doc_id, left.u) <= (right.doc_id, right.u)
            if left.doc_id == right.doc_id:
                assert right.u - left.v >= threshold
        # Coverage: every input window is inside some merged interval.
        covered = {
            (interval.doc_id, start)
            for interval in merged
            for start in range(interval.u, interval.v + 1)
        }
        for interval in intervals:
            for start in range(interval.u, interval.v + 1):
                assert (interval.doc_id, start) in covered


class TestTokenizerUnicode:
    def test_whitespace_handles_unicode(self):
        from repro.tokenize import WhitespaceTokenizer

        tokens = WhitespaceTokenizer().tokenize("naïve café　東京")
        assert "naïve" in tokens and "café" in tokens

    def test_word_tokenizer_ascii_only_words(self):
        from repro.tokenize import WordTokenizer

        # The word tokenizer extracts ASCII alphanumerics; non-Latin
        # scripts need the whitespace tokenizer.
        assert WordTokenizer().tokenize("abc123 déf") == ["abc123", "d", "f"]


class TestSearchParamsEquality:
    def test_frozen_dataclass_semantics(self):
        a = SearchParams(w=10, tau=2, k_max=2)
        b = SearchParams(w=10, tau=2, k_max=2)
        assert a == b
        assert hash(a) == hash(b)

    def test_theta_derived_consistently(self):
        params = SearchParams(w=10, tau=3, k_max=1)
        assert params.theta == 7
        roundtrip = SearchParams.from_theta(w=10, theta=params.theta, k_max=1)
        assert roundtrip == params
