"""Tests for repro.service: SearchService, ResultCache, HTTP front-end."""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    DeadlineExceededError,
    DocumentCollection,
    PKWiseSearcher,
    SearchCancelled,
    SearchParams,
    SearchService,
    ServiceClosedError,
    ServiceOverloadError,
    ConfigurationError,
)
from repro.core.base import SearchResult
from repro.eval.harness import canonical_pair_order
from repro.service import (
    ResultCache,
    query_token_hash,
    remote_healthz,
    remote_metrics,
    remote_search,
    serve_http,
)

from .conftest import pairs_as_set


PARAMS = SearchParams(w=10, tau=2, k_max=3)


@pytest.fixture
def searcher(small_corpus):
    return PKWiseSearcher(small_corpus, PARAMS)


@pytest.fixture
def queries(small_corpus):
    """Queries cut from the corpus itself, so matches are guaranteed."""
    out = []
    for doc_id, start in [(0, 5), (0, 10), (3, 20), (1, 0), (2, 30), (4, 12)]:
        tokens = small_corpus[doc_id].tokens[start : start + 25]
        out.append(
            small_corpus.encode_query_tokens(
                [small_corpus.vocabulary.decode([t])[0] for t in tokens],
                name=f"q{doc_id}-{start}",
            )
        )
    return out


class BlockingSearcher:
    """Stub whose search blocks until released (no cancel hook)."""

    name = "blocking"
    params = None

    def __init__(self) -> None:
        self.release = threading.Event()
        self.started = threading.Event()

    def search(self, query) -> SearchResult:
        self.started.set()
        self.release.wait(10)
        return SearchResult(pairs=[])

    def close(self) -> None:
        pass


class CancellableSearcher:
    """Stub that honours the cancel hook, like the real slide loop."""

    name = "cancellable"
    params = None

    def search(self, query, *, cancel=None) -> SearchResult:
        for window in range(500):
            if cancel is not None and cancel():
                raise SearchCancelled("stub cancelled", windows_processed=window)
            time.sleep(0.002)
        return SearchResult(pairs=[])

    def close(self) -> None:
        pass


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(4)
        key = ("h", "p", 0)
        assert cache.get(key) is None
        cache.put(key, [1, 2])
        assert cache.get(key) == (1, 2)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(2)
        cache.put(("a", "p", 0), [1])
        cache.put(("b", "p", 0), [2])
        cache.get(("a", "p", 0))  # refresh a; b becomes LRU
        cache.put(("c", "p", 0), [3])
        assert cache.get(("b", "p", 0)) is None
        assert cache.get(("a", "p", 0)) == (1,)
        assert cache.evictions == 1

    def test_epoch_purge(self):
        cache = ResultCache(8)
        cache.put(("a", "p", 0), [1])
        cache.put(("b", "p", 1), [2])  # epoch advanced: purges epoch-0 entry
        assert len(cache) == 1
        assert cache.invalidations == 1
        assert cache.get(("a", "p", 0)) is None

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        cache.put(("a", "p", 0), [1])
        assert len(cache) == 0
        assert cache.get(("a", "p", 0)) is None

    def test_token_hash_content_based(self):
        assert query_token_hash([1, 2, 3]) == query_token_hash([1, 2, 3])
        assert query_token_hash([1, 2, 3]) != query_token_hash([3, 2, 1])


class TestServiceBasics:
    def test_serial_parity_and_cache_hit(self, searcher, queries):
        reference = {
            q.name: tuple(canonical_pair_order(searcher.search(q).pairs))
            for q in queries
        }
        assert any(reference.values()), "corpus queries must produce matches"
        with SearchService(searcher, max_workers=2) as service:
            for q in queries:
                fresh = service.search(q)
                again = service.search(q)
                assert not fresh.cached
                assert again.cached
                assert fresh.pairs == reference[q.name]
                assert again.pairs == reference[q.name]
            assert service.cache.hits >= len(queries)

    def test_epoch_invalidation_refreshes_results(self, small_corpus, searcher):
        query = small_corpus.encode_query_tokens(
            [
                small_corpus.vocabulary.decode([t])[0]
                for t in small_corpus[0].tokens[10:40]
            ]
        )
        with SearchService(searcher, small_corpus) as service:
            before = service.search(query)
            assert service.search(query).cached
            epoch = service.index_epoch
            # A new document that is an exact copy of the query text.
            new_doc = small_corpus.add_tokens(
                [
                    small_corpus.vocabulary.decode([t])[0]
                    for t in query.tokens
                ]
            )
            new_id = service.add_document(new_doc)
            # The first mutation upgrades to the LSM write path (one
            # epoch step for the view swap, one for the add).
            assert service.index_epoch > epoch
            after = service.search(query)
            assert not after.cached
            assert len(after.pairs) > len(before.pairs)
            assert any(pair.doc_id == new_id for pair in after.pairs)
            # Removing it restores the original pair set (fresh epoch).
            service.remove_document(new_id)
            restored = service.search(query)
            assert not restored.cached
            assert pairs_as_set(list(restored.pairs)) == pairs_as_set(
                list(before.pairs)
            )

    def test_validation(self, searcher):
        with pytest.raises(ConfigurationError):
            SearchService(searcher, max_workers=0)
        with pytest.raises(ConfigurationError):
            SearchService(searcher, max_queue=0)
        with pytest.raises(ConfigurationError):
            SearchService(searcher, cache_size=-1)

    def test_metrics_and_healthz(self, searcher, queries):
        with SearchService(searcher, name="t") as service:
            service.search(queries[0])
            service.search(queries[0])
            snapshot = service.metrics_snapshot()
            counters = snapshot["metrics"]["counters"]
            assert counters["service.requests"] == 2
            assert counters["service.completed"] == 2
            assert counters["service.cache_hits"] == 1
            assert counters["service.cache_misses"] >= 1
            assert "service.request_seconds" in snapshot["metrics"]["timers"]
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["documents"] == 6
        assert service.healthz()["status"] == "closed"

    def test_search_text_needs_data(self, searcher):
        with SearchService(searcher) as service:
            with pytest.raises(Exception, match="collection"):
                service.search_text("anything at all")


class TestConcurrency:
    def test_stress_parity(self, searcher, queries):
        """N threads, mixed fresh/repeated workload, pair-for-pair parity."""
        reference = {
            q.name: tuple(canonical_pair_order(searcher.search(q).pairs))
            for q in queries
        }
        failures: list[str] = []
        with SearchService(
            searcher, max_workers=4, max_queue=256, cache_size=64
        ) as service:
            def worker(thread_id: int) -> None:
                # Each thread replays the workload in its own order, so
                # every query is requested both fresh and repeated.
                for round_number in range(4):
                    for q in queries[thread_id % 2 :: 1]:
                        response = service.search(q)
                        if response.pairs != reference[q.name]:
                            failures.append(
                                f"thread {thread_id} round {round_number}: "
                                f"{q.name} diverged"
                            )

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
            assert service.cache.hits > 0
            counters = service.metrics_snapshot()["metrics"]["counters"]
            assert counters["service.completed"] == counters["service.requests"]

    def test_overload_rejection(self):
        stub = BlockingSearcher()
        service = SearchService(stub, max_workers=1, max_queue=1, cache_size=0)
        try:
            doc = DocumentCollection().add_text("a b c")
            running = service.submit(doc)
            assert stub.started.wait(5), "worker never picked up the request"
            queued = service.submit(doc)
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(doc)
            assert excinfo.value.retry_after > 0
            counters = service.metrics_snapshot()["metrics"]["counters"]
            assert counters["service.rejected"] == 1
            stub.release.set()
            assert len(running.result(5).pairs) == 0
            assert len(queued.result(5).pairs) == 0
        finally:
            stub.release.set()
            service.close()

    def test_deadline_in_queue(self):
        stub = BlockingSearcher()
        service = SearchService(stub, max_workers=1, max_queue=8, cache_size=0)
        try:
            doc = DocumentCollection().add_text("a b c")
            blocker = service.submit(doc)
            assert stub.started.wait(5)
            doomed = service.submit(doc, timeout=0.01)
            time.sleep(0.05)
            stub.release.set()
            blocker.result(5)
            with pytest.raises(DeadlineExceededError):
                doomed.result(5)
            counters = service.metrics_snapshot()["metrics"]["counters"]
            assert counters["service.deadline_exceeded"] == 1
        finally:
            stub.release.set()
            service.close()

    def test_deadline_cancels_mid_search(self):
        service = SearchService(
            CancellableSearcher(), max_workers=1, cache_size=0
        )
        try:
            doc = DocumentCollection().add_text("a b c")
            start = time.monotonic()
            with pytest.raises(DeadlineExceededError, match="windows"):
                service.search(doc, timeout=0.05)
            # The stub alone would run for ~1s; cancellation must stop it
            # well before that.
            assert time.monotonic() - start < 0.75
        finally:
            service.close()

    def test_searcher_cancel_hook_direct(self, searcher, queries):
        with pytest.raises(SearchCancelled):
            searcher.search(queries[0], cancel=lambda: True)
        # A cancel hook that never fires leaves results untouched.
        result = searcher.search(queries[0], cancel=lambda: False)
        assert result.pairs == searcher.search(queries[0]).pairs


class TestLifecycle:
    def test_close_drain_completes_queued(self, searcher, queries):
        service = SearchService(searcher, max_workers=1, cache_size=0)
        futures = [service.submit(q) for q in queries]
        service.close(drain=True)
        for future in futures:
            future.result(5)  # must not raise

    def test_close_abort_fails_queued(self):
        stub = BlockingSearcher()
        service = SearchService(stub, max_workers=1, max_queue=8, cache_size=0)
        doc = DocumentCollection().add_text("a b c")
        service.submit(doc)
        assert stub.started.wait(5)
        queued = service.submit(doc)
        stub.release.set()
        service.close(drain=False)
        with pytest.raises(ServiceClosedError):
            queued.result(5)

    def test_submit_after_close(self, searcher, queries):
        service = SearchService(searcher)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(queries[0])


class TestHTTP:
    @pytest.fixture
    def server(self, small_corpus, searcher):
        with SearchService(searcher, small_corpus, max_workers=2) as service:
            httpd = serve_http(service, port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            try:
                yield httpd
            finally:
                httpd.shutdown()
                httpd.server_close()

    def test_healthz(self, server):
        health = remote_healthz(server.url)
        assert health["status"] == "ok"
        assert health["documents"] == 6

    def test_search_roundtrip_and_cache(self, server, small_corpus):
        text = " ".join(
            small_corpus.vocabulary.decode(small_corpus[0].tokens[10:40])
        )
        first = remote_search(server.url, text)
        second = remote_search(server.url, text)
        assert first["num_pairs"] > 0
        assert first["pairs"] == second["pairs"]
        assert not first["cached"] and second["cached"]

    def test_search_by_token_ids(self, server, small_corpus):
        tokens = list(small_corpus[0].tokens[10:40])
        reply = remote_search(server.url, token_ids=tokens)
        assert reply["num_pairs"] > 0

    def test_metrics_endpoint(self, server, small_corpus):
        text = " ".join(
            small_corpus.vocabulary.decode(small_corpus[0].tokens[5:35])
        )
        remote_search(server.url, text)
        remote_search(server.url, text)
        metrics = remote_metrics(server.url)["metrics"]
        assert metrics["counters"]["service.cache_hits"] >= 1
        assert metrics["counters"]["service.cache_misses"] >= 1
        assert "service.request_seconds" in metrics["timers"]
        assert metrics["gauges"]["service.queue_capacity"] == 64

    def test_bad_requests(self, server):
        import json
        import urllib.error
        import urllib.request

        with pytest.raises(Exception, match="text"):
            remote_search(server.url, text=None, token_ids=None)
        for path, expected in [("/nope", 404), ("/search", 400)]:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}{path}")
            assert excinfo.value.code == expected
        request = urllib.request.Request(
            f"{server.url}/search",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "invalid JSON" in body["error"]

    def test_http_overload_maps_to_429(self):
        stub = BlockingSearcher()
        data = DocumentCollection()
        data.add_text("a b c d e")
        service = SearchService(stub, data, max_workers=1, max_queue=1,
                                cache_size=0)
        httpd = serve_http(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            results: list = []

            def fire() -> None:
                try:
                    results.append(remote_search(httpd.url, "a b c"))
                except Exception as exc:  # noqa: BLE001 - collected below
                    results.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(4)]
            for t in threads:
                t.start()
            assert stub.started.wait(5)
            time.sleep(0.2)  # let the rest hit the full queue
            stub.release.set()
            for t in threads:
                t.join()
            overloads = [
                r for r in results if isinstance(r, ServiceOverloadError)
            ]
            completions = [r for r in results if isinstance(r, dict)]
            assert overloads, "expected at least one 429 rejection"
            assert completions, "expected at least one success"
            assert all(o.retry_after > 0 for o in overloads)
        finally:
            stub.release.set()
            httpd.shutdown()
            httpd.server_close()
            service.close()
