"""Tests for the window slider and rolling overlap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.windows import RollingOverlap, WindowSlider, window_overlap


class TestWindowOverlap:
    def test_paper_example_multiset_semantics(self):
        # {A,A,A,B} ∩ {A,A,B,B} = {A,A,B} (Section 2.1).
        assert window_overlap([0, 0, 0, 1], [0, 0, 1, 1]) == 3

    def test_disjoint(self):
        assert window_overlap([1, 2], [3, 4]) == 0

    def test_identical(self):
        assert window_overlap([1, 1, 2], [1, 1, 2]) == 3

    @settings(max_examples=60, deadline=None)
    @given(
        x=st.lists(st.integers(0, 6), min_size=0, max_size=20),
        y=st.lists(st.integers(0, 6), min_size=0, max_size=20),
    )
    def test_symmetric_and_bounded(self, x, y):
        overlap = window_overlap(x, y)
        assert overlap == window_overlap(y, x)
        assert 0 <= overlap <= min(len(x), len(y))


class TestWindowSlider:
    def test_windows_enumerated(self):
        slider = WindowSlider([1, 2, 3, 4, 5], 3)
        contents = []
        for start, _out, _in in slider.slides():
            contents.append((start, slider.sorted_window()))
        assert contents == [
            (0, [1, 2, 3]),
            (1, [2, 3, 4]),
            (2, [3, 4, 5]),
        ]

    def test_multiset_maintained_with_duplicates(self):
        slider = WindowSlider([1, 1, 2, 1, 1], 3)
        windows = [slider.sorted_window() for _ in slider.slides()]
        assert windows == [[1, 1, 2], [1, 1, 2], [1, 1, 2]]

    def test_short_sequence(self):
        slider = WindowSlider([1, 2], 5)
        assert slider.num_windows == 0
        assert list(slider.slides()) == []

    def test_exact_length(self):
        slider = WindowSlider([4, 2, 7], 3)
        assert slider.num_windows == 1
        slides = list(slider.slides())
        assert slides == [(0, None, None)]

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            WindowSlider([1], 0)

    @settings(max_examples=50, deadline=None)
    @given(
        ranks=st.lists(st.integers(0, 9), min_size=1, max_size=40),
        w=st.integers(1, 12),
    )
    def test_matches_fresh_sort(self, ranks, w):
        slider = WindowSlider(ranks, w)
        for start, _out, _in in slider.slides():
            assert slider.sorted_window() == sorted(ranks[start : start + w])


class TestRollingOverlap:
    def test_initial_overlap(self):
        rolling = RollingOverlap([1, 2, 3], [2, 3, 4])
        assert rolling.overlap == 2

    def test_slide_data_matches_reference(self):
        data_seq = [1, 2, 3, 4, 5, 1, 2]
        query = [2, 3, 1]
        w = 3
        rolling = RollingOverlap(data_seq[:w], query)
        for start in range(1, len(data_seq) - w + 1):
            rolling.slide_data(data_seq[start - 1], data_seq[start + w - 1])
            assert rolling.overlap == window_overlap(
                data_seq[start : start + w], query
            )

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_walk_both_sides(self, seed):
        rng = random.Random(seed)
        w = rng.randint(1, 8)
        data_seq = [rng.randrange(5) for _ in range(w + rng.randint(0, 15))]
        query_seq = [rng.randrange(5) for _ in range(w + rng.randint(0, 15))]
        rolling = RollingOverlap(data_seq[:w], query_seq[:w])
        di = qi = 0
        for _ in range(30):
            move_data = rng.random() < 0.5
            if move_data and di + w < len(data_seq):
                rolling.slide_data(data_seq[di], data_seq[di + w])
                di += 1
            elif qi + w < len(query_seq):
                rolling.slide_query(query_seq[qi], query_seq[qi + w])
                qi += 1
            assert rolling.overlap == window_overlap(
                data_seq[di : di + w], query_seq[qi : qi + w]
            )

    def test_reset_data(self):
        rolling = RollingOverlap([1, 2, 3], [3, 4, 5])
        rolling.reset_data([3, 4, 5])
        assert rolling.overlap == 3

    def test_hash_ops_accounting(self):
        rolling = RollingOverlap([1, 2, 3], [4, 5, 6])
        assert rolling.hash_ops == 6  # two fills of w=3
        rolling.slide_data(1, 9)
        assert rolling.hash_ops == 10  # +4 per slide
        rolling.slide_data(2, 2)  # no-op slide costs nothing
        assert rolling.hash_ops == 10
