"""Tests for k-wise signature generation (Algorithm 3)."""

from __future__ import annotations

import random
from itertools import combinations
from math import comb

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PartitionScheme
from repro.signatures import (
    generate_signatures,
    signature_hash,
    signatures_from_prefix,
)


class TestPaperExample3:
    """Example 3: tau=1, k=2, the four windows of Example 2."""

    def setup_method(self):
        # Ranks follow the order E < F < D < A < B < C of Example 2.
        self.E, self.F, self.D, self.A, self.B, self.C = range(6)
        # Non-partitioned 2-wise: every token in class 2.
        self.scheme = PartitionScheme.all_k(6, 2)

    def test_w_d1(self):
        # W(d,1) sorted = [A, A, B, C]; prefix = first 3 (coverage 2).
        sigs = generate_signatures([self.A, self.A, self.B, self.C], 1, self.scheme)
        assert sigs == [
            (self.A, self.A),
            (self.A, self.B),
            (self.A, self.B),
        ]

    def test_w_d2(self):
        sigs = generate_signatures([self.D, self.A, self.B, self.C], 1, self.scheme)
        assert sigs == [
            (self.D, self.A),
            (self.D, self.B),
            (self.A, self.B),
        ]

    def test_w_q1(self):
        sigs = generate_signatures([self.E, self.A, self.A, self.B], 1, self.scheme)
        assert sigs == [
            (self.E, self.A),
            (self.E, self.A),
            (self.A, self.A),
        ]

    def test_w_q2(self):
        sigs = generate_signatures([self.E, self.F, self.A, self.B], 1, self.scheme)
        assert sigs == [
            (self.E, self.F),
            (self.E, self.A),
            (self.F, self.A),
        ]

    def test_shared_signature_found(self):
        # W(d,1) and W(q,1) share signature AA.
        d1 = set(generate_signatures([self.A, self.A, self.B, self.C], 1, self.scheme))
        q1 = set(generate_signatures([self.E, self.A, self.A, self.B], 1, self.scheme))
        assert (self.A, self.A) in d1 & q1


class TestSignatureCounts:
    def test_binomial_count_per_class(self):
        # tau + k tokens of class k yield C(tau + k, k) signatures.
        for k in (1, 2, 3):
            for tau in (0, 1, 3):
                scheme = PartitionScheme.all_k(50, k)
                window = list(range(tau + k + 10))
                sigs = generate_signatures(window, tau, scheme)
                assert len(sigs) == comb(tau + k, k)

    def test_group_with_too_few_tokens_yields_nothing(self):
        scheme = PartitionScheme(universe_size=10, borders=(5,))
        # One class-2 token only: no 2-wise signature from it.
        sigs = signatures_from_prefix([9], scheme)
        assert sigs == []

    def test_signatures_do_not_cross_groups(self):
        scheme = PartitionScheme(universe_size=10, borders=(0, 5))
        # Ranks 0-4 class 2, ranks 5-9 class 3.
        sigs = signatures_from_prefix([0, 1, 5, 6, 7], scheme)
        for signature in sigs:
            classes = {scheme.class_of(rank) for rank in signature}
            assert len(classes) == 1
            assert len(signature) == classes.pop()

    def test_subpartitions_restrict_combinations(self):
        # Class 2 covering [0, 6) with m=3 sub-partitions of width 2:
        # tokens 0,1 | 2,3 | 4,5 combine only within their sub-partition.
        scheme = PartitionScheme(universe_size=6, borders=(0,), m=3)
        sigs = signatures_from_prefix([0, 1, 2, 3, 4, 5], scheme)
        assert sorted(sigs) == [(0, 1), (2, 3), (4, 5)]

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_matches_itertools_reference(self, seed):
        rng = random.Random(seed)
        universe = rng.randint(4, 30)
        k_max = rng.randint(1, 3)
        borders = tuple(sorted(rng.randint(0, universe) for _ in range(k_max - 1)))
        scheme = PartitionScheme(universe_size=universe, borders=borders)
        prefix = sorted(rng.randrange(universe) for _ in range(rng.randint(0, 12)))
        sigs = signatures_from_prefix(prefix, scheme)
        # Reference: group by class, enumerate combinations positionally.
        expected = []
        by_class: dict[int, list[int]] = {}
        for rank in prefix:
            by_class.setdefault(scheme.class_of(rank), []).append(rank)
        for class_index in sorted(by_class):
            group = by_class[class_index]
            if len(group) >= class_index:
                expected.extend(combinations(group, class_index))
        assert sorted(sigs) == sorted(expected)


class TestSignatureHash:
    def test_stable(self):
        assert signature_hash((1, 2, 3)) == signature_hash((1, 2, 3))

    def test_distinguishes_order_and_content(self):
        assert signature_hash((1, 2)) != signature_hash((2, 1))
        assert signature_hash((1,)) != signature_hash((1, 0))

    def test_64_bit_range(self):
        for signature in [(0,), (2**40, 7), (-5, 3)]:
            value = signature_hash(signature)
            assert 0 <= value < 2**64

    def test_collision_free_on_small_universe(self):
        seen = {}
        for a in range(50):
            for b in range(a, 50):
                value = signature_hash((a, b))
                assert seen.setdefault(value, (a, b)) == (a, b)
