"""Tests for the repro.api facade: Index plus the removed 1.1 names."""

from __future__ import annotations

import pytest

import repro
from repro import ConfigurationError, DocumentCollection, Index, SearchParams, api
from repro.api import Searcher
from repro.baselines import (
    AdaptSearcher,
    BruteForceSearcher,
    FaerieSearcher,
    FBWSearcher,
    KPrefixSearcher,
    MinHashLSHSearcher,
)
from repro.core import (
    PKWiseNonIntervalSearcher,
    PKWiseSearcher,
    WeightedPKWiseSearcher,
)
from repro.persistence import SearcherBundle

from .conftest import pairs_as_set

TEXTS = [
    "alpha beta gamma delta epsilon zeta eta theta iota kappa lamda mu "
    "nu xi omicron pi rho sigma tau upsilon phi chi psi omega",
    "alpha beta gamma delta epsilon zeta eta theta iota kappa lamda mu "
    "other words entirely different from the first document here now",
]


class TestIndexBuild:
    def test_from_texts(self):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        assert isinstance(index, Index)
        assert len(index.data) == 2
        result = index.search_text(TEXTS[0])
        assert len(result.pairs) > 0

    def test_from_collection(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=3)
        index = Index.build(small_corpus, params)
        assert index.data is small_corpus
        assert index.params is params
        assert index.path is None and index.load_seconds == 0.0

    def test_from_directory(self, tmp_path):
        for i, text in enumerate(TEXTS):
            (tmp_path / f"doc{i}.txt").write_text(text)
        index = Index.build(tmp_path, w=10, tau=2, k_max=3)
        assert len(index.data) == 2

    def test_m_defaults_to_paper_rule(self):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        assert index.params.m == 1

    def test_needs_params_or_w_tau(self):
        with pytest.raises(ConfigurationError, match="w= and tau="):
            Index.build(TEXTS)
        with pytest.raises(ConfigurationError, match="not both"):
            Index.build(TEXTS, SearchParams(w=10, tau=2, k_max=3), w=10)

    def test_rejects_nonsense_corpus(self):
        with pytest.raises(ConfigurationError, match="cannot build"):
            Index.build(12345, w=10, tau=2)

    def test_build_compact_is_frozen_with_same_pairs(self):
        plain = Index.build(TEXTS, w=10, tau=2, k_max=3)
        compact = Index.build(TEXTS, w=10, tau=2, k_max=3, compact=True)
        assert not plain.frozen
        assert compact.frozen
        assert (
            plain.search_text(TEXTS[0]).sorted_pairs()
            == compact.search_text(TEXTS[0]).sorted_pairs()
        )

    def test_parity_with_direct_construction(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=3)
        direct = PKWiseSearcher(small_corpus, params)
        facade = Index.build(small_corpus, params)
        query = small_corpus.encode_query_tokens(
            [
                small_corpus.vocabulary.decode([t])[0]
                for t in small_corpus[0].tokens[10:40]
            ]
        )
        assert pairs_as_set(facade.search(query)) == pairs_as_set(
            direct.search(query)
        )


class TestIndexRoundtrip:
    def test_save_open_search_text(self, tmp_path):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        path = tmp_path / "corpus.idx"
        index.save(path)
        with Index.open(path) as loaded:
            assert loaded.path == path
            assert loaded.load_seconds > 0
            assert (
                loaded.search_text(TEXTS[0]).sorted_pairs()
                == index.search_text(TEXTS[0]).sorted_pairs()
            )

    def test_compact_save_mmap_open(self, tmp_path):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        path = tmp_path / "corpus.idx"
        index.save(path, compact=True)
        with Index.open(path, mmap=True) as loaded:
            assert loaded.frozen
            assert (
                loaded.search_text(TEXTS[0]).sorted_pairs()
                == index.search_text(TEXTS[0]).sorted_pairs()
            )

    def test_index_serve(self):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        with index.serve(max_workers=1, cache_size=4) as service:
            first = service.search_text(TEXTS[0])
            second = service.search_text(TEXTS[0])
            assert first.pairs == second.pairs
            assert second.cached

    def test_encode_query_without_data_raises(self, small_corpus, tmp_path):
        params = SearchParams(w=10, tau=2, k_max=3)
        index = Index(PKWiseSearcher(small_corpus, params))  # no data paired
        with pytest.raises(ConfigurationError, match="ids-only"):
            index.search_text("anything")

    def test_repr_names_engine_and_source(self):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        assert "PKWiseSearcher" in repr(index)
        assert "<memory>" in repr(index)


class TestSearcherProtocol:
    @pytest.mark.parametrize(
        "engine_class",
        [
            PKWiseSearcher,
            PKWiseNonIntervalSearcher,
            AdaptSearcher,
            BruteForceSearcher,
            FaerieSearcher,
            FBWSearcher,
            KPrefixSearcher,
            MinHashLSHSearcher,
        ],
    )
    def test_engines_satisfy_protocol(self, small_corpus, engine_class):
        params = SearchParams(w=10, tau=2, k_max=3)
        engine = engine_class(small_corpus, params)
        assert isinstance(engine, Searcher)
        engine.close()

    def test_weighted_satisfies_protocol(self, small_corpus):
        weighted = WeightedPKWiseSearcher(
            small_corpus, w=10, theta_weight=8.0, weight_of_token=lambda _t: 1.0
        )
        assert isinstance(weighted, Searcher)

    def test_index_satisfies_protocol(self):
        assert isinstance(Index.build(TEXTS, w=10, tau=2, k_max=3), Searcher)


class TestRemovedFacadeNames:
    """The pre-1.2 function facade is gone in 1.3, not just deprecated."""

    @pytest.mark.parametrize(
        "name", ["build_index", "open_index", "save_index"]
    )
    def test_function_facade_removed(self, name):
        assert not hasattr(api, name)
        with pytest.raises(AttributeError):
            getattr(repro, name)

    def test_bare_searcher_save_via_index(self, tmp_path):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        path = tmp_path / "lean.idx"
        from repro.persistence import save_searcher

        save_searcher(index.searcher(), path)  # no data bundled
        loaded = Index.open(path)
        assert loaded.data is None
        with pytest.raises(Exception, match="ids-only"):
            loaded.search_text("anything")

    def test_bundle_tuple_unpack_warns(self, tmp_path):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        path = tmp_path / "corpus.idx"
        index.save(path)
        with pytest.warns(DeprecationWarning, match="Index.open"):
            bundle = repro.load_bundle(path)
        with pytest.warns(DeprecationWarning, match="bundle.searcher"):
            searcher, data = bundle
        assert isinstance(searcher, PKWiseSearcher)
        assert len(data) == 2

    def test_load_searcher_warns_but_works(self, tmp_path):
        index = Index.build(TEXTS, w=10, tau=2, k_max=3)
        path = tmp_path / "corpus.idx"
        index.save(path)
        with pytest.warns(DeprecationWarning, match="Index.open"):
            loader = repro.load_searcher
        assert isinstance(loader(path), PKWiseSearcher)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestSearchManyUnification:
    def test_facade_search_many_returns_run(self, small_corpus):
        index = Index.build(small_corpus, SearchParams(w=10, tau=2, k_max=3))
        queries = [
            small_corpus.encode_query_tokens(
                [
                    small_corpus.vocabulary.decode([t])[0]
                    for t in small_corpus[d].tokens[:30]
                ]
            )
            for d in (0, 3)
        ]
        run = index.search_many(queries)
        assert run.num_queries == 2
        assert set(run.results_by_query) == {0, 1}

    def test_weighted_and_baseline_agree_on_shape(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=3)
        queries = [
            small_corpus.encode_query_tokens(
                [
                    small_corpus.vocabulary.decode([t])[0]
                    for t in small_corpus[0].tokens[:30]
                ]
            )
        ]
        weighted = WeightedPKWiseSearcher(
            small_corpus, w=10, theta_weight=8.0, weight_of_token=lambda _t: 1.0
        )
        for engine in (weighted, BruteForceSearcher(small_corpus, params)):
            run = engine.search_many(queries)
            assert run.num_queries == 1
            assert hasattr(run, "stats") and hasattr(run, "results_by_query")


class TestKeywordOnlyParams:
    def test_positional_construction_rejected(self):
        with pytest.raises(TypeError):
            SearchParams(10, 2)

    def test_keyword_construction_works(self):
        params = SearchParams(w=10, tau=2, k_max=3)
        assert (params.w, params.tau, params.theta) == (10, 2, 8)

    def test_validation_names_offending_value(self):
        with pytest.raises(ConfigurationError, match="tau=9, w=5"):
            SearchParams(w=5, tau=9)
        with pytest.raises(ConfigurationError, match="k_max must be >= 1"):
            SearchParams(w=10, tau=2, k_max=0)


class TestModuleSurface:
    def test_api_module_exported(self):
        assert repro.api is api
        assert repro.Index is Index
        assert "build_index" not in repro.__all__
        assert "open_index" not in repro.__all__

    def test_version_bumped(self):
        assert repro.__version__ == "1.3.0"
