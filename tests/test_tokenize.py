"""Tests for tokenizers and the vocabulary."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TokenizationError
from repro.tokenize import (
    QGramTokenizer,
    Vocabulary,
    WhitespaceTokenizer,
    WordTokenizer,
)


class TestWhitespaceTokenizer:
    def test_basic_split(self):
        assert WhitespaceTokenizer().tokenize("the lord of the rings") == [
            "the",
            "lord",
            "of",
            "the",
            "rings",
        ]

    def test_lowercases_by_default(self):
        assert WhitespaceTokenizer().tokenize("The LORD") == ["the", "lord"]

    def test_lowercase_off(self):
        assert WhitespaceTokenizer(lowercase=False).tokenize("The LORD") == [
            "The",
            "LORD",
        ]

    def test_collapses_whitespace_runs(self):
        assert WhitespaceTokenizer().tokenize("a  b\t\nc") == ["a", "b", "c"]

    def test_empty_string(self):
        assert WhitespaceTokenizer().tokenize("") == []

    def test_callable(self):
        tokenizer = WhitespaceTokenizer()
        assert tokenizer("a b") == ["a", "b"]


class TestWordTokenizer:
    def test_strips_punctuation(self):
        assert WordTokenizer().tokenize("the lord-of the rings!") == [
            "the",
            "lord",
            "of",
            "the",
            "rings",
        ]

    def test_keeps_apostrophes(self):
        assert WordTokenizer().tokenize("don't stop") == ["don't", "stop"]

    def test_min_length_filter(self):
        assert WordTokenizer(min_length=3).tokenize("a an the lord") == [
            "the",
            "lord",
        ]

    def test_rejects_bad_min_length(self):
        with pytest.raises(TokenizationError):
            WordTokenizer(min_length=0)

    def test_numbers_kept(self):
        assert WordTokenizer().tokenize("chapter 42") == ["chapter", "42"]


class TestQGramTokenizer:
    def test_bigrams(self):
        grams = QGramTokenizer(q=2).tokenize("a b c d")
        assert len(grams) == 3
        assert grams[0].split("␟") == ["a", "b"]

    def test_too_short_input(self):
        assert QGramTokenizer(q=3).tokenize("a b") == []

    def test_q1_equals_inner(self):
        assert QGramTokenizer(q=1).tokenize("a b c") == ["a", "b", "c"]

    def test_rejects_bad_q(self):
        with pytest.raises(TokenizationError):
            QGramTokenizer(q=0)

    def test_gramify_counts(self):
        tokenizer = QGramTokenizer(q=2)
        assert len(tokenizer.gramify(list("abcdef"))) == 5


class TestVocabulary:
    def test_dense_ids(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0
        assert len(vocab) == 2

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary()
        tokens = ["x", "y", "x", "z"]
        ids = vocab.encode(tokens)
        assert vocab.decode(ids) == tokens

    def test_id_of_unknown_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("missing")

    def test_get_returns_none_for_unknown(self):
        assert Vocabulary().get("missing") is None

    def test_contains_and_iter(self):
        vocab = Vocabulary(["a", "b"])
        assert "a" in vocab
        assert list(vocab) == ["a", "b"]

    def test_encode_frozen_rejects_unknown(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(KeyError):
            vocab.encode_frozen(["a", "b"])

    @given(st.lists(st.text(min_size=1, max_size=5), max_size=50))
    def test_ids_stable_and_bijective(self, tokens):
        vocab = Vocabulary()
        ids = vocab.encode(tokens)
        # Same token -> same id; different tokens -> different ids.
        mapping = {}
        for token, token_id in zip(tokens, ids):
            assert mapping.setdefault(token, token_id) == token_id
        assert len(set(mapping.values())) == len(mapping)
        # Decoding inverts encoding.
        assert vocab.decode(ids) == tokens
